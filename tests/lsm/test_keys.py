"""Internal-key encoding and varint codecs."""

import pytest

from repro.lsm.keys import (
    KIND_DELETE,
    KIND_MERGE,
    KIND_VALUE,
    InternalKey,
    MAX_SEQUENCE,
    compare_internal,
    decode_length_prefixed,
    decode_varint,
    encode_length_prefixed,
    encode_varint,
    internal_sort_key,
    pack_internal_key,
    unpack_internal_key,
)


class TestVarint:
    def test_roundtrip_small(self):
        for value in [0, 1, 127, 128, 300, 2**14, 2**21 - 1]:
            encoded = encode_varint(value)
            decoded, offset = decode_varint(encoded)
            assert decoded == value
            assert offset == len(encoded)

    def test_roundtrip_large(self):
        value = 2**56 - 1
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value

    def test_single_byte_boundary(self):
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        encoded = encode_varint(300)
        with pytest.raises(ValueError):
            decode_varint(encoded[:1])

    def test_decode_at_offset(self):
        blob = b"\xff\xff" + encode_varint(42)
        value, offset = decode_varint(blob, 2)
        assert value == 42
        assert offset == len(blob)

    def test_overlong_varint_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(b"\x80" * 10 + b"\x01")


class TestLengthPrefixed:
    def test_roundtrip(self):
        blob = b"hello\x00world"
        encoded = encode_length_prefixed(blob)
        decoded, offset = decode_length_prefixed(encoded)
        assert decoded == blob
        assert offset == len(encoded)

    def test_empty(self):
        decoded, _ = decode_length_prefixed(encode_length_prefixed(b""))
        assert decoded == b""

    def test_truncated_payload(self):
        encoded = encode_length_prefixed(b"abcdef")
        with pytest.raises(ValueError):
            decode_length_prefixed(encoded[:-2])


class TestInternalKey:
    def test_pack_unpack_roundtrip(self):
        ikey = unpack_internal_key(pack_internal_key(b"key", 42, KIND_VALUE))
        assert ikey == InternalKey(b"key", 42, KIND_VALUE)

    def test_max_sequence_roundtrip(self):
        ikey = unpack_internal_key(
            pack_internal_key(b"k", MAX_SEQUENCE, KIND_DELETE))
        assert ikey.seq == MAX_SEQUENCE
        assert ikey.kind == KIND_DELETE

    def test_sequence_out_of_range(self):
        with pytest.raises(ValueError):
            pack_internal_key(b"k", MAX_SEQUENCE + 1, KIND_VALUE)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            pack_internal_key(b"k", 1, 99)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            unpack_internal_key(b"short")

    def test_kind_names(self):
        assert InternalKey(b"k", 1, KIND_VALUE).kind_name == "value"
        assert InternalKey(b"k", 1, KIND_DELETE).kind_name == "delete"
        assert InternalKey(b"k", 1, KIND_MERGE).kind_name == "merge"


class TestOrdering:
    """User key ascending, sequence number descending — LevelDB's order."""

    def test_user_keys_ascend(self):
        a = pack_internal_key(b"a", 1, KIND_VALUE)
        b = pack_internal_key(b"b", 100, KIND_VALUE)
        assert compare_internal(a, b) == -1
        assert compare_internal(b, a) == 1

    def test_newer_sequence_sorts_first(self):
        old = pack_internal_key(b"k", 1, KIND_VALUE)
        new = pack_internal_key(b"k", 2, KIND_VALUE)
        assert compare_internal(new, old) == -1

    def test_prefix_keys_order_by_user_key(self):
        # "a" < "ab" even though a naive byte comparison of encoded keys
        # (user key + big trailer) would say otherwise.
        short = pack_internal_key(b"a", 1, KIND_VALUE)
        long = pack_internal_key(b"ab", MAX_SEQUENCE, KIND_VALUE)
        assert compare_internal(short, long) == -1

    def test_equal_keys(self):
        k1 = pack_internal_key(b"k", 5, KIND_VALUE)
        k2 = pack_internal_key(b"k", 5, KIND_VALUE)
        assert compare_internal(k1, k2) == 0

    def test_sorted_sequence_matches_expectation(self):
        keys = [
            pack_internal_key(b"a", 3, KIND_VALUE),
            pack_internal_key(b"a", 7, KIND_DELETE),
            pack_internal_key(b"b", 1, KIND_VALUE),
            pack_internal_key(b"aa", 5, KIND_VALUE),
        ]
        ordered = sorted(keys, key=internal_sort_key)
        decoded = [unpack_internal_key(k) for k in ordered]
        assert [(d.user_key, d.seq) for d in decoded] == [
            (b"a", 7), (b"a", 3), (b"aa", 5), (b"b", 1)]
