"""Unit drills for the replication layer.

Covers the pieces the scheduler drills compose: sequence-channel
record/replay (byte-identical seqs across replicas), synchronous write
fan-out, kill / revive / staleness bookkeeping, failover reads, read
repair, and anti-entropy reseeding — including a GSI divergence healed
back to exact query parity.
"""

import pytest

from repro.core.base import IndexKind
from repro.dist.cluster import SequenceOracle, ShardedDB
from repro.dist.replication import (
    DOWN,
    STALE,
    UP,
    NoReplicaError,
    ReplicaDivergenceError,
    SequenceChannel,
)
from repro.lsm.errors import InvalidArgumentError
from repro.lsm.options import Options


def _options():
    return Options(block_size=1024, sstable_target_size=4 * 1024,
                   memtable_budget=4 * 1024, l1_target_size=16 * 1024)


def _cluster(rf=3, shards=2, **kwargs):
    kwargs.setdefault("local_indexes", {"UserID": IndexKind.LAZY})
    return ShardedDB.open_memory(num_shards=shards, replication_factor=rf,
                                 options=_options(), **kwargs)


def _key_on_shard(cluster, shard_id, start=0):
    for i in range(start, start + 10_000):
        key = f"pin{i:05d}"
        if cluster.ring.shard_of(key.encode()) == shard_id:
            return key
    raise AssertionError(f"no key found for shard {shard_id}")


class TestSequenceChannel:
    def test_passthrough_outside_record_and_replay(self):
        oracle = SequenceOracle()
        channel = SequenceChannel(oracle.allocate)
        first = channel.allocate(2)
        second = channel.allocate(1)
        assert second == first + 2
        assert oracle.last_allocated == first + 2

    def test_replay_echoes_the_recorded_allocations(self):
        oracle = SequenceOracle()
        channel = SequenceChannel(oracle.allocate)
        channel.start_record()
        first = channel.allocate(2)
        second = channel.allocate(1)
        log = channel.finish_record()
        assert log == ((2, first), (1, second))
        before = oracle.last_allocated
        channel.start_replay(log)
        assert channel.allocate(2) == first
        assert channel.allocate(1) == second
        channel.finish_replay()
        # Replay never touches the real oracle.
        assert oracle.last_allocated == before

    def test_replay_overdraw_is_divergence(self):
        channel = SequenceChannel(SequenceOracle().allocate)
        channel.start_replay(((1, 1),))
        channel.allocate(1)
        with pytest.raises(ReplicaDivergenceError):
            channel.allocate(1)
        channel.abandon()

    def test_replay_count_mismatch_is_divergence(self):
        channel = SequenceChannel(SequenceOracle().allocate)
        channel.start_replay(((2, 1),))
        with pytest.raises(ReplicaDivergenceError):
            channel.allocate(1)
        channel.abandon()

    def test_replay_underdraw_is_divergence(self):
        channel = SequenceChannel(SequenceOracle().allocate)
        channel.start_replay(((1, 1), (1, 2)))
        channel.allocate(1)
        with pytest.raises(ReplicaDivergenceError):
            channel.finish_replay()

    def test_abandon_restores_passthrough(self):
        oracle = SequenceOracle()
        channel = SequenceChannel(oracle.allocate)
        channel.start_replay(((5, 100),))
        channel.abandon()
        assert channel.allocate(1) == oracle.last_allocated


class TestWriteFanOut:
    def test_replicas_are_byte_identical_after_writes(self):
        with _cluster(rf=3) as cluster:
            for i in range(60):
                cluster.put(f"k{i:03d}", {"UserID": f"u{i % 7}", "n": i})
            for i in range(0, 60, 5):
                cluster.delete(f"k{i:03d}")
            for group in cluster.data_shards:
                digests = set(group.replica_digests().values())
                assert len(digests) == 1
                for replica in group.replicas:
                    assert replica.applied == group.ops_applied

    def test_sequence_numbers_match_across_replicas(self):
        with _cluster(rf=2) as cluster:
            seqs = {f"k{i}": cluster.put(f"k{i}", {"UserID": "u", "n": i})
                    for i in range(20)}
            for key, seq in seqs.items():
                group = cluster.data_shards[
                    cluster.ring.shard_of(key.encode())]
                for replica in group.replicas:
                    got = replica.db.primary.get_with_seq(key.encode())
                    assert got is not None and got[1] == seq

    def test_write_with_no_live_replica_is_not_acked(self):
        with _cluster(rf=2) as cluster:
            key = _key_on_shard(cluster, 0)
            cluster.put(key, {"UserID": "u0"})
            cluster.kill_replica(0, 0)
            cluster.kill_replica(0, 1)
            ops_before = cluster.data_shards[0].ops_applied
            with pytest.raises(NoReplicaError):
                cluster.put(key, {"UserID": "u1"})
            assert cluster.data_shards[0].ops_applied == ops_before
            assert cluster.revive_replica(0, 0) == "up"
            assert cluster.revive_replica(0, 1) == "up"
            # The un-acked write left no trace; new writes ack normally.
            assert cluster.get(key) == {"UserID": "u0"}
            cluster.put(key, {"UserID": "u2"})
            assert cluster.get(key) == {"UserID": "u2"}


class TestKillReviveStale:
    def test_revive_after_missed_writes_is_stale_then_repaired(self):
        with _cluster(rf=2, shards=1) as cluster:
            cluster.put("a", {"UserID": "u0"})
            cluster.kill_replica(0, 1)
            assert cluster.data_shards[0].replicas[1].state == DOWN
            for i in range(10):
                cluster.put(f"b{i}", {"UserID": "u1", "n": i})
            assert cluster.revive_replica(0, 1) == "stale"
            assert cluster.data_shards[0].replicas[1].state == STALE
            repaired = cluster.repair_shard(0)
            assert repaired == [1]
            group = cluster.data_shards[0]
            assert group.replicas[1].state == UP
            assert len(set(group.replica_digests().values())) == 1

    def test_read_repair_reseeds_a_stale_replica(self):
        with _cluster(rf=2, shards=1) as cluster:
            cluster.put("a", {"UserID": "u0"})
            cluster.kill_replica(0, 0)
            cluster.put("b", {"UserID": "u1"})
            cluster.revive_replica(0, 0)
            group = cluster.data_shards[0]
            assert group.replicas[0].state == STALE
            assert cluster.get("b") == {"UserID": "u1"}
            assert group.read_repairs == 1
            assert group.replicas[0].state == UP
            assert len(set(group.replica_digests().values())) == 1

    def test_revive_with_nothing_missed_is_up(self):
        with _cluster(rf=2, shards=1) as cluster:
            cluster.put("a", {"UserID": "u0"})
            cluster.kill_replica(0, 1)
            assert cluster.revive_replica(0, 1) == "up"
            assert cluster.get("a") == {"UserID": "u0"}

    def test_double_kill_and_revive_up_are_rejected(self):
        with _cluster(rf=2, shards=1) as cluster:
            cluster.kill_replica(0, 0)
            with pytest.raises(InvalidArgumentError):
                cluster.kill_replica(0, 0)
            cluster.revive_replica(0, 0)
            with pytest.raises(InvalidArgumentError):
                cluster.revive_replica(0, 0)

    def test_legacy_single_copy_cannot_revive(self):
        with _cluster(rf=1, shards=1) as cluster:
            cluster.put("a", {"UserID": "u0"})
            cluster.kill_replica(0, 0)
            with pytest.raises(InvalidArgumentError):
                cluster.revive_replica(0, 0)


class TestFailoverReads:
    def test_reads_fail_over_past_a_downed_leader(self):
        with _cluster(rf=3, shards=1) as cluster:
            expected = {}
            for i in range(25):
                doc = {"UserID": f"u{i % 4}", "n": i}
                cluster.put(f"k{i:02d}", doc)
                expected[f"k{i:02d}"] = doc
            cluster.kill_replica(0, 0)
            group = cluster.data_shards[0]
            for key, doc in expected.items():
                assert cluster.get(key) == doc
            got = {r.key for r in cluster.lookup("UserID", "u1",
                                                 early_termination=False)}
            want = {k for k, d in expected.items() if d["UserID"] == "u1"}
            assert got == want
            assert group.failover_reads > 0
            # Writes keep acking on the survivors.
            cluster.put("extra", {"UserID": "u1"})
            assert cluster.get("extra") == {"UserID": "u1"}


class TestAntiEntropy:
    def test_divergent_replica_is_reseeded_from_the_leader(self):
        with _cluster(rf=2, shards=1) as cluster:
            for i in range(15):
                cluster.put(f"k{i:02d}", {"UserID": f"u{i % 3}", "n": i})
            group = cluster.data_shards[0]
            # Corrupt replica 1 logically: a write that never went through
            # the group fan-out.
            group.replicas[1].db.put(b"rogue", {"UserID": "u9"})
            assert len(set(group.replica_digests().values())) == 2
            summary = cluster.anti_entropy()
            assert summary["shards"][0]["reseeded"] == [1]
            assert len(set(group.replica_digests().values())) == 1
            assert cluster.get("rogue") is None
            report = cluster.verify_integrity()
            assert all(r.ok for r in report.values())

    def test_gsi_divergence_is_healed_to_exact_parity(self):
        with ShardedDB.open_memory(num_shards=2, replication_factor=2,
                                   global_indexes=("UserID",),
                                   options=_options()) as cluster:
            expected = {}
            for i in range(10):
                doc = {"UserID": f"u{i % 3}", "n": i}
                cluster.put(f"k{i:02d}", doc)
                expected[f"k{i:02d}"] = doc
            gsi = cluster.global_indexes["UserID"]
            original = gsi.on_put
            state = {"armed": True}

            def flaky(key, document, seq):
                if state["armed"]:
                    state["armed"] = False
                    raise RuntimeError("index shard hiccup")
                original(key, document, seq)

            gsi.on_put = flaky
            with pytest.raises(RuntimeError):
                cluster.put("k99", {"UserID": "u0", "n": 99})
            gsi.on_put = original
            expected["k99"] = {"UserID": "u0", "n": 99}
            assert cluster.dirty_global_indexes() == ["UserID"]
            summary = cluster.anti_entropy()
            assert summary["gsi_rebuilt"] == ["UserID"]
            assert cluster.dirty_global_indexes() == []
            for value in ("u0", "u1", "u2"):
                got = {r.key for r in cluster.lookup("UserID", value,
                                                     early_termination=False)}
                want = {k for k, d in expected.items()
                        if d["UserID"] == value}
                assert got == want

    def test_clean_cluster_passes_anti_entropy_untouched(self):
        with _cluster(rf=2) as cluster:
            for i in range(20):
                cluster.put(f"k{i:02d}", {"UserID": f"u{i % 3}"})
            summary = cluster.anti_entropy()
            for shard_summary in summary["shards"].values():
                assert shard_summary["scrub_problems"] == []
                assert shard_summary["reseeded"] == []
            assert summary["gsi_rebuilt"] == []
