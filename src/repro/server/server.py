"""A threaded socket server over one database.

Each accepted connection gets two threads:

* a **reader** that parses length-prefixed frames off the socket and
  pushes them into a *bounded* per-connection queue, and
* a **worker** that decodes requests from the queue, executes them
  against the database, and writes responses back in request order
  (pipelined requests are answered strictly FIFO).

Concurrency model (DESIGN.md §10): the worker threads of all
connections call the engine *concurrently*.  With the background
pipeline enabled (``Options.background_compaction``) the engine's
leader/follower group commit coalesces their WAL appends, so one fsync
covers a whole batch of network writers — the server adds no locking of
its own on that path.  On top of it the worker coalesces a *run* of
consecutive pipelined writes from one connection into a single
:class:`~repro.lsm.db.WriteBatch`, so a client that pipelines N puts
enqueues one group-commit entry, not N.

Backpressure: the request queue is bounded (``max_inflight``).  When a
connection's writes stall — the worker is parked in the engine's
write-stall ladder — the queue fills and the reader stops reading the
socket; the kernel's TCP window then pushes back on the client.  A flood
of writers degrades into flow control instead of unbounded buffering.

Serving an inline (non-pipeline) engine still works: the handlers
serialize on one lock, trading parallelism for the single-threaded
engine's invariants.  :class:`~repro.core.database.SecondaryIndexedDB`
is always served behind that lock, because secondary-index maintenance
is not concurrency-safe.
"""

from __future__ import annotations

import logging
import queue
import socket
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.records import key_to_bytes
from repro.lsm.db import DB, WriteBatch
from repro.lsm.errors import InvalidArgumentError
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameTooLargeError,
    STATUS_ERROR,
    STATUS_OK,
    TornFrameError,
    decode_value,
    encode_frame,
    encode_value,
    read_frame,
)

logger = logging.getLogger(__name__)

__all__ = ["Server", "ServerStats", "DEFAULT_MAX_INFLIGHT",
           "DEFAULT_SCAN_LIMIT", "MAX_COALESCED_OPS", "DEDUP_WINDOW"]

#: Unanswered requests one connection may have queued before its reader
#: stops reading the socket (the backpressure bound).
DEFAULT_MAX_INFLIGHT = 32

#: SCAN responses are paged: a request with no explicit limit gets at
#: most this many entries, keeping one response inside a frame.
DEFAULT_SCAN_LIMIT = 1000

#: Longest run of pipelined writes folded into one WriteBatch.
MAX_COALESCED_OPS = 128

#: Acked write results remembered per client for idempotent-retry dedup.
#: A retry more than this many writes behind the client's newest is no
#: longer recognizable — far beyond any real retry horizon (a client
#: retries its most recent unacked writes, not a thousand-op backlog).
DEDUP_WINDOW = 1024

_EOF = object()          # reader -> worker: clean end of stream
_REJECT = "__reject__"   # reader -> worker: fatal frame error, then close


@dataclass
class ServerStats:
    """Counters for ``stats`` responses and tests."""

    connections_accepted: int = 0
    requests: int = 0
    responses: int = 0
    errors: int = 0               # error responses sent
    frames_rejected: int = 0      # oversized frames (connection dropped)
    torn_frames: int = 0          # connections that died mid-frame
    backpressure_waits: int = 0   # reader blocked on a full request queue
    coalesced_groups: int = 0     # write runs folded into one WriteBatch
    coalesced_ops: int = 0        # ops committed through those runs
    max_coalesced_ops: int = 0
    dedup_hits: int = 0           # retried writes answered from the window
    dedup_applied: int = 0        # idempotent writes applied first-hand
    leaked_threads: int = 0       # threads still alive after close() joins

    def as_dict(self) -> dict[str, int]:
        return {
            "connections_accepted": self.connections_accepted,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "frames_rejected": self.frames_rejected,
            "torn_frames": self.torn_frames,
            "backpressure_waits": self.backpressure_waits,
            "coalesced_groups": self.coalesced_groups,
            "coalesced_ops": self.coalesced_ops,
            "max_coalesced_ops": self.max_coalesced_ops,
            "dedup_hits": self.dedup_hits,
            "dedup_applied": self.dedup_applied,
            "leaked_threads": self.leaked_threads,
        }


class _DedupWindow:
    """One client's remembered write results (idempotent-retry dedup).

    ``results`` maps the client's write sequence to the result it was
    (or would have been) acked with; the lock makes check-and-apply
    atomic per client, so a retry racing its original attempt — the old
    connection's worker may still be draining when the client has
    already reconnected — can never double-apply.
    """

    __slots__ = ("lock", "results")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.results: OrderedDict[int, Any] = OrderedDict()


class _Connection:
    """One accepted socket plus its queue and threads."""

    __slots__ = ("sock", "queue", "reader", "worker", "closing", "peer")

    def __init__(self, sock: socket.socket, max_inflight: int) -> None:
        self.sock = sock
        self.queue: queue.Queue = queue.Queue(maxsize=max_inflight)
        self.closing = threading.Event()
        self.reader: threading.Thread | None = None
        self.worker: threading.Thread | None = None
        try:
            self.peer = "%s:%d" % sock.getpeername()[:2]
        except OSError:
            self.peer = "?"


class Server:
    """Serve one database over a framed socket protocol.

    ``db`` is either a raw :class:`~repro.lsm.db.DB` (keys and values are
    bytes; LOOKUP is rejected) or a
    :class:`~repro.core.database.SecondaryIndexedDB` (values are JSON
    documents; LOOKUP/RANGELOOKUP are served).  The server does not close
    ``db`` — the caller owns its lifecycle.

    Usage::

        server = Server(db)
        server.start()                 # returns once the port is bound
        host, port = server.address
        ...
        server.close()
    """

    def __init__(self, db: Any, host: str = "127.0.0.1", port: int = 0, *,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                 backlog: int = 128) -> None:
        if max_inflight < 1:
            raise InvalidArgumentError("max_inflight must be >= 1")
        self._host = host
        self._port = port
        self._backlog = backlog
        self.max_inflight = max_inflight
        self.max_frame_bytes = max_frame_bytes
        self.stats = ServerStats()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        self._closing = threading.Event()
        # Idempotent-retry dedup: client_id -> its bounded result window.
        # Per-client locks make check-and-apply atomic even when a retry
        # races the original attempt still draining on a dead connection.
        self._dedup: dict[str, _DedupWindow] = {}
        self._dedup_lock = threading.Lock()
        # -- engine binding -------------------------------------------------
        if isinstance(db, DB):
            self.db = db
            self._primary = db
            self._indexed = None
            # The pipeline engine takes concurrent writers natively (group
            # commit); the inline engine is single-threaded by contract, so
            # concurrent handlers must serialize.
            self._lock: threading.Lock | None = \
                None if db.options.background_compaction \
                else threading.Lock()
        elif hasattr(db, "data_shards"):
            # ShardedDB (duck-typed): the cluster facade expects one
            # mutating call at a time (replica fan-out + GSI maintenance),
            # so every op serializes behind the dispatch lock.
            self.db = db
            self._primary = None
            self._indexed = db
            self._lock = threading.Lock()
        else:
            # SecondaryIndexedDB (duck-typed): index maintenance and
            # validation are not concurrency-safe, so every op serializes,
            # whatever the primary table's pipeline setting.
            self.db = db
            self._primary = db.primary
            self._indexed = db
            self._lock = threading.Lock()
        self._step_hook = self._primary.options.step_hook \
            if self._primary is not None else getattr(db, "_step_hook", None)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, listen, and start accepting; returns the bound address."""
        if self._listener is not None:
            raise InvalidArgumentError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(self._backlog)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="server:accept", daemon=True)
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        assert self._listener is not None, "server not started"
        return self._listener.getsockname()[:2]

    def close(self, drain: bool = False, timeout: float = 5.0) -> None:
        """Stop the server and join all threads.

        ``drain=False`` (the default) drops every connection immediately:
        in-flight requests may die unanswered.  ``drain=True`` is the
        graceful path — the drain state machine (DESIGN.md §13):

        1. stop accepting (close the listener);
        2. half-close every connection for reading (``SHUT_RD``): each
           reader consumes the bytes already in flight, then sees a clean
           EOF and enqueues the end-of-stream marker *behind* every fully
           received request;
        3. each worker finishes its queued requests — commits them
           through the engine's group commit and writes every response —
           before it observes the marker and exits.

        A torn frame at the cut is discarded whole (never half-applied),
        and every request whose last byte arrived gets executed *and*
        answered, so a pipelining client loses nothing it was acked.

        Either way, threads still alive after their ``timeout`` join are
        counted in ``stats.leaked_threads`` (and logged) instead of being
        silently abandoned; tests assert the counter stays zero.
        """
        if self._closing.is_set():
            return
        self._closing.set()
        if self._listener is not None:
            # shutdown() before close(): close() alone does not wake a
            # thread already blocked in accept() on Linux — the silent
            # leak the leaked_threads counter exists to catch.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
        if drain:
            for conn in connections:
                try:
                    conn.sock.shutdown(socket.SHUT_RD)
                except OSError:
                    pass
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=timeout)
            for conn in connections:
                for thread in (conn.reader, conn.worker):
                    if thread is not None:
                        thread.join(timeout=timeout)
        # Hard phase: whatever is still up (everything, when drain=False;
        # only stragglers past the drain timeout otherwise) gets dropped.
        for conn in connections:
            conn.closing.set()
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        for conn in connections:
            for thread in (conn.reader, conn.worker):
                if thread is not None:
                    thread.join(timeout=timeout)
        leaked = 0
        if self._accept_thread is not None \
                and self._accept_thread.is_alive():
            leaked += 1
        for conn in connections:
            for thread in (conn.reader, conn.worker):
                if thread is not None and thread.is_alive():
                    leaked += 1
        if leaked:
            self.stats.leaked_threads += leaked
            logger.warning("server close leaked %d threads "
                           "(still alive after %.1fs joins)", leaked, timeout)

    def __enter__(self) -> "Server":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def active_connections(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    # -- accept / reader / worker ---------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock, self.max_inflight)
            with self._conn_lock:
                if self._closing.is_set():
                    sock.close()
                    return
                self._connections.add(conn)
                self.stats.connections_accepted += 1
            conn.reader = threading.Thread(
                target=self._reader_main, args=(conn,),
                name=f"server:read:{conn.peer}", daemon=True)
            conn.worker = threading.Thread(
                target=self._worker_main, args=(conn,),
                name=f"server:work:{conn.peer}", daemon=True)
            conn.worker.start()
            conn.reader.start()

    def _enqueue(self, conn: _Connection, item: Any) -> None:
        """Bounded put: block (backpressure) until the worker makes room.

        The timeout loop keeps a dead worker (or a server close) from
        wedging the reader thread forever.
        """
        try:
            conn.queue.put_nowait(item)
            return
        except queue.Full:
            self.stats.backpressure_waits += 1
        while not conn.closing.is_set():
            try:
                conn.queue.put(item, timeout=0.1)
                return
            except queue.Full:
                if conn.worker is not None and not conn.worker.is_alive():
                    return

    def _reader_main(self, conn: _Connection) -> None:
        """Frames off the socket, into the bounded queue; nothing else.

        Request *decoding* happens on the worker so a slow/corrupt payload
        cannot stall frame reassembly accounting, and so torn frames are
        discarded before anything could act on them.
        """
        try:
            while not conn.closing.is_set():
                payload = read_frame(conn.sock, self.max_frame_bytes)
                if payload is None:
                    break  # clean EOF between frames
                self._enqueue(conn, payload)
        except FrameTooLargeError as exc:
            self.stats.frames_rejected += 1
            # The oversized payload was never read, so the stream cannot
            # be re-synchronized: report and drop the connection.
            self._enqueue(conn, (_REJECT, str(exc)))
            return  # worker closes the socket after responding
        except TornFrameError:
            self.stats.torn_frames += 1
        except OSError:
            pass  # connection reset / server close
        finally:
            self._enqueue(conn, _EOF)

    def _next_item(self, conn: _Connection) -> Any:
        """Worker-side blocking dequeue, cooperative under a step hook.

        With the deterministic scheduler installed, a plain blocking get
        would hold the run token while waiting and freeze every scheduled
        thread; instead the wait is a guarded park, same pattern as
        ``DB._await_locked``.
        """
        hook = self._step_hook
        if hook is None:
            return conn.queue.get()
        park_until = getattr(hook, "park_until", None)
        while True:
            try:
                return conn.queue.get_nowait()
            except queue.Empty:
                pass
            if conn.closing.is_set():
                return _EOF
            if park_until is not None:
                park_until("server:recv",
                           lambda: not conn.queue.empty()
                           or conn.closing.is_set())
            else:
                hook("server:recv")

    def _worker_main(self, conn: _Connection) -> None:
        pushback: list[Any] = []  # at most one item read ahead

        def next_item() -> Any:
            if pushback:
                return pushback.pop()
            return self._next_item(conn)

        try:
            while True:
                item = next_item()
                if item is _EOF:
                    return
                if isinstance(item, tuple) and item[0] == _REJECT:
                    self._respond(conn, 0, STATUS_ERROR,
                                  ["FrameTooLargeError", item[1]])
                    return
                request = self._decode_request(conn, item)
                if request is None:
                    continue  # error already answered; stream still synced
                request_id, op, args = request
                if op in ("put", "delete") and self._can_coalesce():
                    batch_members = [(request_id, op, args)]
                    while len(batch_members) < MAX_COALESCED_OPS \
                            and not conn.queue.empty():
                        try:
                            follow = conn.queue.get_nowait()
                        except queue.Empty:
                            break
                        if isinstance(follow, bytes):
                            decoded = self._decode_request(conn, follow)
                            if decoded is None:
                                continue
                            if decoded[1] in ("put", "delete"):
                                batch_members.append(decoded)
                                continue
                            pushback.append(follow)
                        else:
                            pushback.append(follow)
                        break
                    self._execute_write_run(conn, batch_members)
                else:
                    self._execute(conn, request_id, op, args)
        except BrokenPipeError:
            pass  # peer vanished while a response was in flight
        except OSError:
            pass
        finally:
            try:
                conn.sock.close()
            except OSError:
                pass
            with self._conn_lock:
                self._connections.discard(conn)

    # -- request handling -------------------------------------------------------

    def _decode_request(self, conn: _Connection, payload: bytes
                        ) -> tuple[int, str, list] | None:
        """Parse one request; answers (and absorbs) malformed ones.

        Framing stayed in sync, so a bad payload costs one error response,
        not the connection.
        """
        self.stats.requests += 1
        try:
            request = decode_value(payload)
            if not isinstance(request, list) or len(request) < 2:
                raise InvalidArgumentError(
                    "request must be [id, op, *args]")
            request_id, op = request[0], request[1]
            if not isinstance(request_id, int) or not isinstance(op, str):
                raise InvalidArgumentError(
                    "request id must be int, op must be str")
            return request_id, op, request[2:]
        except Exception as exc:  # noqa: BLE001 - reported to the peer
            self._respond(conn, 0, STATUS_ERROR,
                          [type(exc).__name__, str(exc)])
            return None

    def _respond(self, conn: _Connection, request_id: int, status: int,
                 payload: Any) -> None:
        self.stats.responses += 1
        if status == STATUS_ERROR:
            self.stats.errors += 1
        conn.sock.sendall(encode_frame(encode_value(
            [request_id, status, payload])))

    def _execute(self, conn: _Connection, request_id: int, op: str,
                 args: list) -> None:
        try:
            result = self._dispatch(op, args)
        except Exception as exc:  # noqa: BLE001 - reported to the peer
            self._respond(conn, request_id, STATUS_ERROR,
                          [type(exc).__name__, str(exc)])
            return
        self._respond(conn, request_id, STATUS_OK, result)

    def _can_coalesce(self) -> bool:
        # Raw-DB pipeline mode only: the run becomes one WriteBatch (one
        # group-commit entry).  Indexed/inline engines execute op by op.
        return self._indexed is None and self._lock is None

    def _execute_write_run(self, conn: _Connection,
                           members: list[tuple[int, str, list]]) -> None:
        """Commit a run of pipelined writes as one atomic WriteBatch.

        All members succeed (each acked with its own sequence number) or
        all fail with the same error — exactly the engine's group-commit
        contract, surfaced per request.
        """
        if len(members) == 1:
            request_id, op, args = members[0]
            self._execute(conn, request_id, op, args)
            return
        batch = WriteBatch()
        try:
            for _request_id, op, args in members:
                key, value = self._write_args(op, args)
                if op == "put":
                    batch.put(key, value)
                else:
                    batch.delete(key)
        except Exception as exc:  # noqa: BLE001 - malformed member
            # Fall back to op-by-op so the well-formed members still apply
            # and only the malformed one is refused.
            for request_id, op, args in members:
                self._execute(conn, request_id, op, args)
            del exc
            return
        try:
            last_seq = self.db.write(batch)
        except Exception as exc:  # noqa: BLE001 - shared by the whole run
            for request_id, _op, _args in members:
                self._respond(conn, request_id, STATUS_ERROR,
                              [type(exc).__name__, str(exc)])
            return
        self.stats.coalesced_groups += 1
        self.stats.coalesced_ops += len(members)
        if len(members) > self.stats.max_coalesced_ops:
            self.stats.max_coalesced_ops = len(members)
        first_seq = last_seq - len(members) + 1
        for offset, (request_id, _op, _args) in enumerate(members):
            self._respond(conn, request_id, STATUS_OK, first_seq + offset)

    @staticmethod
    def _write_args(op: str, args: list) -> tuple[bytes, bytes]:
        if op == "put":
            if len(args) != 2:
                raise InvalidArgumentError("put needs [key, value]")
            key, value = args
            if not isinstance(value, bytes):
                raise InvalidArgumentError("put value must be bytes")
            return key_to_bytes(key), value
        if len(args) != 1:
            raise InvalidArgumentError("delete needs [key]")
        return key_to_bytes(args[0]), b""

    # -- op dispatch -------------------------------------------------------------

    def _dispatch(self, op: str, args: list) -> Any:
        if op == "apply":
            # Handled outside the engine lock: _op_apply re-enters
            # _dispatch for the inner op (the lock is not reentrant).
            return self._op_apply(args)
        if self._lock is not None:
            with self._lock:
                return self._dispatch_unlocked(op, args)
        return self._dispatch_unlocked(op, args)

    def _op_apply(self, args: list) -> Any:
        """Idempotent write envelope: ``[client_id, client_seq, op, args]``.

        The first application stores its result in the client's dedup
        window; a retry of the same ``(client_id, client_seq)`` replays
        that result — same sequence number, nothing re-applied.  Errors
        are not cached: nothing was applied, so retrying is safe, and a
        deterministic error simply errors again.
        """
        if len(args) != 4 or not isinstance(args[0], str) \
                or not isinstance(args[1], int) \
                or not isinstance(args[2], str) \
                or not isinstance(args[3], list):
            raise InvalidArgumentError(
                "apply needs [client_id, client_seq, op, args]")
        client_id, client_seq, op, inner_args = args
        if op not in ("put", "delete"):
            raise InvalidArgumentError(
                f"apply wraps writes only, not {op!r} "
                "(reads are idempotent without it)")
        with self._dedup_lock:
            window = self._dedup.get(client_id)
            if window is None:
                window = self._dedup[client_id] = _DedupWindow()
        with window.lock:
            if client_seq in window.results:
                self.stats.dedup_hits += 1
                return window.results[client_seq]
            result = self._dispatch(op, inner_args)
            self.stats.dedup_applied += 1
            window.results[client_seq] = result
            while len(window.results) > DEDUP_WINDOW:
                window.results.popitem(last=False)
            return result

    def _dispatch_unlocked(self, op: str, args: list) -> Any:
        if op == "put":
            return self._op_put(args)
        if op == "get":
            return self._op_get(args)
        if op == "delete":
            return self._op_delete(args)
        if op == "scan":
            return self._op_scan(args)
        if op == "lookup":
            return self._op_lookup(args)
        if op == "rangelookup":
            return self._op_range_lookup(args)
        if op == "stats":
            return self._op_stats()
        raise InvalidArgumentError(f"unknown op {op!r}")

    def _op_put(self, args: list) -> int:
        if self._indexed is not None:
            if len(args) != 2 or not isinstance(args[1], dict):
                raise InvalidArgumentError(
                    "put needs [key, document] (document mode)")
            return self._indexed.put(args[0], args[1])
        key, value = self._write_args("put", args)
        return self.db.put(key, value)

    def _op_get(self, args: list) -> Any:
        if len(args) != 1:
            raise InvalidArgumentError("get needs [key]")
        if self._indexed is not None:
            return self._indexed.get(args[0])
        return self.db.get(key_to_bytes(args[0]))

    def _op_delete(self, args: list) -> int:
        if len(args) != 1:
            raise InvalidArgumentError("delete needs [key]")
        if self._indexed is not None:
            return self._indexed.delete(args[0])
        key, _ = self._write_args("delete", args)
        return self.db.delete(key)

    def _op_scan(self, args: list) -> list:
        lo = args[0] if len(args) > 0 else None
        hi = args[1] if len(args) > 1 else None
        limit = args[2] if len(args) > 2 else None
        if limit is None:
            limit = DEFAULT_SCAN_LIMIT
        lo_b = key_to_bytes(lo) if lo is not None else None
        hi_b = key_to_bytes(hi) if hi is not None else None
        out = []
        if self._indexed is not None:
            for key, document in self._indexed.scan(lo, hi):
                out.append([key, document])
                if len(out) >= limit:
                    break
            return out
        for key, value in self.db.scan(lo_b, hi_b):
            out.append([key, value])
            if len(out) >= limit:
                break
        return out

    def _op_lookup(self, args: list) -> list:
        if self._indexed is None:
            raise InvalidArgumentError(
                "LOOKUP needs a server started with secondary indexes "
                "(repro serve --indexes ...)")
        if len(args) < 2:
            raise InvalidArgumentError("lookup needs [attribute, value, k?]")
        attribute, value = args[0], args[1]
        k = args[2] if len(args) > 2 else None
        results = self._indexed.lookup(attribute, value, k)
        return [[r.key, r.document, r.seq] for r in results]

    def _op_range_lookup(self, args: list) -> list:
        if self._indexed is None:
            raise InvalidArgumentError(
                "RANGELOOKUP needs a server started with secondary indexes "
                "(repro serve --indexes ...)")
        if len(args) < 3:
            raise InvalidArgumentError(
                "rangelookup needs [attribute, low, high, k?]")
        attribute, low, high = args[0], args[1], args[2]
        k = args[3] if len(args) > 3 else None
        results = self._indexed.range_lookup(attribute, low, high, k)
        return [[r.key, r.document, r.seq] for r in results]

    def _op_stats(self) -> dict:
        stats = self.db.stats() if self._primary is None \
            else self._primary.stats()
        return {
            "db": _jsonish(stats),
            "server": self.stats.as_dict(),
            "active_connections": self.active_connections(),
        }


def _jsonish(value: Any) -> Any:
    """Clamp a stats tree to codec-safe types (defensive copy)."""
    if isinstance(value, dict):
        return {key: _jsonish(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonish(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    return repr(value)


# Typing helper for CLI wiring; avoids an import cycle with tools.py.
ServeFactory = Callable[[], Server]
