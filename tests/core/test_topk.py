"""Top-K-by-recency heap (the paper's Algorithm 1)."""

import random

import pytest

from repro.core.topk import TopKBySeq


class TestBounded:
    def test_keeps_k_newest(self):
        heap = TopKBySeq(3)
        for seq in [5, 1, 9, 3, 7]:
            heap.add(seq, f"item{seq}")
        assert heap.results() == ["item9", "item7", "item5"]

    def test_results_newest_first(self):
        heap = TopKBySeq(10)
        for seq in [2, 8, 4]:
            heap.add(seq, seq)
        assert heap.results() == [8, 4, 2]

    def test_is_full(self):
        heap = TopKBySeq(2)
        assert not heap.is_full
        heap.add(1, "a")
        heap.add(2, "b")
        assert heap.is_full

    def test_add_reports_retention(self):
        heap = TopKBySeq(1)
        assert heap.add(5, "a") is True
        assert heap.add(3, "b") is False  # older than root
        assert heap.add(9, "c") is True
        assert heap.results() == ["c"]

    def test_would_accept(self):
        heap = TopKBySeq(2)
        assert heap.would_accept(0)
        heap.add(5, "a")
        heap.add(7, "b")
        assert not heap.would_accept(4)
        assert not heap.would_accept(5)  # ties lose to the incumbent
        assert heap.would_accept(6)

    def test_min_seq(self):
        heap = TopKBySeq(2)
        assert heap.min_seq() is None
        heap.add(5, "a")
        heap.add(9, "b")
        assert heap.min_seq() == 5

    def test_equal_seq_stable(self):
        heap = TopKBySeq(None)
        heap.add(5, "first")
        heap.add(5, "second")
        assert heap.results() == ["second", "first"]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKBySeq(0)
        with pytest.raises(ValueError):
            TopKBySeq(-3)


class TestUnbounded:
    def test_none_keeps_everything(self):
        heap = TopKBySeq(None)
        for seq in range(100):
            heap.add(seq, seq)
        assert len(heap) == 100
        assert not heap.is_full
        assert heap.would_accept(0)
        assert heap.results() == list(range(99, -1, -1))


class TestRandomized:
    def test_matches_sorted_oracle(self):
        rng = random.Random(3)
        for k in (1, 5, 50):
            heap = TopKBySeq(k)
            seqs = rng.sample(range(100000), 500)
            for seq in seqs:
                heap.add(seq, seq)
            assert heap.results() == sorted(seqs, reverse=True)[:k]
