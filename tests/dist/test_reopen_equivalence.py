"""Reopen-after-split equivalence: the durable-topology payoff.

Before the CLUSTER manifest, a durable cluster that split a shard and
then reopened came back at the *base* shard count — moved keys silently
vanished (the DESIGN.md §12 caveat).  These tests pin the fix: for every
index kind, a cluster that splits under load, closes, and reopens
through the manifest answers every query identically to the live
cluster it was, and its durable stats advertise the reopened topology.
"""

import pytest

from repro.core.base import IndexKind
from repro.dist.cluster import ShardedDB
from repro.lsm.vfs import MemoryVFS

from tests.dist.test_equivalence import ALL_KINDS, _answers, _apply_workload, \
    _options


def _durable_factory():
    """A vfs_factory whose MemoryVFS instances survive cluster close —
    the in-memory stand-in for disks that outlive the process."""
    stores = {}

    def factory(shard_id, replica_id):
        return stores.setdefault((shard_id, replica_id), MemoryVFS())

    return factory


def _open(factory, meta, kind=None, **kwargs):
    local = {"UserID": kind} if kind is not None else None
    return ShardedDB.open(factory, num_shards=2, replication_factor=1,
                          local_indexes=local, options=_options(),
                          meta_vfs=meta, **kwargs)


class TestReopenAfterSplit:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.name)
    def test_reopen_matches_live_cluster_for_every_kind(self, kind):
        factory = _durable_factory()
        meta = MemoryVFS()
        cluster = _open(factory, meta, kind)
        _apply_workload(cluster, seed=5, num_ops=160)
        cluster.split_shard(0)
        _apply_workload(cluster, seed=6, num_ops=80)
        expected = _answers(cluster)
        shards_before = len(cluster.data_shards)
        cluster.close()

        # Reopen through the manifest alone: topology arguments are
        # deliberately wrong/absent and must be overridden.
        reopened = ShardedDB.open(factory, num_shards=2,
                                  options=_options(), meta_vfs=meta)
        try:
            assert len(reopened.data_shards) == shards_before == 3
            assert reopened.ring.splits == ((0, 2),)
            assert _answers(reopened) == expected
            report = reopened.verify_integrity()
            assert all(r.ok for r in report.values())
        finally:
            reopened.close()

    def test_reopen_without_manifest_still_loses_splits(self):
        """The §12 failure mode, kept as a contrast pin: no meta_vfs, no
        durable topology — reopen lands on the base ring and the moved
        keys are unreachable.  (This is what the manifest exists to fix.)"""
        factory = _durable_factory()
        cluster = _open(factory, meta=None, kind=IndexKind.LAZY)
        _apply_workload(cluster, seed=5, num_ops=160)
        cluster.split_shard(0)
        live = dict(cluster.scan())
        cluster.close()
        reopened = _open(factory, meta=None, kind=IndexKind.LAZY)
        try:
            assert len(reopened.data_shards) == 2
            visible = dict(reopened.scan())
            assert set(visible) < set(live)  # moved keys are gone
        finally:
            reopened.close()

    @pytest.mark.parametrize("shape", ["hash", "range"])
    def test_global_index_shape_survives_reopen(self, shape):
        factory = _durable_factory()
        meta = MemoryVFS()
        kwargs = {"global_indexes": ("UserID",)}
        if shape == "range":
            kwargs["global_split_points"] = {"UserID": ["u003", "u006"]}
        cluster = ShardedDB.open(factory, num_shards=2,
                                 replication_factor=1, options=_options(),
                                 meta_vfs=meta, **kwargs)
        _apply_workload(cluster, seed=11, num_ops=160)
        cluster.split_shard(0)
        expected = _answers(cluster)
        expected_partitioners = [
            type(p).__name__ for p in
            [cluster.global_indexes["UserID"].partitioner]]
        cluster.close()

        reopened = ShardedDB.open(factory, options=_options(), meta_vfs=meta)
        try:
            assert tuple(reopened.global_indexes) == ("UserID",)
            got_partitioners = [
                type(reopened.global_indexes["UserID"].partitioner).__name__]
            assert got_partitioners == expected_partitioners
            assert _answers(reopened) == expected
        finally:
            reopened.close()

    def test_second_reopen_is_stable(self):
        """Reopening twice (no writes in between) keeps epoch, topology
        and answers identical — recovery is idempotent."""
        factory = _durable_factory()
        meta = MemoryVFS()
        cluster = _open(factory, meta, IndexKind.LAZY)
        _apply_workload(cluster, seed=2, num_ops=120)
        cluster.split_shard(0)
        expected = _answers(cluster)
        cluster.close()

        first = ShardedDB.open(factory, options=_options(), meta_vfs=meta)
        epoch = first.stats()["topology"]["epoch"]
        assert _answers(first) == expected
        first.close()

        second = ShardedDB.open(factory, options=_options(), meta_vfs=meta)
        try:
            assert second.stats()["topology"]["epoch"] == epoch
            assert _answers(second) == expected
        finally:
            second.close()

    def test_stats_report_durable_topology(self):
        factory = _durable_factory()
        meta = MemoryVFS()
        cluster = _open(factory, meta, IndexKind.LAZY)
        try:
            topology = cluster.stats()["topology"]
            assert topology["durable"] is True
            assert topology["in_flight"] is None
            assert topology["pending_cleanup"] is False
        finally:
            cluster.close()
        ephemeral = ShardedDB.open_memory(num_shards=2, options=_options())
        try:
            assert ephemeral.stats()["topology"] is None
        finally:
            ephemeral.close()
