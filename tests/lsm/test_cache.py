"""Block cache and the OS buffer-cache simulator."""

from repro.lsm.cache import BufferCacheSimulator, LRUCache
from repro.lsm.vfs import Category, DEVICE_BLOCK_SIZE, MemoryVFS


class TestLRUCache:
    def test_hit_miss_counting(self):
        cache = LRUCache(100)
        assert cache.get("a") is None
        cache.put("a", "value", 10)
        assert cache.get("a") == "value"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_by_size(self):
        cache = LRUCache(100)
        cache.put("a", 1, 60)
        cache.put("b", 2, 60)  # evicts a
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.used_bytes == 60

    def test_lru_order(self):
        cache = LRUCache(100)
        cache.put("a", 1, 40)
        cache.put("b", 2, 40)
        cache.get("a")  # refresh a
        cache.put("c", 3, 40)  # evicts b (least recent)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_oversized_item_not_cached(self):
        cache = LRUCache(10)
        cache.put("big", 1, 100)
        assert cache.get("big") is None
        assert len(cache) == 0

    def test_replace_updates_size(self):
        cache = LRUCache(100)
        cache.put("a", 1, 30)
        cache.put("a", 2, 50)
        assert cache.used_bytes == 50
        assert cache.get("a") == 2

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1, 1)
        assert cache.get("a") is None

    def test_oversized_put_evicts_stale_entry_under_same_key(self):
        """An uncacheable new value must not leave the old one servable."""
        cache = LRUCache(100)
        cache.put("k", "old", 10)
        cache.put("k", "new-but-too-big", 200)  # cannot be cached
        assert cache.get("k") is None  # seed bug: returned "old"
        assert cache.used_bytes == 0
        assert len(cache) == 0

    def test_oversized_put_keeps_other_entries(self):
        cache = LRUCache(100)
        cache.put("other", 1, 10)
        cache.put("k", "small", 10)
        cache.put("k", "huge", 999)
        assert cache.get("other") == 1
        assert cache.used_bytes == 10


class TestBufferCacheSimulator:
    def _make(self, pages=4):
        base = MemoryVFS()
        cache = BufferCacheSimulator(base, pages * DEVICE_BLOCK_SIZE)
        return base, cache

    def test_written_pages_are_hot(self):
        _base, cache = self._make()
        cache.write_whole("f", b"x" * 100)
        cache.reset_stats()
        reader = cache.open_random("f")
        reader.read_at(0, 100, Category.DATA)
        assert cache.hits == 1
        assert cache.stats.read_blocks == 0  # served from "RAM"

    def test_cold_read_charges_then_caches(self):
        base, cache = self._make()
        base.write_whole("f", b"x" * 100)  # written behind the cache's back
        reader = cache.open_random("f")
        reader.read_at(0, 100, Category.DATA)
        assert cache.misses == 1
        assert cache.stats.read_blocks == 1
        reader.read_at(0, 100, Category.DATA)
        assert cache.hits == 1
        assert cache.stats.read_blocks == 1  # unchanged

    def test_partial_residency_charges_missing_pages_only(self):
        base, cache = self._make(pages=8)
        base.write_whole("f", b"x" * (DEVICE_BLOCK_SIZE * 3))
        reader = cache.open_random("f")
        reader.read_at(0, DEVICE_BLOCK_SIZE, Category.DATA)  # page 0 cached
        before = cache.stats.read_blocks
        reader.read_at(0, DEVICE_BLOCK_SIZE * 3, Category.DATA)
        assert cache.stats.read_blocks - before == 2  # pages 1 and 2 only

    def test_delete_invalidates(self):
        """Compaction's file turnover invalidates cached pages (Figure 12)."""
        _base, cache = self._make()
        cache.write_whole("f", b"x" * 10)
        cache.delete("f")
        cache.write_whole("f", b"y" * 10)
        # write re-populates, so drop the file once more to force a cold read
        cache._drop_file("f")
        cache.reset_stats()
        reader = cache.open_random("f")
        reader.read_at(0, 10, Category.DATA)
        assert cache.misses >= 1
        assert cache.stats.read_blocks == 1

    def test_capacity_eviction(self):
        base, cache = self._make(pages=2)
        base.write_whole("f", b"x" * (DEVICE_BLOCK_SIZE * 4))
        reader = cache.open_random("f")
        reader.read_at(0, DEVICE_BLOCK_SIZE * 4, Category.DATA)  # 4 misses
        reader.read_at(0, DEVICE_BLOCK_SIZE, Category.DATA)  # page 0 evicted
        assert cache.misses == 5

    def test_reset_stats_zeroes_hit_miss_counters(self):
        """Epoch deltas in the cache ablation bench must start from zero."""
        base, cache = self._make()
        base.write_whole("f", b"x" * 100)
        reader = cache.open_random("f")
        reader.read_at(0, 100, Category.DATA)  # miss
        reader.read_at(0, 100, Category.DATA)  # hit
        assert cache.hits == 1 and cache.misses == 1
        cache.reset_stats()
        assert cache.hits == 0  # seed bug: previous epoch leaked through
        assert cache.misses == 0
        assert cache.stats.read_blocks == 0

    def test_reset_stats_keeps_pages_resident(self):
        """Counters are epoch-scoped; the simulated page cache stays warm."""
        base, cache = self._make()
        base.write_whole("f", b"x" * 100)
        cache.open_random("f").read_at(0, 100, Category.DATA)
        cache.reset_stats()
        cache.open_random("f").read_at(0, 100, Category.DATA)
        assert cache.hits == 1 and cache.misses == 0
        assert cache.stats.read_blocks == 0  # still served from "RAM"

    def test_uncharged_read_bypasses_cache(self):
        base, cache = self._make()
        base.write_whole("f", b"x" * 10)
        reader = cache.open_random("f")
        reader.read_at(0, 10, Category.DATA, charge=False)
        assert cache.hits == 0 and cache.misses == 0
        assert cache.stats.read_blocks == 0

    def test_vfs_passthrough(self):
        _base, cache = self._make()
        cache.write_whole("a/f", b"123")
        assert cache.exists("a/f")
        assert cache.file_size("a/f") == 3
        assert cache.list_dir("a/") == ["a/f"]
        assert cache.total_size("a/") == 3
        cache.rename("a/f", "a/g")
        assert cache.read_whole("a/g") == b"123"
