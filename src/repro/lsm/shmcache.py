"""Cross-process block cache over ``multiprocessing.shared_memory``.

The multiprocess compaction pipeline (DESIGN.md §11) splits CPU across
interpreters, but a worker that just wrote and verified a data block would
otherwise throw the decoded bytes away — the serving process re-reads and
re-decompresses them on first touch.  :class:`SharedBlockCache` closes that
gap: one fixed-size shared-memory segment holds decompressed, CRC-guarded
data-block payloads keyed by ``(file_number, offset)`` (the same key the
per-process :class:`~repro.lsm.cache.LRUCache` uses), writable and readable
from every participating process without locks.

Layout::

    [header: magic u32 | slot_size u32 | slot_count u32 | pad]
    [slot 0] [slot 1] ... [slot N-1]

    slot := generation u32 | length u32 | payload_crc u32
            | file_number u64 | offset u64 | pad to 32 | payload bytes

Concurrency is a per-slot *seqlock* with optimistic writers:

* A writer reads the generation; odd means another writer is mid-store, so
  it simply skips (a cache may always decline).  Otherwise it bumps the
  generation to odd, writes key + payload, and bumps it back to even.
* A reader snapshots the generation (odd => miss), copies the slot, and
  re-reads the generation; any change => miss.
* Two racing writers can both pass the odd-check and interleave — the
  classic multi-writer seqlock hole.  That is why every payload carries its
  own CRC32: a torn slot fails the checksum and reads as a miss, never as
  wrong bytes.  The cache is an accelerator; correctness never depends on
  a hit.

Placement is direct-mapped (one slot per key hash), so "eviction" is just
overwrite — no shared free lists or LRU chains to coordinate.  Each
participant keeps private hit/miss/store counters; workers report theirs
back over the job pipe for ``DB.stats()["pipeline"]``.
"""

from __future__ import annotations

import struct
import zlib
from multiprocessing import shared_memory

from repro.lsm.block import Block
from repro.lsm.cache import LRUCache

_HEADER = struct.Struct("<III")
_HEADER_SIZE = 16
_SLOT_HEADER = struct.Struct("<IIIQQ")
_SLOT_HEADER_SIZE = 32
_MAGIC = 0x53484D42  # "SHMB"

#: Mixing constants (splitmix64 / xxhash odd multipliers) for the
#: direct-map placement; must be identical in every participant.
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xC2B2AE3D27D4EB4F
_MASK64 = (1 << 64) - 1


def slot_payload_bytes(options) -> int:
    """Per-slot payload capacity for ``options`` (auto = 2 * block_size)."""
    if options.shm_slot_bytes > 0:
        return options.shm_slot_bytes
    return 2 * options.block_size


class SharedBlockCache:
    """One participant's handle on the shared segment.

    Create exactly one segment per DB (the coordinator owns and unlinks
    it); workers :meth:`attach` by name.  All counters are local to the
    handle — shared counters would need the cross-process synchronisation
    this design exists to avoid.
    """

    def __init__(self, shm: shared_memory.SharedMemory, slot_bytes: int,
                 slot_count: int, owner: bool) -> None:
        self._shm = shm
        self._buf = shm.buf
        self.slot_bytes = slot_bytes
        self.slot_count = slot_count
        self._owner = owner
        self._slot_stride = _SLOT_HEADER_SIZE + slot_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.store_skips = 0  # too big, slot busy, or lost a writer race
        self.evictions = 0    # stores that overwrote a different live key

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, capacity_bytes: int, slot_bytes: int) -> "SharedBlockCache":
        stride = _SLOT_HEADER_SIZE + slot_bytes
        slot_count = max(1, (capacity_bytes - _HEADER_SIZE) // stride)
        size = _HEADER_SIZE + slot_count * stride
        shm = shared_memory.SharedMemory(create=True, size=size)
        shm.buf[:size] = b"\x00" * size
        _HEADER.pack_into(shm.buf, 0, _MAGIC, slot_bytes, slot_count)
        return cls(shm, slot_bytes, slot_count, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedBlockCache":
        shm = _attach_untracked(name)
        magic, slot_bytes, slot_count = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise ValueError(f"shared segment {name!r} is not a block cache")
        return cls(shm, slot_bytes, slot_count, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._buf = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    # -- slot access --------------------------------------------------------

    def _slot_offset(self, file_number: int, offset: int) -> int:
        mixed = ((file_number * _MIX_A) + (offset * _MIX_B)) & _MASK64
        return _HEADER_SIZE + (mixed % self.slot_count) * self._slot_stride

    def get(self, key: tuple[int, int]) -> bytes | None:
        """The cached payload for ``key``, or ``None``.

        Returned bytes are a private copy, CRC-verified against the slot's
        stored checksum — torn or recycled slots surface as misses.
        """
        file_number, offset = key
        base = self._slot_offset(file_number, offset)
        buf = self._buf
        gen1, length, crc, slot_file, slot_off = _SLOT_HEADER.unpack_from(
            buf, base)
        if (gen1 & 1) or length == 0 or length > self.slot_bytes \
                or slot_file != file_number or slot_off != offset:
            self.misses += 1
            return None
        start = base + _SLOT_HEADER_SIZE
        payload = bytes(buf[start:start + length])
        gen2 = _SLOT_HEADER.unpack_from(buf, base)[0]
        if gen2 != gen1 or zlib.crc32(payload) & 0xFFFFFFFF != crc:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: tuple[int, int], payload: bytes) -> bool:
        """Store ``payload`` under ``key``; False if declined (never fails)."""
        length = len(payload)
        if length == 0 or length > self.slot_bytes:
            self.store_skips += 1
            return False
        file_number, offset = key
        base = self._slot_offset(file_number, offset)
        buf = self._buf
        gen, old_len, _crc, old_file, old_off = _SLOT_HEADER.unpack_from(
            buf, base)
        if gen & 1:  # another writer mid-store: decline rather than race
            self.store_skips += 1
            return False
        if old_len and (old_file, old_off) != (file_number, offset):
            self.evictions += 1
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        next_gen = (gen + 1) & 0xFFFFFFFF
        _SLOT_HEADER.pack_into(buf, base, next_gen, length, crc,
                               file_number, offset)
        start = base + _SLOT_HEADER_SIZE
        buf[start:start + length] = payload
        _SLOT_HEADER.pack_into(buf, base, (next_gen + 1) & 0xFFFFFFFF,
                               length, crc, file_number, offset)
        self.stores += 1
        return True

    def evict(self, key: tuple[int, int]) -> bool:
        """Invalidate ``key``'s slot if it holds that key (poison control)."""
        file_number, offset = key
        base = self._slot_offset(file_number, offset)
        gen, length, _crc, slot_file, slot_off = _SLOT_HEADER.unpack_from(
            self._buf, base)
        if length == 0 or slot_file != file_number or slot_off != offset:
            return False
        _SLOT_HEADER.pack_into(self._buf, base, (gen + 2) & 0xFFFFFFFE,
                               0, 0, 0, 0)
        return True

    def evict_file(self, file_number: int) -> int:
        """Invalidate every slot holding a block of ``file_number``.

        Quarantine path: a table whose bytes are suspect must not keep
        serving any block from any cache, shared ones included.  Linear
        scan — this is a containment event, not a hot path.
        """
        dropped = 0
        buf = self._buf
        for slot in range(self.slot_count):
            base = _HEADER_SIZE + slot * self._slot_stride
            gen, length, _crc, slot_file, _off = _SLOT_HEADER.unpack_from(
                buf, base)
            if length and slot_file == file_number:
                _SLOT_HEADER.pack_into(buf, base, (gen + 2) & 0xFFFFFFFE,
                                       0, 0, 0, 0)
                dropped += 1
        return dropped

    def stats_dict(self) -> dict[str, int]:
        return {
            "slot_count": self.slot_count,
            "slot_bytes": self.slot_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_skips": self.store_skips,
            "evictions": self.evictions,
        }


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering with the resource tracker.

    The tracker would otherwise unlink the segment when *any* attaching
    process exits — and spawned workers share the coordinator's tracker
    process, so even an ``unregister`` after the fact would erase the
    owner's registration (seen as a ``KeyError`` in the tracker at exit).
    Python 3.13 grew ``track=False`` for exactly this; on 3.11 the escape
    hatch is suppressing ``register`` around the attach (bpo-39959).
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *_args, **_kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShmBackedBlockCache:
    """The ``SSTable._block_cache`` facade layering shm behind a local LRU.

    Lookup order: local LRU (decoded :class:`Block` objects, zero copy) ->
    shared segment (payload bytes; a hit decodes and back-fills the local
    LRU, skipping disk, CRC and decompression) -> miss.  Stores go to both.
    Presents the same ``get``/``put``/``evict``/``evict_file`` + counter
    surface as :class:`~repro.lsm.cache.LRUCache`, so the table cache and
    ``DB.stats`` treat either interchangeably.
    """

    def __init__(self, shared: SharedBlockCache,
                 local: LRUCache | None) -> None:
        self.shared = shared
        self.local = local
        self.hits = 0
        self.misses = 0

    def get(self, key):
        if self.local is not None:
            block = self.local.get(key)
            if block is not None:
                self.hits += 1
                return block
        payload = self.shared.get(key)
        if payload is not None:
            self.hits += 1
            block = Block(payload)
            if self.local is not None:
                self.local.put(key, block, len(payload))
            return block
        self.misses += 1
        return None

    def put(self, key, block, size: int) -> None:
        if self.local is not None:
            self.local.put(key, block, size)
        self.shared.put(key, block.data)

    def evict(self, key) -> bool:
        dropped = False
        if self.local is not None:
            dropped = self.local.evict(key)
        return self.shared.evict(key) or dropped

    def evict_file(self, file_number: int) -> int:
        dropped = 0
        if self.local is not None:
            dropped = self.local.evict_file(file_number)
        return dropped + self.shared.evict_file(file_number)

    @property
    def capacity(self) -> int:
        local = self.local.capacity if self.local is not None else 0
        return local + self.shared.slot_count * self.shared.slot_bytes

    @property
    def used_bytes(self) -> int:
        return self.local.used_bytes if self.local is not None else 0
