"""Maintenance CLI: inspect, dump, verify, and profile databases.

Mirrors LevelDB's ``ldb``/``leveldbutil`` utilities::

    python -m repro stats   <directory> <db-name>
    python -m repro dump    <directory> <db-name> [--limit N]
    python -m repro verify  <directory> <db-name>
    python -m repro scrub   <directory> <db-name> [--budget N]
    python -m repro repair  <directory> <db-name> [--dry-run]
    python -m repro profile <workload> [--ops N] [--top N]
    python -m repro serve   <directory> <db-name> [--port P] [--indexes ...]

``directory`` is a :class:`~repro.lsm.vfs.LocalVFS` root (where the
database's files live); ``db-name`` is the name it was opened under —
``data/primary`` for the primary table of a
:class:`~repro.core.database.SecondaryIndexedDB` opened as ``"data"``.

``profile`` runs a synthetic engine workload (``put``, ``get``, ``scan``
or ``lookup``) against an in-memory database under :mod:`cProfile` and
prints the top functions by cumulative time — the view the hot-path work
in DESIGN.md §7 was driven by.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from typing import IO

from repro.lsm.checker import verify_integrity
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.vfs import LocalVFS


def _open(directory: str, name: str, options: Options | None = None) -> DB:
    return DB.open(LocalVFS(directory), name, options or Options())


def cmd_stats(directory: str, name: str, out: IO[str]) -> int:
    """Level shapes, file counts, sizes, sequence numbers."""
    db = _open(directory, name)
    try:
        version = db.versions.current
        out.write(f"database:        {name}\n")
        out.write(f"last sequence:   {db.versions.last_sequence}\n")
        out.write(f"next file:       {db.versions.next_file_number}\n")
        out.write(f"total size:      {db.approximate_size():,} bytes\n")
        out.write(f"memtable:        {len(db.memtable)} entries, "
                  f"{db.memtable.approximate_memory_usage:,} bytes\n")
        out.write("levels:\n")
        for level, files in enumerate(version.levels):
            if not files:
                continue
            size = version.level_size(level)
            entries = sum(meta.num_entries for meta in files)
            out.write(f"  L{level}: {len(files):3d} files  "
                      f"{size:>10,} bytes  {entries:>8,} entries\n")
        pipeline = db.stats()["pipeline"]
        out.write("pipeline:\n")
        out.write(f"  background:      "
                  f"{'on' if pipeline['background'] else 'off'}\n")
        out.write(f"  imm pending:     {pipeline['imm_pending']}\n")
        out.write(f"  queue depth:     "
                  f"{pipeline['compaction_queue_depth']}\n")
        out.write(f"  stalls:          {pipeline['stall_events']} events, "
                  f"{pipeline['stall_seconds']:.3f}s\n")
        workers = pipeline["workers"]
        if workers is None:
            out.write("  workers:         off\n")
        else:
            out.write(f"  workers:         {workers['processes']} processes, "
                      f"{workers['jobs_completed']}/"
                      f"{workers['jobs_dispatched']} jobs, "
                      f"{workers['jobs_failed']} failed, "
                      f"{workers['worker_cpu_seconds']:.3f}s cpu\n")
        shm = pipeline["shm_cache"]
        if shm is None:
            out.write("  shm cache:       off\n")
        else:
            out.write(f"  shm cache:       {shm['slot_count']} slots x "
                      f"{shm['slot_bytes']} bytes, "
                      f"{shm['hits']} hits, {shm['misses']} misses, "
                      f"{shm['evictions']} evictions\n")
        return 0
    finally:
        db.close()


def cmd_dump(directory: str, name: str, out: IO[str],
             limit: int | None = None) -> int:
    """Print visible key/value pairs in key order."""
    db = _open(directory, name)
    try:
        printed = 0
        for key, value in db.scan():
            out.write(f"{key!r} => {value[:80]!r}"
                      f"{' ...' if len(value) > 80 else ''}\n")
            printed += 1
            if limit is not None and printed >= limit:
                out.write(f"... (stopped at --limit {limit})\n")
                break
        out.write(f"{printed} entries\n")
        return 0
    finally:
        db.close()


def cmd_verify(directory: str, name: str, out: IO[str]) -> int:
    """Run the integrity checker; exit status 1 on any finding."""
    db = _open(directory, name)
    try:
        report = verify_integrity(db)
        out.write(f"tables:  {report.tables_checked}\n")
        out.write(f"blocks:  {report.blocks_checked}\n")
        out.write(f"entries: {report.entries_checked}\n")
        if report.ok:
            out.write("OK\n")
            return 0
        for problem in report.problems:
            out.write(f"PROBLEM: {problem}\n")
        return 1
    finally:
        db.close()


def cmd_scrub(directory: str, name: str, out: IO[str],
              budget: int | None = None) -> int:
    """CRC-verify every live block, the WAL tail and the manifest.

    ``--budget N`` bounds one slice to about N blocks (resumption is an
    in-process affair; the CLI always runs slices to completion).  Exit
    status 1 on any finding.  The CLI opens with the default
    ``on_corruption="raise"`` policy, so a scrub only *reports* — it never
    quarantines behind the running database's back.
    """
    from repro.lsm.errors import CorruptionError

    try:
        db = _open(directory, name)
    except CorruptionError as exc:
        out.write(f"PROBLEM: cannot open database: {exc}\n")
        out.write("hint: try `repair` to salvage readable data\n")
        return 1
    try:
        report = db.scrub(block_budget=budget)
        while not report.complete:
            more = db.scrub(block_budget=budget)
            report.tables_scanned += more.tables_scanned
            report.blocks_verified += more.blocks_verified
            report.wal_files_verified += more.wal_files_verified
            report.manifest_verified = more.manifest_verified
            report.problems.extend(more.problems)
            report.complete = more.complete
        out.write(f"tables:   {report.tables_scanned}\n")
        out.write(f"blocks:   {report.blocks_verified}\n")
        out.write(f"wal:      {report.wal_files_verified} file(s)\n")
        out.write(f"manifest: "
                  f"{'ok' if report.manifest_verified else 'PROBLEM'}\n")
        if report.clean:
            out.write("OK\n")
            return 0
        for problem in report.problems:
            out.write(f"PROBLEM: {problem}\n")
        return 1
    finally:
        db.close()


def cmd_repair(directory: str, name: str, out: IO[str],
               dry_run: bool = False) -> int:
    """Salvage a damaged database (LevelDB's ``RepairDB``).

    Operates on the files directly — never opens the database through the
    normal recovery path, so it works even when the manifest or WAL is too
    damaged for ``open`` to succeed.  ``--dry-run`` reports what would be
    done without touching anything.
    """
    from repro.lsm.repair import repair_db

    report = repair_db(LocalVFS(directory), name, dry_run=dry_run)
    mode = "dry-run: " if dry_run else ""
    out.write(f"{mode}tables kept:     {report.tables_kept}\n")
    out.write(f"{mode}tables salvaged: {report.tables_salvaged} "
              f"({report.blocks_dropped} bad blocks dropped)\n")
    out.write(f"{mode}tables dropped:  {report.tables_dropped}\n")
    out.write(f"{mode}wal records:     {report.wal_records_salvaged}\n")
    out.write(f"{mode}last sequence:   {report.last_sequence}\n")
    for problem in report.problems:
        out.write(f"found: {problem}\n")
    for action in report.actions:
        out.write(f"{action}\n")
    return 0


PROFILE_WORKLOADS = ("put", "get", "scan", "lookup")


def _profile_target(workload: str, ops: int):
    """Build the workload's state and return the callable to profile.

    Setup (data loading, flushes) happens *outside* the profiled region so
    the report shows the operation's own hot path, not the build phase.
    Geometry matches ``benchmarks/bench_engine_micro.py`` so conclusions
    carry over to the BENCH numbers.
    """
    from repro.lsm.db import DB

    options = Options(block_size=2048, sstable_target_size=16 * 1024,
                      memtable_budget=16 * 1024, l1_target_size=64 * 1024,
                      compression="none")

    def key(i: int) -> bytes:
        return b"user%06d" % (i * 2654435761 % 1000003)

    def value(i: int) -> bytes:
        return b'{"UserID": "u%04d", "body": "%s"}' % (i % 97, b"x" * 60)

    if workload == "put":
        db = DB.open_memory(options=options)

        def run_put():
            for i in range(ops):
                db.put(key(i), value(i))
        return run_put

    if workload == "lookup":
        from repro.core.base import IndexKind
        from repro.core.database import SecondaryIndexedDB

        sdb = SecondaryIndexedDB.open_memory(
            indexes={"UserID": IndexKind.LAZY}, options=options)
        for i in range(max(ops, 2000)):
            sdb.put(b"t%06d" % i, {"UserID": "u%03d" % (i % 53), "n": i})
        sdb.flush()

        def run_lookup():
            for i in range(ops):
                sdb.lookup("UserID", "u%03d" % (i % 53), k=5)
        return run_lookup

    db = DB.open_memory(options=options)
    load = max(ops, 5000)
    for i in range(load):
        db.put(key(i), value(i))
    db.flush()

    if workload == "get":
        def run_get():
            for i in range(ops):
                db.get(key(i * 3 % load))
        return run_get

    def run_scan():
        seen = 0
        while seen < ops:
            for _k, _v in db.scan():
                seen += 1
    return run_scan


def cmd_profile(workload: str, ops: int, top: int, out: IO[str]) -> int:
    """cProfile one synthetic workload; print top functions by cumtime."""
    target = _profile_target(workload, ops)
    profiler = cProfile.Profile()
    profiler.enable()
    target()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("cumulative").print_stats(top)
    return 0


def _parse_index_map(indexes: str, out: IO[str]):
    """Parse ``attr=kind,...`` into ``{attr: IndexKind}``; None on error."""
    from repro.core.base import IndexKind

    index_map = {}
    for spec in indexes.split(","):
        attribute, _, kind = spec.partition("=")
        if not attribute or not kind:
            out.write(f"bad --indexes entry {spec!r} "
                      "(want attr=kind)\n")
            return None
        try:
            index_map[attribute] = IndexKind(kind.lower())
        except ValueError:
            choices = ", ".join(k.value for k in IndexKind)
            out.write(f"unknown index kind {kind!r} "
                      f"(choose from {choices})\n")
            return None
    return index_map


def cmd_serve(directory: str, name: str, out: IO[str], host: str,
              port: int, indexes: str | None, sync: bool,
              max_inflight: int, compaction_processes: int = 0,
              shm_cache_bytes: int = 0, shards: int = 0,
              replication: int = 1) -> int:
    """Serve one database over the framed socket protocol (ROADMAP item 1).

    Without ``--indexes`` the database is served raw (keys and values are
    bytes; the pipeline engine takes every connection's writes straight
    into group commit).  With ``--indexes attr=kind,...`` it opens as a
    :class:`~repro.core.database.SecondaryIndexedDB` and also serves
    LOOKUP/RANGELOOKUP (single-writer: operations serialize server-side).

    ``--shards N`` serves a :class:`~repro.dist.cluster.ShardedDB` instead:
    N hash-ring shards under ``directory`` (each replica in its own
    subdirectory, recovered on restart), ``--replication R`` synchronous
    copies per shard, with ``--indexes`` becoming each shard's local
    indexes.

    Prints ``listening on HOST:PORT`` once the socket is bound; runs until
    interrupted.  SIGTERM (and Ctrl-C) triggers a graceful drain: stop
    accepting, finish every fully received request, answer it, flush, then
    exit 0 — no acked write is lost, no request half-applied.
    """
    import os as _os
    import signal as _signal
    import threading as _threading

    from repro.server import Server

    if shards:
        from repro.dist.cluster import ShardedDB

        index_map = _parse_index_map(indexes, out) if indexes else {}
        if index_map is None:
            return 2

        def shard_vfs(shard_id: int, replica_id: int) -> LocalVFS:
            return LocalVFS(_os.path.join(
                directory, f"{name}-s{shard_id}-r{replica_id}"))

        db: object = ShardedDB.open(
            shard_vfs, num_shards=shards, replication_factor=replication,
            local_indexes=index_map,
            options=Options(sync_writes=sync,
                            compaction_processes=compaction_processes,
                            shm_cache_bytes=shm_cache_bytes),
            meta_vfs=LocalVFS(_os.path.join(directory, f"{name}-cluster")))
        closer = db.close
    elif indexes:
        from repro.core.database import SecondaryIndexedDB

        index_map = _parse_index_map(indexes, out)
        if index_map is None:
            return 2
        db = SecondaryIndexedDB.open(
            LocalVFS(directory), name, indexes=index_map,
            options=Options(sync_writes=sync,
                            compaction_processes=compaction_processes,
                            shm_cache_bytes=shm_cache_bytes))
        closer = db.close
    else:
        db = _open(directory, name,
                   Options(sync_writes=sync, background_compaction=True,
                           compaction_processes=compaction_processes,
                           shm_cache_bytes=shm_cache_bytes))
        closer = db.close
    server = Server(db, host=host, port=port, max_inflight=max_inflight)
    stop = _threading.Event()
    previous_handler = None
    try:
        previous_handler = _signal.signal(
            _signal.SIGTERM, lambda _signo, _frame: stop.set())
    except ValueError:
        pass  # not the main thread (tests drive cmd_serve directly)
    try:
        bound_host, bound_port = server.start()
        out.write(f"listening on {bound_host}:{bound_port}\n")
        out.flush()
        while not stop.wait(0.5):
            pass
        out.write("draining\n")
        out.flush()
        return 0
    except KeyboardInterrupt:
        out.write("draining\n")
        return 0
    finally:
        # Graceful drain on every exit path: every fully received
        # request is executed and answered before the threads join, so
        # acked writes reach the engine before closer() makes them
        # durable on disk.
        server.close(drain=True)
        closer()
        if previous_handler is not None:
            try:
                _signal.signal(_signal.SIGTERM, previous_handler)
            except ValueError:
                pass


def main(argv: list[str] | None = None, out: IO[str] | None = None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Inspect, verify, and profile LevelDB++ databases.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for command in ("stats", "dump", "verify", "scrub", "repair"):
        sub = subparsers.add_parser(command)
        sub.add_argument("directory", help="LocalVFS root directory")
        sub.add_argument("name", help="database name within the directory")
        if command == "dump":
            sub.add_argument("--limit", type=int, default=None,
                             help="stop after N entries")
        elif command == "scrub":
            sub.add_argument("--budget", type=int, default=None,
                             help="blocks per scrub slice (default: all)")
        elif command == "repair":
            sub.add_argument("--dry-run", action="store_true",
                             help="report what would be done; change nothing")
    profile = subparsers.add_parser(
        "profile", help="cProfile a synthetic engine workload")
    profile.add_argument("workload", choices=PROFILE_WORKLOADS)
    profile.add_argument("--ops", type=int, default=2000,
                         help="operations to profile (default 2000)")
    profile.add_argument("--top", type=int, default=25,
                         help="functions to print (default 25)")
    serve = subparsers.add_parser(
        "serve", help="serve a database over the framed socket protocol")
    serve.add_argument("directory", help="LocalVFS root directory")
    serve.add_argument("name", help="database name within the directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7841,
                       help="TCP port (0 = ephemeral; default 7841)")
    serve.add_argument("--indexes", default=None, metavar="ATTR=KIND,...",
                       help="serve a SecondaryIndexedDB with these indexes "
                            "(e.g. UserID=lazy,Time=composite)")
    serve.add_argument("--no-sync", dest="sync", action="store_false",
                       help="acknowledge writes before fsync (faster, "
                            "riskier)")
    serve.add_argument("--max-inflight", type=int, default=32,
                       help="pipelined requests per connection before "
                            "backpressure (default 32)")
    serve.add_argument("--compaction-processes", type=int, default=0,
                       help="run compactions in N worker processes instead "
                            "of the serving interpreter (default 0 = "
                            "in-process)")
    serve.add_argument("--shm-cache-bytes", type=int, default=0,
                       help="shared-memory block cache size shared with "
                            "compaction workers (default 0 = off)")
    serve.add_argument("--shards", type=int, default=0,
                       help="serve a ShardedDB with N hash-ring shards "
                            "(default 0 = single database; --indexes become "
                            "per-shard local indexes)")
    serve.add_argument("--replication", type=int, default=1,
                       help="synchronous replicas per shard (with --shards; "
                            "default 1)")
    args = parser.parse_args(argv)
    if args.command == "stats":
        return cmd_stats(args.directory, args.name, out)
    if args.command == "dump":
        return cmd_dump(args.directory, args.name, out, args.limit)
    if args.command == "scrub":
        return cmd_scrub(args.directory, args.name, out, args.budget)
    if args.command == "repair":
        return cmd_repair(args.directory, args.name, out, args.dry_run)
    if args.command == "profile":
        return cmd_profile(args.workload, args.ops, args.top, out)
    if args.command == "serve":
        return cmd_serve(args.directory, args.name, out, args.host,
                         args.port, args.indexes, args.sync,
                         args.max_inflight, args.compaction_processes,
                         args.shm_cache_bytes, args.shards,
                         args.replication)
    return cmd_verify(args.directory, args.name, out)
