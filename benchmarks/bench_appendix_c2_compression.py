"""Appendix C.2: block compression on vs off.

The paper runs its main experiments with Snappy (here: zlib level 1 behind
the same per-block interface) and reports the uncompressed comparison in
the appendix: compression shrinks every table at a small CPU cost on reads.
"""

import time

import pytest

from harness import BENCH_PROFILE, ResultTable, bench_options

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.workloads.tweets import TweetGenerator

_N = 2500
_RESULTS: dict = {}

_TABLE = ResultTable(
    "appendix_c2_compression",
    "Appendix C.2 — block compression on/off (Lazy variant)",
    ["compression", "total_bytes", "us_per_get", "us_per_lookup"])


def _build(compression):
    options = bench_options(compression=compression)
    generator = TweetGenerator(BENCH_PROFILE, seed=29)
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY}, options=options)
    keys = []
    for key, doc in generator.tweets(_N):
        db.put(key, doc)
        keys.append(key)
    db.flush()
    return db, keys


@pytest.mark.parametrize("compression", ["zlib", "none"])
def test_appendix_c2_compression(benchmark, compression):
    db, keys = benchmark.pedantic(_build, args=(compression,),
                                  rounds=1, iterations=1)
    sample = keys[:: len(keys) // 100]
    started = time.perf_counter()
    for key in sample:
        db.get(key)
    get_us = (time.perf_counter() - started) * 1e6 / len(sample)

    users = [f"u{r:05d}" for r in range(20)]
    started = time.perf_counter()
    for user in users:
        db.lookup("UserID", user, 10)
    lookup_us = (time.perf_counter() - started) * 1e6 / len(users)

    size = db.total_size()
    _TABLE.add(compression, size, f"{get_us:.0f}", f"{lookup_us:.0f}")
    _RESULTS[compression] = {"size": size, "get_us": get_us}
    db.close()
    if len(_RESULTS) == 2:
        _TABLE.write()
        # Compression must shrink the database substantially; the random
        # tweet bodies compress poorly but keys and JSON structure do not.
        assert _RESULTS["zlib"]["size"] < _RESULTS["none"]["size"]
