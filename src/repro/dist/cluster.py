"""A replicated, elastic sharded store with local or global indexes.

:class:`ShardedDB` runs N logical shards — each a
:class:`~repro.dist.replication.ReplicaSet` of ``replication_factor``
synchronous copies — behind an elastic hash ring.  Writes fan out to every
live replica of the owning shard; reads route by key and fail over past
downed replicas.  Secondary queries depend on the index scope:

* **local** — each shard indexes its own records (any of the paper's five
  techniques); LOOKUP scatters to all shards and merges top-K;
* **global** — a :class:`GlobalSecondaryIndex` ring partitioned by
  attribute value; LOOKUP touches exactly one index shard, then routes
  per-result GETs back to the data shards for validation.

Recency is globally comparable because every shard draws sequence numbers
from one :class:`SequenceOracle` (the timestamp-oracle pattern), so
cross-shard top-K merges are exact.  Replicas of a shard draw through a
record/replay :class:`~repro.dist.replication.SequenceChannel`, so all
copies stamp each write with identical sequence numbers — which is also
what lets a live shard split (:mod:`repro.dist.migration`) replay its WAL
tail onto the new shard without perturbing recency order.

Concurrency contract: like a single ``SecondaryIndexedDB``, the facade
expects one mutating call at a time (the network server serializes behind
its dispatch lock; the drills serialize through the DeterministicScheduler).
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.core.base import IndexKind, LookupResult
from repro.core.lazy import LazyIndex
from repro.core.posting import posting_merge_operator
from repro.core.records import (
    Document,
    attribute_of,
    decode_document,
    key_to_bytes,
)
from repro.dist.partitioner import HashPartitioner, SplitHashRing
from repro.dist.replication import ReplicaSet, SequenceChannel
from repro.dist.topology import ClusterManifest, load_cluster_manifest
from repro.lsm.db import DB
from repro.lsm.errors import InvalidArgumentError
from repro.lsm.options import Options
from repro.lsm.vfs import VFS, MemoryVFS
from repro.lsm.zonemap import encode_attribute


class SequenceOracle:
    """A monotonic cross-shard sequence allocator."""

    def __init__(self) -> None:
        self._next = 1

    def allocate(self, count: int) -> int:
        """Reserve ``count`` consecutive sequence numbers; returns the first."""
        first = self._next
        self._next += count
        return first

    def advance_past(self, seq: int) -> None:
        """Never hand out ``seq`` or below again (restart over existing
        data: recovered tables already used those numbers)."""
        self._next = max(self._next, seq + 1)

    @property
    def last_allocated(self) -> int:
        """The highest sequence number handed out so far."""
        return self._next - 1


class _RoutedValidity:
    """Duck-typed stand-in for :class:`~repro.core.validity.ValidityChecker`
    whose data-table GETs route across shards by primary key."""

    def __init__(self, fetch: Callable[[bytes], tuple[bytes, int] | None]
                 ) -> None:
        self._fetch = fetch
        self.validation_gets = 0

    def fetch_valid(self, key: bytes, predicate) -> tuple[Document, int] | None:
        """Routed GET + predicate check (ValidityChecker's contract)."""
        self.validation_gets += 1
        found = self._fetch(key)
        if found is None:
            return None
        value, seq = found
        document = decode_document(value)
        if not predicate(document):
            return None
        return document, seq


class GlobalSecondaryIndex:
    """DynamoDB-style GSI: one lazy index ring, partitioned by value.

    Each index shard is a Lazy stand-alone index over the *whole* dataset's
    slice of attribute values, so LOOKUP(value) resolves on a single shard.
    Range behaviour depends on the partitioner: hash partitioning scatters
    ranges across the whole ring (the limitation DynamoDB documents);
    range partitioning (pass a :class:`~repro.dist.partitioner
    .RangePartitioner`) contacts only the shards whose value intervals
    overlap the query.
    """

    def __init__(self, attribute: str, num_index_shards: int,
                 options: Options, checker: _RoutedValidity,
                 partitioner=None) -> None:
        self.attribute = attribute
        self.partitioner = partitioner or HashPartitioner(num_index_shards)
        if self.partitioner.num_shards != num_index_shards:
            raise InvalidArgumentError(
                f"partitioner covers {self.partitioner.num_shards} shards, "
                f"expected {num_index_shards}")
        self.checker = checker
        self._index_options = replace(options, indexed_attributes=(),
                                      merge_operator=posting_merge_operator)
        self.shards: list[LazyIndex] = []
        for shard_id in range(num_index_shards):
            index_db = DB.open(MemoryVFS(), f"gsi-{attribute}-{shard_id}",
                               self._index_options)
            self.shards.append(LazyIndex(attribute, index_db, checker))
        #: Index shards touched by queries (the cross-shard fan-out metric).
        self.shards_contacted = 0

    def _shard_for(self, value: Any) -> LazyIndex:
        return self.shards[self.partitioner.shard_of(
            encode_attribute(value))]

    # -- maintenance -----------------------------------------------------------

    def on_put(self, key: bytes, document: Document, seq: int) -> None:
        """Route the posting fragment to the value's index shard."""
        value = attribute_of(document, self.attribute)
        if value is None:
            return
        self._shard_for(value).on_put(key, document, seq)

    def on_delete(self, key: bytes, old_document: Document | None,
                  seq: int) -> None:
        """Route a deletion marker to the *old* value's index shard."""
        if old_document is None:
            return
        value = attribute_of(old_document, self.attribute)
        if value is None:
            return
        self._shard_for(value).on_delete(key, old_document, seq)

    # -- queries --------------------------------------------------------------

    def lookup(self, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        """LOOKUP resolved on the single index shard owning ``value``."""
        self.shards_contacted += 1
        return self._shard_for(value).lookup(value, k, early_termination)

    def range_lookup(self, low: Any, high: Any, k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        """RANGELOOKUP over the index shards that can hold in-range values."""
        shard_ids = self.partitioner.shards_overlapping(
            encode_attribute(low), encode_attribute(high))
        merged: list[LookupResult] = []
        for shard_id in shard_ids:
            self.shards_contacted += 1
            merged.extend(self.shards[shard_id].range_lookup(
                low, high, k, early_termination))
        # A record updated between two in-range values leaves a stale
        # posting on a *different* index shard; both copies validate
        # against the live record, so deduplicate by primary key (the
        # copies are identical results).
        merged.sort(key=lambda r: -r.seq)
        seen: set[str] = set()
        deduped = []
        for result in merged:
            if result.key in seen:
                continue
            seen.add(result.key)
            deduped.append(result)
        return deduped if k is None else deduped[:k]

    def rebuild(self, records: Iterable[tuple[bytes, Document, int]]) -> int:
        """Discard the ring and replay every live owned record.

        ``records`` yields ``(key, document, seq)`` from the authoritative
        data shards (same contract as
        :meth:`SecondaryIndexedDB.rebuild_index`): a ring left stale by a
        mid-maintenance fault — or diverged by corruption — is regenerated
        wholesale, so afterwards it answers queries exactly as a ring that
        never missed an update.  Returns the number of records replayed.
        """
        for shard in self.shards:
            shard.close()
        self.shards = []
        for shard_id in range(self.partitioner.num_shards):
            index_db = DB.open(MemoryVFS(),
                               f"gsi-{self.attribute}-{shard_id}",
                               self._index_options)
            self.shards.append(LazyIndex(self.attribute, index_db,
                                         self.checker))
        replayed = 0
        for key_bytes, document, seq in records:
            self.on_put(key_bytes, document, seq)
            replayed += 1
        for shard in self.shards:
            shard.flush()
        return replayed

    def scrub(self, block_budget: int | None = None) -> list[str]:
        """Scrub every index shard's table; returns the problems found."""
        problems: list[str] = []
        for shard_id, shard in enumerate(self.shards):
            report = shard.index_db.scrub(block_budget)
            for problem in report.problems:
                problems.append(f"gsi-{self.attribute}-{shard_id}: "
                                f"{problem}")
            if shard.index_db.quarantined_tables():
                problems.append(f"gsi-{self.attribute}-{shard_id}: "
                                f"quarantined tables")
        return problems

    def size_bytes(self) -> int:
        """Total bytes across the whole index ring."""
        return sum(shard.size_bytes() for shard in self.shards)

    def close(self) -> None:
        """Close every index shard."""
        for shard in self.shards:
            shard.close()


class ShardedDB:
    """N replicated data shards + optional global index rings, one facade."""

    def __init__(self, data_shards: list[ReplicaSet], ring: SplitHashRing,
                 local_attributes: set[str],
                 global_indexes: dict[str, GlobalSecondaryIndex],
                 oracle: SequenceOracle, base_options: Options,
                 replication_factor: int,
                 local_indexes: Mapping[str, IndexKind],
                 vfs_factory: Callable[[int, int], VFS] | None = None,
                 meta_vfs: VFS | None = None,
                 manifest: ClusterManifest | None = None
                 ) -> None:
        """Assembled by :meth:`open_memory` / :meth:`open`."""
        self.data_shards = data_shards
        self.ring = ring
        self.local_attributes = local_attributes
        self.global_indexes = global_indexes
        self.oracle = oracle
        self.base_options = base_options
        self.replication_factor = replication_factor
        self.local_indexes = dict(local_indexes)
        self._vfs_factory = vfs_factory or (lambda _sid, _rid: MemoryVFS())
        self._step_hook: Callable[[str], None] | None = base_options.step_hook
        #: Data shards touched by secondary queries (scatter-gather cost).
        self.data_shards_contacted = 0
        #: GSI rings that missed a maintenance update (fault mid-put) and
        #: must be rebuilt from the data shards before serving queries.
        self._dirty_global: set[str] = set()
        #: The in-flight :class:`~repro.dist.migration.ShardSplit`, if any.
        self._migration = None
        #: Once a split has ever begun, scatter/scan results are filtered
        #: by ring ownership (pre-cleanup copies must not surface twice).
        #: Never set on a static cluster, so the default path is untouched.
        self._filter_owned = False
        self.splits_completed = 0
        self._closed = False
        #: Filesystem holding the durable CLUSTER manifest (``None`` keeps
        #: topology process-lifetime, the pre-durability behaviour).
        self._meta_vfs = meta_vfs
        self._manifest = manifest

    # -- construction ------------------------------------------------------

    @classmethod
    def open_memory(cls, num_shards: int = 4,
                    local_indexes: Mapping[str, IndexKind] | None = None,
                    global_indexes: tuple[str, ...] = (),
                    options: Options | None = None,
                    num_index_shards: int | None = None,
                    global_split_points: Mapping[str, list] | None = None,
                    replication_factor: int = 1) -> "ShardedDB":
        """Build a cluster: ``local_indexes`` live on every data shard;
        each attribute in ``global_indexes`` gets its own GSI ring.

        ``global_split_points`` switches an attribute's GSI ring from hash
        to range partitioning: the given attribute *values* become the
        shard boundaries (``len(points) + 1`` index shards), letting
        RANGELOOKUPs contact only overlapping shards.

        ``replication_factor=1`` (the default) keeps the original
        single-copy layout — per-index metered VFSes and all — so the
        paper-reproduction benches measure exactly what they always did;
        ``replication_factor>=2`` gives every shard that many synchronous
        copies, each on its own filesystem so it can be killed, revived
        and reseeded.
        """
        oracle = SequenceOracle()
        base_options = replace(options or Options(),
                               sequence_oracle=oracle.allocate)
        cluster = cls._assemble(
            num_shards, local_indexes, global_indexes, oracle, base_options,
            replication_factor, num_index_shards, global_split_points,
            vfs_factory=None)
        return cluster

    @classmethod
    def open(cls, vfs_factory: Callable[[int, int], VFS],
             num_shards: int = 4, replication_factor: int = 1,
             local_indexes: Mapping[str, IndexKind] | None = None,
             global_indexes: tuple[str, ...] = (),
             options: Options | None = None,
             num_index_shards: int | None = None,
             global_split_points: Mapping[str, list] | None = None,
             meta_vfs: VFS | None = None) -> "ShardedDB":
        """Open (or recover) a cluster over durable filesystems.

        ``vfs_factory(shard_id, replica_id)`` supplies each replica's
        filesystem; every replica recovers whatever its VFS already holds
        (WAL replay inside ``DB.open``).  The sequence oracle resumes past
        the highest recovered sequence number, and global index rings —
        which live in memory — are rebuilt from the recovered shards.

        ``meta_vfs`` makes the *topology* durable too: the cluster writes
        a CLUSTER manifest (ring split list, replica-set shape, index
        shapes — see :mod:`repro.dist.topology`) through it on every
        topology change.  When the manifest already exists it is
        authoritative: shard count, splits, replication factor and index
        layout all come from it and the corresponding arguments are
        ignored, so a cluster reopens onto exactly the topology it last
        committed.  An interrupted split resolves here: a durable intent
        whose flip never committed has its destination files purged
        (old topology, zero orphans); a committed-but-unclean split has
        its stray copies purged (new topology) — both idempotent.
        """
        manifest = None
        ring = None
        global_shapes = None
        if meta_vfs is not None:
            manifest = load_cluster_manifest(meta_vfs)
        if manifest is not None:
            if manifest.in_flight is not None:
                cls._purge_unflipped_split(vfs_factory, manifest)
                manifest = manifest.evolve(in_flight=None)
                manifest.save(meta_vfs)
            num_shards = manifest.base_shards
            replication_factor = manifest.replication_factor
            local_indexes = {attribute: IndexKind(kind) for attribute, kind
                             in manifest.local_indexes.items()}
            global_shapes = manifest.global_indexes
            global_indexes = tuple(sorted(global_shapes))
            num_index_shards = None
            global_split_points = None
            ring = SplitHashRing.from_state(manifest.base_shards,
                                            manifest.splits)
        oracle = SequenceOracle()
        base_options = replace(options or Options(),
                               sequence_oracle=oracle.allocate)
        cluster = cls._assemble(
            num_shards, local_indexes, global_indexes, oracle, base_options,
            replication_factor, num_index_shards, global_split_points,
            vfs_factory=vfs_factory, ring=ring, global_shapes=global_shapes,
            meta_vfs=meta_vfs, manifest=manifest)
        recovered = 0
        for group in cluster.data_shards:
            for replica in group.replicas:
                recovered = max(recovered,
                                replica.db.primary.versions.last_sequence)
                for index in replica.db.indexes.values():
                    index_db = getattr(index, "index_db", None)
                    if index_db is not None:
                        recovered = max(recovered,
                                        index_db.versions.last_sequence)
        oracle.advance_past(recovered)
        if manifest is not None and manifest.pending_cleanup:
            # The flip committed but the stray purge never finished;
            # rerun it (idempotent) before anything reads cross-shard.
            cluster._purge_strays()
            cluster._save_topology(pending_cleanup=False)
        if recovered:
            for attribute in list(cluster.global_indexes):
                cluster.rebuild_global_index(attribute)
        if meta_vfs is not None and manifest is None:
            # Fresh cluster: make the base topology durable immediately,
            # so a crash right after open still reopens consistently.
            cluster._save_topology()
        return cluster

    @staticmethod
    def _purge_unflipped_split(vfs_factory: Callable[[int, int], VFS],
                               manifest: ClusterManifest) -> None:
        """Delete every file of a split whose intent is durable but whose
        flip never committed — reopen lands on the old topology with zero
        orphan shard directories."""
        _source_id, new_id = manifest.in_flight
        prefix = f"shard-{new_id}/"
        for replica_id in range(manifest.replication_factor):
            vfs = vfs_factory(new_id, replica_id)
            for name in list(vfs.list_dir(prefix)):
                vfs.delete_if_exists(name)

    def _purge_strays(self) -> int:
        """Delete records the current ring does not assign to their shard
        (resumed split cleanup).  Idempotent; returns keys purged."""
        purged = 0
        ring = self.ring
        for shard_id, group in enumerate(self.data_shards):
            strays = [key for key, _value, _seq
                      in group.primary.scan_with_seq()
                      if ring.shard_of(key) != shard_id]
            for key in strays:
                group.apply_local("delete", key, None)
                purged += 1
            if strays:
                group.flush()
        return purged

    @classmethod
    def _assemble(cls, num_shards, local_indexes, global_indexes, oracle,
                  base_options, replication_factor, num_index_shards,
                  global_split_points, vfs_factory, ring=None,
                  global_shapes=None, meta_vfs=None,
                  manifest=None) -> "ShardedDB":
        from repro.dist.partitioner import RangePartitioner

        local_indexes = dict(local_indexes or {})
        global_split_points = dict(global_split_points or {})
        overlap = set(local_indexes) & set(global_indexes)
        if overlap:
            raise InvalidArgumentError(
                f"attributes indexed both locally and globally: {overlap}")
        unknown = set(global_split_points) - set(global_indexes)
        if unknown:
            raise InvalidArgumentError(
                f"split points for non-global attributes: {unknown}")
        if replication_factor < 1:
            raise InvalidArgumentError("replication_factor must be >= 1")
        if ring is None:
            ring = SplitHashRing(num_shards)
        step_hook = base_options.step_hook
        groups: list[ReplicaSet] = []
        for shard_id in range(ring.num_shards):
            channel = SequenceChannel(oracle.allocate)
            group_options = replace(base_options,
                                    sequence_oracle=channel.allocate)
            if replication_factor == 1 and vfs_factory is None:
                group = ReplicaSet.open_legacy(
                    shard_id, local_indexes, group_options, channel,
                    step_hook)
            else:
                factory = vfs_factory or (lambda _sid, _rid: MemoryVFS())
                vfs_list = [factory(shard_id, replica_id)
                            for replica_id in range(replication_factor)]
                group = ReplicaSet.open_replicated(
                    shard_id, vfs_list, local_indexes, group_options,
                    channel, step_hook)
            groups.append(group)
        cluster = cls(groups, ring, set(local_indexes), {}, oracle,
                      base_options, replication_factor, local_indexes,
                      vfs_factory, meta_vfs=meta_vfs, manifest=manifest)
        checker = _RoutedValidity(cluster._routed_get_with_seq)
        for attribute in global_indexes:
            if global_shapes is not None:
                shape = global_shapes[attribute]
                if shape.get("scheme") == "range":
                    points = [bytes.fromhex(point)
                              for point in shape["split_points"]]
                    index_partitioner = RangePartitioner(points)
                    ring_size = index_partitioner.num_shards
                else:
                    index_partitioner = None
                    ring_size = int(shape["shards"])
            elif attribute in global_split_points:
                splits = [encode_attribute(value)
                          for value in global_split_points[attribute]]
                index_partitioner = RangePartitioner(splits)
                ring_size = index_partitioner.num_shards
            else:
                index_partitioner = None
                ring_size = num_index_shards or num_shards
            cluster.global_indexes[attribute] = GlobalSecondaryIndex(
                attribute, ring_size, base_options, checker,
                partitioner=index_partitioner)
        return cluster

    # -- routing ---------------------------------------------------------------

    @property
    def partitioner(self):
        """Backwards-compatible alias: the current routing ring."""
        return self.ring

    @property
    def num_shards(self) -> int:
        return len(self.data_shards)

    def _shard_for(self, key: bytes) -> ReplicaSet:
        return self.data_shards[self.ring.shard_of(key)]

    def _routed_get_with_seq(self, key: bytes) -> tuple[bytes, int] | None:
        self.data_shards_contacted += 1
        return self._shard_for(key).get_with_seq(key)

    # -- base operations ---------------------------------------------------------

    def put(self, key: str | bytes, document: Document) -> int:
        """Write to every live replica of the owning shard, then maintain
        every GSI.

        The record is durable once the replica fan-out returns; a fault
        while maintaining a GSI marks that ring dirty (it rebuilds before
        its next query) instead of leaving it silently stale.  While a
        split is in flight, acked writes to moving keys are also journaled
        for the WAL-tail replay.
        """
        self._check_open()
        key_bytes = key_to_bytes(key)
        shard_id = self.ring.shard_of(key_bytes)
        group = self.data_shards[shard_id]
        self._order_after_tail(shard_id)
        journaled = []
        seq = group.put(key_bytes, document,
                        on_commit=lambda s, log: self._observe_commit(
                            "put", key_bytes, document, shard_id, s, log,
                            journaled))
        if not journaled:
            seq = self._reroute_straggler("put", key_bytes, document,
                                          shard_id, seq)
        self._maintain_global(
            lambda index: index.on_put(key_bytes, document, seq))
        return seq

    def get(self, key: str | bytes) -> Document | None:
        """Point read, routed by primary key; fails over within the shard."""
        self._check_open()
        self._sync_with_tail()
        return self._shard_for(key_to_bytes(key)).get(key_to_bytes(key))

    def delete(self, key: str | bytes) -> int:
        """Delete from the owning shard; GSIs get deletion markers.

        The tombstone's sequence number comes from the delete itself —
        reading ``versions.last_sequence`` afterwards would race a
        concurrent writer on the same shard and stamp the GSI marker with
        a stranger's sequence, breaking the globally-comparable-sequence
        invariant :meth:`_scatter_gather` and validation rely on.
        """
        self._check_open()
        key_bytes = key_to_bytes(key)
        shard_id = self.ring.shard_of(key_bytes)
        group = self.data_shards[shard_id]
        self._order_after_tail(shard_id)
        old_document = None
        if self.global_indexes:
            old_document = group.get(key_bytes)
        journaled = []
        seq = group.delete(key_bytes,
                           on_commit=lambda s, log: self._observe_commit(
                               "delete", key_bytes, None, shard_id, s, log,
                               journaled))
        if not journaled:
            seq = self._reroute_straggler("delete", key_bytes, None,
                                          shard_id, seq)
        self._maintain_global(
            lambda index: index.on_delete(key_bytes, old_document, seq))
        return seq

    def _order_after_tail(self, shard_id: int) -> None:
        """Serialize direct writes to a split's destination behind the
        journal tail.

        After the ring flips, new writes route straight to the new shard
        while older writes (routed pre-flip) may still sit in the split's
        journal with *lower* sequence numbers.  Applying the new write
        first would make the later tail replay go backwards, so the tail
        drains now, inside this write's atomic chunk."""
        if self._migration is not None \
                and shard_id == self._migration.new_id:
            self._migration.flush_tail()

    def _sync_with_tail(self) -> None:
        """Read barrier against an in-flight split's journal tail.

        Post-flip, the destination owns keys whose newest versions may
        still be journaled (a write routed pre-flip, committed post-flip).
        Serving the destination's copy before the tail lands would read a
        stale value — or resurrect a tombstoned record — so every query
        first drains the tail.  No-op without a registered migration."""
        if self._migration is not None:
            self._migration.flush_tail()

    def _observe_commit(self, op: str, key_bytes: bytes,
                        document: Document | None, shard_id: int, seq: int,
                        alloc_log: tuple[tuple[int, int], ...],
                        journaled: list) -> None:
        """Journal a commit into the in-flight split, atomically with the
        commit itself (runs before the fan-out's ack yield point)."""
        if self._migration is not None \
                and self._migration.observe(op, key_bytes, document,
                                            shard_id, seq, alloc_log):
            journaled.append(True)

    def _reroute_straggler(self, op: str, key_bytes: bytes,
                           document: Document | None, shard_id: int,
                           seq: int) -> int:
        """Close the route-vs-flip race on the write path.

        A write routes with one ring but commits later; if a split's ring
        flip lands in between, the write is acked by a shard that no
        longer owns the key.  While the split is registered, its journal
        ferries the write to the destination (flip- and cleanup-chunk
        drains) — that's the ``_observe_commit`` path.  When the write
        was *not* journaled (the split already finished its cleanup), the
        write re-applies here to the group the current ring says owns the
        key, as a fresh atomic op — an exact-sequence replay is unsound
        because source and destination can disagree on prior state (the
        source copy may already be purged).  Put/delete are idempotent
        latest-wins ops, so a re-apply is safe even in the rare case the
        checkpoint already carried the write.  Returns the sequence the
        owner serves, which downstream GSI maintenance must stamp.  The
        stray source copy stays invisible behind the ownership filter;
        static clusters (``_filter_owned`` unset) never take this branch.
        """
        if not self._filter_owned:
            return seq
        owner_id = self.ring.shard_of(key_bytes)
        if owner_id == shard_id:
            return seq
        owner = self.data_shards[owner_id]
        current = owner.primary.get_with_seq(key_bytes)
        if current is not None and current[1] >= seq:
            # The split's checkpoint or a journal drain already carried
            # this very write over; the owner serves it at its own seq.
            return current[1]
        new_seq = owner.apply_local(op, key_bytes, document)
        # The owner may itself be the source of a newer in-flight split;
        # journal the re-applied write so that split's drains ferry it.
        self._observe_commit(op, key_bytes, document, owner_id, new_seq,
                             owner.last_alloc_log, [])
        return new_seq

    def _maintain_global(self, apply: Callable[[GlobalSecondaryIndex], None]
                         ) -> None:
        """Apply one maintenance op to every GSI ring, containing faults.

        The data-shard write has already committed when this runs, so a
        fault here must not strand the index silently: the failing ring is
        marked dirty (rebuilt from the shards before its next query), the
        remaining rings still get their update, and the first fault is
        re-raised so the caller sees the failure.
        """
        first_error: Exception | None = None
        for attribute, index in self.global_indexes.items():
            if attribute in self._dirty_global:
                continue  # pending rebuild will replay this write anyway
            try:
                apply(index)
            except Exception as exc:  # noqa: BLE001 - re-raised below
                self._dirty_global.add(attribute)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    # -- secondary queries ---------------------------------------------------------

    def lookup(self, attribute: str, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        """LOOKUP: one GSI shard (global) or all-shard scatter (local)."""
        self._check_open()
        if self._step_hook is not None:
            self._step_hook(f"read:lookup:{attribute}")
        self._sync_with_tail()
        if attribute in self.global_indexes:
            if attribute in self._dirty_global:
                self.rebuild_global_index(attribute)
            return self.global_indexes[attribute].lookup(
                value, k, early_termination)
        if attribute not in self.local_attributes:
            raise InvalidArgumentError(
                f"no index on attribute {attribute!r}")
        return self._scatter_gather(
            lambda shard: shard.lookup(attribute, value, k,
                                       early_termination), k)

    def range_lookup(self, attribute: str, low: Any, high: Any,
                     k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        """RANGELOOKUP, routed or scattered per the attribute's scope."""
        self._check_open()
        if self._step_hook is not None:
            self._step_hook(f"read:rangelookup:{attribute}")
        self._sync_with_tail()
        if attribute in self.global_indexes:
            if attribute in self._dirty_global:
                self.rebuild_global_index(attribute)
            return self.global_indexes[attribute].range_lookup(
                low, high, k, early_termination)
        if attribute not in self.local_attributes:
            raise InvalidArgumentError(
                f"no index on attribute {attribute!r}")
        return self._scatter_gather(
            lambda shard: shard.range_lookup(attribute, low, high, k,
                                             early_termination), k)

    def _scatter_gather(self, query, k: int | None) -> list[LookupResult]:
        """Local indexes: ask every shard for its top-K, merge exactly.

        Per-shard results are each correct top-K lists under globally
        comparable sequence numbers, so the merged prefix is the global
        top-K.  Once a split has begun, each shard's results are filtered
        to the keys the current ring assigns it: pre-cleanup copies on the
        split's source (or unpurged destination) shard validate as live
        but belong to the other side, and surfacing both would double
        results.  An owned record with global rank <= K is always within
        its owner shard's local top-K (every record beating it locally
        maps to a distinct record beating it globally), so the filter
        never causes an under-count.
        """
        ring = self.ring
        merged: list[LookupResult] = []
        for shard_id, group in enumerate(self.data_shards):
            self.data_shards_contacted += 1
            results = query(group)
            if self._filter_owned:
                results = [result for result in results
                           if ring.shard_of(key_to_bytes(result.key))
                           == shard_id]
            merged.extend(results)
        merged.sort(key=lambda r: -r.seq)
        return merged if k is None else merged[:k]

    def scan(self, low: str | bytes | None = None,
             high: str | bytes | None = None
             ) -> Iterator[tuple[str, Document]]:
        """Ordered iteration over live ``(key, document)`` pairs across
        the whole cluster (k-way merge of per-shard primary scans)."""
        self._check_open()
        if self._step_hook is not None:
            self._step_hook("read:scan")
        self._sync_with_tail()
        ring = self.ring
        iterators = [self._owned_scan(shard_id, group, low, high, ring)
                     for shard_id, group in enumerate(self.data_shards)]
        return heapq.merge(*iterators, key=lambda pair: pair[0])

    def _owned_scan(self, shard_id: int, group: ReplicaSet, low, high, ring):
        for key, document in group.scan(low, high):
            if self._filter_owned and \
                    ring.shard_of(key_to_bytes(key)) != shard_id:
                continue
            yield key, document

    # -- replication control -----------------------------------------------------

    def kill_replica(self, shard_id: int, replica_id: int) -> None:
        """Take one replica down abruptly (drill interface)."""
        self._check_open()
        self.data_shards[shard_id].kill(replica_id)

    def revive_replica(self, shard_id: int, replica_id: int) -> str:
        """Restart a downed replica from its files; returns ``up`` or
        ``stale`` (stale copies are reseeded by read repair or
        :meth:`repair_shard` before serving)."""
        self._check_open()
        return self.data_shards[shard_id].revive(replica_id)

    def repair_shard(self, shard_id: int) -> list[int]:
        """Reseed every stale replica of one shard from its leader."""
        self._check_open()
        return self.data_shards[shard_id].repair()

    # -- elastic resharding ------------------------------------------------------

    def begin_split(self, source_id: int | None = None,
                    vfs_factory: Callable[[int], VFS] | None = None):
        """Start a live split of ``source_id`` (default: the shard with
        the most live records) onto a new shard; returns the
        :class:`~repro.dist.migration.ShardSplit` to drive with ``step()``
        / ``run()``."""
        from repro.dist.migration import ShardSplit

        self._check_open()
        if source_id is None:
            counts = self.shard_record_counts()
            source_id = max(range(len(counts)), key=counts.__getitem__)
        if vfs_factory is None:
            new_id = len(self.data_shards)
            vfs_factory = (lambda replica_id:
                           self._vfs_factory(new_id, replica_id))
        return ShardSplit(self, source_id, vfs_factory)

    def split_shard(self, source_id: int | None = None):
        """Run a whole split synchronously; returns the finished
        :class:`~repro.dist.migration.ShardSplit`."""
        return self.begin_split(source_id).run()

    def _register_migration(self, migration) -> None:
        # Durable intent FIRST: if the process dies after any destination
        # file exists but before the flip, reopen finds the intent and
        # purges the half-copied shard instead of orphaning it.
        self._save_topology(in_flight=(migration.source_id,
                                       migration.new_id))
        self._migration = migration
        self._filter_owned = True

    def _unregister_migration(self, migration) -> None:
        if self._migration is migration:
            self._migration = None

    def _complete_flip(self, migration) -> None:
        """Publish the split: the manifest commits the new topology first
        (the durable decision point — a crash before the in-memory flip
        reopens onto the new ring), then the new group joins the shard
        list *before* the ring flips (the old ring never routes to it),
        then one attribute assignment moves ownership."""
        self._save_topology(
            splits=self.ring.splits + ((migration.source_id,
                                        migration.new_id),),
            in_flight=None, pending_cleanup=True)
        self.data_shards.append(migration.dest)
        self.ring = migration.next_ring
        self.splits_completed += 1
        # The migration stays registered (and journaling) until cleanup:
        # a write that routed before this flip can still commit after it,
        # and its journal entry must reach the cleanup-chunk drain.

    # -- durable topology --------------------------------------------------------

    def _global_shapes(self) -> dict[str, dict[str, Any]]:
        """The live GSI ring shapes in manifest form."""
        from repro.dist.partitioner import RangePartitioner

        shapes: dict[str, dict[str, Any]] = {}
        for attribute, index in self.global_indexes.items():
            partitioner = index.partitioner
            if isinstance(partitioner, RangePartitioner):
                shapes[attribute] = {
                    "scheme": "range",
                    "split_points": [point.hex() for point
                                     in partitioner.split_points]}
            else:
                shapes[attribute] = {"scheme": "hash",
                                     "shards": partitioner.num_shards}
        return shapes

    def _snapshot_manifest(self) -> ClusterManifest:
        """A fresh manifest describing the live topology."""
        return ClusterManifest(
            base_shards=self.ring.base_shards,
            replication_factor=self.replication_factor,
            splits=self.ring.splits,
            local_indexes={attribute: kind.value for attribute, kind
                           in self.local_indexes.items()},
            global_indexes=self._global_shapes())

    def _save_topology(self, **changes: Any) -> None:
        """Persist the next topology generation (no-op without a
        ``meta_vfs``).  The in-memory manifest only advances once the
        save is durable, so a failed write leaves both the file and our
        view on the previous generation."""
        if self._meta_vfs is None:
            return
        manifest = (self._manifest or self._snapshot_manifest())
        if changes:
            manifest = manifest.evolve(**changes)
        manifest.save(self._meta_vfs)
        self._manifest = manifest

    # -- anti-entropy ------------------------------------------------------------

    def anti_entropy(self, block_budget: int | None = None) -> dict[str, Any]:
        """One full repair pass: scrub every replica, reseed diverged or
        stale copies from their leaders, then scrub the GSI rings and
        rebuild any that diverged — restoring exact query parity."""
        self._check_open()
        summary: dict[str, Any] = {"shards": {}, "gsi_rebuilt": [],
                                   "gsi_problems": []}
        for group in self.data_shards:
            summary["shards"][group.shard_id] = \
                group.anti_entropy(block_budget)
        for attribute, index in self.global_indexes.items():
            problems = index.scrub(block_budget)
            if problems:
                summary["gsi_problems"].extend(problems)
                self._dirty_global.add(attribute)
        for attribute in self.dirty_global_indexes():
            self.rebuild_global_index(attribute)
            summary["gsi_rebuilt"].append(attribute)
        return summary

    # -- index healing -------------------------------------------------------------

    def dirty_global_indexes(self) -> list[str]:
        """Attributes whose GSI ring missed an update and awaits rebuild."""
        return sorted(self._dirty_global)

    def _owned_records(self) -> Iterator[tuple[bytes, Document, int]]:
        """Every live record the current ring assigns to its shard —
        the authoritative dataset GSI rebuilds replay."""
        ring = self.ring
        for shard_id, group in enumerate(self.data_shards):
            for key_bytes, value, seq in group.primary.scan_with_seq():
                if self._filter_owned and \
                        ring.shard_of(key_bytes) != shard_id:
                    continue
                yield key_bytes, decode_document(value), seq

    def rebuild_global_index(self, attribute: str) -> int:
        """Rebuild one GSI ring from the (authoritative) data shards.

        Returns the number of records replayed; clears the dirty mark.
        """
        self._check_open()
        index = self.global_indexes.get(attribute)
        if index is None:
            raise InvalidArgumentError(
                f"no global index on attribute {attribute!r}")
        replayed = index.rebuild(self._owned_records())
        self._dirty_global.discard(attribute)
        return replayed

    def heal_indexes(self) -> dict[str, int]:
        """Rebuild every dirty GSI ring and every shard's quarantined index.

        Returns ``{"global:attr" | "shardN:attr": records_replayed}`` —
        the cluster-wide face of the single-node ``heal_indexes``
        machinery.
        """
        self._check_open()
        healed: dict[str, int] = {}
        for attribute in self.dirty_global_indexes():
            healed[f"global:{attribute}"] = \
                self.rebuild_global_index(attribute)
        for shard_id, group in enumerate(self.data_shards):
            for attribute, replayed in group.heal_indexes().items():
                healed[f"shard{shard_id}:{attribute}"] = replayed
        return healed

    # -- introspection -------------------------------------------------------------

    def total_size(self) -> int:
        """Bytes across all data shards and global index rings."""
        total = sum(group.total_size() for group in self.data_shards)
        total += sum(index.size_bytes()
                     for index in self.global_indexes.values())
        return total

    def shard_record_counts(self) -> list[int]:
        """Live *owned* records per shard (balance check)."""
        ring = self.ring
        counts = []
        for shard_id, group in enumerate(self.data_shards):
            count = 0
            for key_bytes, _value in group.primary.scan():
                if self._filter_owned and \
                        ring.shard_of(key_bytes) != shard_id:
                    continue
                count += 1
            counts.append(count)
        return counts

    def verify_integrity(self) -> dict[str, Any]:
        """Integrity reports for every replica table in the cluster."""
        self._check_open()
        reports: dict[str, Any] = {}
        for group in self.data_shards:
            for label, report in group.verify_integrity().items():
                reports[f"shard{group.shard_id}:{label}"] = report
        return reports

    def stats(self) -> dict[str, Any]:
        """Cluster-wide counters: replication, routing, migration, GSIs."""
        self._check_open()
        migration = self._migration
        return {
            "num_shards": len(self.data_shards),
            "replication_factor": self.replication_factor,
            "ring": {"base_shards": self.ring.base_shards,
                     "splits": list(self.ring.splits)},
            "last_sequence": self.oracle.last_allocated,
            "data_shards_contacted": self.data_shards_contacted,
            "shards": [group.status() for group in self.data_shards],
            "splits_completed": self.splits_completed,
            "migration": None if migration is None else migration.status(),
            "global_indexes": sorted(self.global_indexes),
            "dirty_global_indexes": self.dirty_global_indexes(),
            "topology": None if self._manifest is None else {
                "durable": True,
                "epoch": self._manifest.epoch,
                "in_flight": self._manifest.in_flight,
                "pending_cleanup": self._manifest.pending_cleanup,
            },
        }

    def instrument(self, step_hook: Callable[[str], None] | None) -> None:
        """Install (or remove) a distributed-layer step hook after
        construction — lets drills preload data hook-free, then hand the
        yield points to a DeterministicScheduler."""
        self._step_hook = step_hook
        for group in self.data_shards:
            group.step_hook = step_hook

    def flush(self) -> None:
        """Flush every live replica of every shard."""
        self._check_open()
        for group in self.data_shards:
            group.flush()

    def close(self) -> None:
        """Close every data shard and GSI ring (idempotent)."""
        if self._closed:
            return
        for group in self.data_shards:
            group.close()
        for index in self.global_indexes.values():
            index.close()
        self._closed = True

    def __enter__(self) -> "ShardedDB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            from repro.lsm.errors import DBClosedError

            raise DBClosedError("cluster is closed")
