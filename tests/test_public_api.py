"""The top-level package surface."""

import repro


class TestLazyExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_unknown_attribute(self):
        import pytest

        with pytest.raises(AttributeError):
            repro.not_a_real_export  # noqa: B018

    def test_exports_are_the_real_objects(self):
        from repro.core.database import SecondaryIndexedDB
        from repro.lsm.db import DB

        assert repro.DB is DB
        assert repro.SecondaryIndexedDB is SecondaryIndexedDB

    def test_readme_quickstart_works(self):
        db = repro.SecondaryIndexedDB.open_memory(
            indexes={"user_id": repro.IndexKind.LAZY})
        db.put("t1", {"user_id": "u1", "text": "hello"})
        db.put("t2", {"user_id": "u1", "text": "world"})
        results = db.lookup("user_id", "u1", k=10)
        assert [r.key for r in results] == ["t2", "t1"]
        db.close()
