"""The maintenance CLI (python -m repro)."""

import io

import pytest

from repro.lsm.db import DB
from repro.lsm.manifest import table_file_name
from repro.lsm.options import Options
from repro.lsm.vfs import LocalVFS
from repro.tools import main


@pytest.fixture
def populated_dir(tmp_path):
    directory = str(tmp_path)
    options = Options(block_size=1024, sstable_target_size=4 * 1024,
                      memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    db = DB.open(LocalVFS(directory), "db", options)
    for i in range(300):
        db.put(f"k{i:04d}".encode(), f"value-{i}".encode())
    db.flush()
    db.close()
    return directory


class TestStats:
    def test_reports_shape(self, populated_dir):
        out = io.StringIO()
        status = main(["stats", populated_dir, "db"], out)
        text = out.getvalue()
        assert status == 0
        assert "last sequence:   300" in text
        assert "L0:" in text or "L1:" in text
        assert "total size:" in text
        assert "pipeline:" in text
        assert "background:      off" in text
        assert "imm pending:     0" in text
        assert "queue depth:" in text
        assert "stalls:          0 events" in text
        assert "workers:         off" in text
        assert "shm cache:       off" in text

    def test_reports_worker_gauges_when_enabled(self, populated_dir,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_COMPACTION_PROCESSES", "1")
        out = io.StringIO()
        status = main(["stats", populated_dir, "db"], out)
        text = out.getvalue()
        assert status == 0
        assert "workers:         1 processes" in text
        assert "shm cache:       off" in text


class TestDump:
    def test_dumps_in_key_order(self, populated_dir):
        out = io.StringIO()
        status = main(["dump", populated_dir, "db", "--limit", "5"], out)
        text = out.getvalue()
        assert status == 0
        assert "b'k0000'" in text
        assert "stopped at --limit 5" in text

    def test_full_dump_counts_entries(self, populated_dir):
        out = io.StringIO()
        main(["dump", populated_dir, "db"], out)
        assert "300 entries" in out.getvalue()


class TestVerify:
    def test_clean_database(self, populated_dir):
        out = io.StringIO()
        status = main(["verify", populated_dir, "db"], out)
        assert status == 0
        assert "OK" in out.getvalue()

    def test_corrupted_database(self, populated_dir):
        vfs = LocalVFS(populated_dir)
        corrupted = None
        for name in vfs.list_dir("db/"):
            if name.endswith(".ldb"):
                corrupted = name
                break
        assert corrupted is not None
        import os

        path = os.path.join(populated_dir, corrupted)
        with open(path, "r+b") as handle:
            handle.seek(40)
            byte = handle.read(1)
            handle.seek(40)
            handle.write(bytes([byte[0] ^ 0xFF]))
        out = io.StringIO()
        status = main(["verify", populated_dir, "db"], out)
        assert status == 1
        assert "PROBLEM" in out.getvalue()


def _corrupt_first_table(directory, offset=40):
    import os

    vfs = LocalVFS(directory)
    corrupted = next(name for name in vfs.list_dir("db/")
                     if name.endswith(".ldb"))
    path = os.path.join(directory, corrupted)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
    return corrupted


class TestScrub:
    def test_clean_database(self, populated_dir):
        out = io.StringIO()
        status = main(["scrub", populated_dir, "db"], out)
        text = out.getvalue()
        assert status == 0
        assert "OK" in text
        assert "manifest: ok" in text

    def test_corrupted_database(self, populated_dir):
        _corrupt_first_table(populated_dir)
        out = io.StringIO()
        status = main(["scrub", populated_dir, "db"], out)
        assert status == 1
        assert "PROBLEM" in out.getvalue()
        assert "CRC mismatch" in out.getvalue()

    def test_budgeted_scrub_covers_everything(self, populated_dir):
        full = io.StringIO()
        main(["scrub", populated_dir, "db"], full)
        sliced = io.StringIO()
        status = main(["scrub", populated_dir, "db", "--budget", "2"],
                      sliced)
        assert status == 0
        # Slicing changes the schedule, not the coverage.
        full_blocks = next(line for line in full.getvalue().splitlines()
                           if line.startswith("blocks:"))
        sliced_blocks = next(line for line in sliced.getvalue().splitlines()
                             if line.startswith("blocks:"))
        assert sliced_blocks == full_blocks


class TestRepair:
    def test_repair_clean_database_keeps_everything(self, populated_dir):
        out = io.StringIO()
        status = main(["repair", populated_dir, "db"], out)
        assert status == 0
        assert "tables dropped:  0" in out.getvalue()
        verify_out = io.StringIO()
        assert main(["verify", populated_dir, "db"], verify_out) == 0

    def test_repair_salvages_corruption(self, populated_dir):
        _corrupt_first_table(populated_dir)
        assert main(["verify", populated_dir, "db"], io.StringIO()) == 1
        out = io.StringIO()
        status = main(["repair", populated_dir, "db"], out)
        assert status == 0
        # Repair restores a consistent view: verify and scrub both pass.
        assert main(["verify", populated_dir, "db"], io.StringIO()) == 0
        assert main(["scrub", populated_dir, "db"], io.StringIO()) == 0
        # Surviving rows still dump in order.
        dump = io.StringIO()
        assert main(["dump", populated_dir, "db"], dump) == 0
        assert "entries" in dump.getvalue()

    def test_dry_run_changes_nothing(self, populated_dir):
        import os

        _corrupt_first_table(populated_dir)
        db_dir = os.path.join(populated_dir, "db")

        def snapshot():
            return {name: os.path.getsize(os.path.join(db_dir, name))
                    for name in os.listdir(db_dir)}

        before = snapshot()
        out = io.StringIO()
        status = main(["repair", populated_dir, "db", "--dry-run"], out)
        assert status == 0
        assert "dry-run:" in out.getvalue()
        assert snapshot() == before
        # Still corrupt afterwards — nothing was silently fixed.
        assert main(["verify", populated_dir, "db"], io.StringIO()) == 1


class TestArgumentParsing:
    def test_missing_command(self, populated_dir):
        with pytest.raises(SystemExit):
            main([], io.StringIO())

    def test_profile_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["profile", "nosuch"], io.StringIO())


class TestProfile:
    def test_profile_put_prints_report(self):
        out = io.StringIO()
        status = main(["profile", "put", "--ops", "50", "--top", "5"], out)
        assert status == 0
        report = out.getvalue()
        assert "function calls" in report
        assert "cumulative" in report

    def test_profile_get_hits_engine_internals(self):
        out = io.StringIO()
        status = main(["profile", "get", "--ops", "40", "--top", "40"], out)
        assert status == 0
        assert "get_with_seq" in out.getvalue()
