"""Manifest persistence and recovery."""

import pytest

from repro.lsm.errors import CorruptionError
from repro.lsm.keys import KIND_VALUE, pack_internal_key
from repro.lsm.manifest import (
    ManifestWriter,
    current_file_name,
    log_file_name,
    manifest_file_name,
    read_current_manifest_number,
    recover_version_set,
    table_file_name,
)
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, VersionEdit, VersionSet
from repro.lsm.vfs import MemoryVFS


def _meta(number, lo, hi):
    return FileMetaData(
        file_number=number, file_size=100,
        smallest=pack_internal_key(lo.encode(), 1, KIND_VALUE),
        largest=pack_internal_key(hi.encode(), 1, KIND_VALUE))


class TestNaming:
    def test_file_names(self):
        assert manifest_file_name("db", 7) == "db/MANIFEST-000007"
        assert current_file_name("db") == "db/CURRENT"
        assert table_file_name("db", 12) == "db/000012.ldb"
        assert log_file_name("db", 3) == "db/000003.log"


class TestRecovery:
    def test_fresh_database(self):
        vfs = MemoryVFS()
        versions = VersionSet(Options())
        assert recover_version_set(vfs, "db", versions) is False
        assert versions.current.total_files() == 0

    def test_roundtrip(self):
        vfs = MemoryVFS()
        writer = ManifestWriter(vfs, "db", 1)
        edit1 = VersionEdit(log_number=2, next_file_number=5,
                            last_sequence=10)
        edit1.add_file(0, _meta(3, "a", "m"))
        writer.log_edit(edit1)
        edit2 = VersionEdit(last_sequence=20)
        edit2.add_file(1, _meta(4, "n", "z"))
        writer.log_edit(edit2)
        writer.install_as_current()
        writer.close()

        versions = VersionSet(Options())
        assert recover_version_set(vfs, "db", versions) is True
        assert versions.last_sequence == 20
        assert versions.log_number == 2
        assert versions.current.num_files(0) == 1
        assert versions.current.num_files(1) == 1

    def test_deletion_replayed(self):
        vfs = MemoryVFS()
        writer = ManifestWriter(vfs, "db", 1)
        edit1 = VersionEdit()
        edit1.add_file(0, _meta(3, "a", "m"))
        writer.log_edit(edit1)
        edit2 = VersionEdit()
        edit2.delete_file(0, 3)
        edit2.add_file(1, _meta(4, "a", "m"))
        writer.log_edit(edit2)
        writer.install_as_current()

        versions = VersionSet(Options())
        recover_version_set(vfs, "db", versions)
        assert versions.current.num_files(0) == 0
        assert [m.file_number for m in versions.current.levels[1]] == [4]

    def test_current_points_to_latest_manifest(self):
        vfs = MemoryVFS()
        first = ManifestWriter(vfs, "db", 1)
        edit = VersionEdit()
        edit.add_file(0, _meta(1, "a", "b"))
        first.log_edit(edit)
        first.install_as_current()
        second = ManifestWriter(vfs, "db", 2)
        second.log_edit(VersionEdit(last_sequence=77))
        second.install_as_current()
        assert read_current_manifest_number(vfs, "db") == 2
        versions = VersionSet(Options())
        recover_version_set(vfs, "db", versions)
        assert versions.last_sequence == 77
        assert versions.current.total_files() == 0  # old manifest ignored

    def test_manifest_rolls_when_oversized(self):
        """The edit log must not grow without bound (it counts as
        database size); past ``max_manifest_size`` it is replaced by a
        single snapshot edit."""
        from repro.lsm.db import DB
        from repro.lsm.options import Options

        vfs = MemoryVFS()
        options = Options(block_size=512, sstable_target_size=2 * 1024,
                          memtable_budget=1024, l1_target_size=8 * 1024,
                          max_manifest_size=4 * 1024)
        db = DB.open(vfs, "db", options)
        for i in range(2000):
            db.put(f"k{i % 300:05d}".encode(), b"x" * 40)
        manifests = [name for name in vfs.list_dir("db/")
                     if "MANIFEST" in name]
        assert len(manifests) == 1  # old ones deleted
        assert vfs.file_size(manifests[0]) < 5 * 4 * 1024
        # The rolled manifest still recovers the full state.
        db.close()
        db2 = DB.open(vfs, "db", options)
        assert len(dict(db2.scan())) == 300
        # Round-robin compaction pointers survive the roll + reopen.
        assert any(p is not None for p in db2.versions.compact_pointers)
        db2.close()

    def test_malformed_current(self):
        vfs = MemoryVFS()
        vfs.write_whole("db/CURRENT", b"garbage\n")
        with pytest.raises(CorruptionError):
            read_current_manifest_number(vfs, "db")
        vfs.write_whole("db/CURRENT", b"MANIFEST-abc\n")
        with pytest.raises(CorruptionError):
            read_current_manifest_number(vfs, "db")
