"""Manual-compaction mode, write stalls, and debug introspection."""

import pytest

from repro.lsm.db import DB
from repro.lsm.errors import WriteStallError
from repro.lsm.options import Options


def _options(**overrides):
    base = dict(block_size=512, sstable_target_size=2 * 1024,
                memtable_budget=1024, l1_target_size=8 * 1024,
                l0_compaction_trigger=4, l0_stop_writes_trigger=8,
                disable_auto_compaction=True)
    base.update(overrides)
    return Options(**base)


class TestManualCompaction:
    def test_level0_accumulates_without_auto_compaction(self):
        db = DB.open_memory(_options(l0_stop_writes_trigger=100))
        for i in range(200):
            db.put(f"k{i:05d}".encode(), b"x" * 40)
        counts = db.level_file_counts()
        assert counts[0] > db.options.l0_compaction_trigger
        assert all(count == 0 for count in counts[1:])
        db.close()

    def test_reads_correct_with_deep_level0(self):
        db = DB.open_memory(_options(l0_stop_writes_trigger=100))
        model = {}
        for i in range(200):
            key = f"k{i % 40:05d}".encode()
            value = f"v{i}".encode()
            db.put(key, value)
            model[key] = value
        assert dict(db.scan()) == model
        db.close()

    def test_write_stall_raised_at_limit(self):
        db = DB.open_memory(_options())
        with pytest.raises(WriteStallError):
            for i in range(10000):
                db.put(f"k{i:06d}".encode(), b"x" * 40)
        assert db.level_file_counts()[0] >= db.options.l0_stop_writes_trigger
        db.close()

    def test_manual_compaction_clears_the_stall(self):
        db = DB.open_memory(_options())
        with pytest.raises(WriteStallError):
            for i in range(10000):
                db.put(f"k{i:06d}".encode(), b"x" * 40)
        db.compact_range()
        db.put(b"after-compaction", b"ok")  # writes accepted again
        assert db.get(b"after-compaction") == b"ok"
        db.close()

    def test_auto_mode_never_stalls(self):
        db = DB.open_memory(_options(disable_auto_compaction=False))
        for i in range(3000):
            db.put(f"k{i:06d}".encode(), b"x" * 40)
        assert db.get(b"k000000") == b"x" * 40
        db.close()


class TestDebugString:
    def test_reports_state(self):
        db = DB.open_memory(_options(disable_auto_compaction=False))
        for i in range(500):
            db.put(f"k{i:05d}".encode(), b"x" * 40)
        text = db.debug_string()
        assert f"last_sequence: {db.versions.last_sequence}" in text
        assert "memtable:" in text
        assert "flushes:" in text
        assert "io:" in text
        assert "L0:" in text or "L1:" in text
        db.close()

    def test_empty_database(self):
        db = DB.open_memory(_options())
        text = db.debug_string()
        assert "last_sequence: 0" in text
        db.close()
