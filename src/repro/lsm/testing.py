"""Deterministic concurrency harness for the background pipeline.

Threaded code is only testable if its interleavings can be *chosen*.  The
engine's concurrent paths call ``options.step_hook(label)`` at every
interesting point (WAL append, MemTable insert, publish, flush build,
compaction install, stall waits, ...) and rewrite internal blocking waits
as cooperative yield loops when a hook is set.  This module provides the
hook: a :class:`DeterministicScheduler` that serializes all participating
threads — exactly one runs between yield points — and decides, at every
yield, which parked thread resumes next.

The decision sequence is driven by a seeded RNG (property tests sweep
seeds; the same seed replays the same interleaving bit for bit) or by an
explicit script of choice indices, which :func:`explore_interleavings`
uses to DFS-enumerate every schedule of a small scenario.

Protocol
--------

* Threads join the schedule automatically on their first hook call; the
  thread's ``name`` identifies it in traces and decisions.
* A label ``"spawn:<name>"`` does not park the caller: it blocks (for
  real) until the task ``<name>`` has parked for the first time, so a
  freshly started thread's preamble cannot race its parent.  ``DB`` emits
  this right after starting its background thread; :meth:`spawn` wraps
  arbitrary test threads in the same handshake.
* Plain ``hook(label)`` parks unconditionally; :meth:`park_until` parks
  with a *guard* — the task is not eligible to run again until its guard
  predicate returns true.  ``DB._await_locked`` uses guards for its
  internal waits (a background thread with no due work, a writer stalled
  on level 0, ...), which keeps pointless wake-recheck-park cycles out of
  the schedule and out of the choice tree.
* A parking thread that holds the run token picks the successor *itself*
  (under the scheduler lock) among eligible parked tasks and hands the
  token over; there is no central controller thread to deadlock.  With
  two or more eligible candidates this is a recorded *choice point*.
* A thread that exits while holding the token (the engine's background
  thread after ``close()``) is reaped by the parked threads' 1 ms
  liveness poll.  If every task is parked and no guard is satisfiable,
  the schedule cannot progress: every parked task raises
  :class:`SchedulerDeadlockError` instead of hanging the test.

Rules for instrumented code (see ``DB._await_locked``): never call the
hook while holding a lock another task might need, and rewrite every
blocking wait as release-yield-reacquire-recheck.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable

__all__ = [
    "DeterministicScheduler",
    "ScheduleDivergenceError",
    "SchedulerDeadlockError",
    "explore_interleavings",
]

_SPAWN_PREFIX = "spawn:"
_SPAWN_TIMEOUT = 30.0
_POLL_SECONDS = 0.001


class ScheduleDivergenceError(AssertionError):
    """A scripted replay saw a different choice tree than the recording.

    This means the scenario is not deterministic under the scheduler
    (e.g. it branched on wall-clock time or an unmanaged thread), which
    the harness treats as a test failure.
    """


class SchedulerDeadlockError(RuntimeError):
    """Every task is parked and no guard can become true: a real deadlock.

    Raised in *all* parked tasks so the test fails immediately with the
    park labels in the message, instead of hanging until a CI timeout.
    """


class _Task:
    __slots__ = ("name", "thread", "gate", "parked", "label", "guard")

    def __init__(self, name: str, thread: threading.Thread) -> None:
        self.name = name
        self.thread = thread
        self.gate = threading.Event()
        self.parked = False
        self.label = ""
        self.guard: Callable[[], bool] | None = None

    def eligible(self) -> bool:
        if not self.parked:
            return False
        if self.guard is None:
            return True
        try:
            return bool(self.guard())
        except Exception:  # noqa: BLE001 - guard races are scheduling hints
            return True  # wake it; the task's own recheck is authoritative


class DeterministicScheduler:
    """Step-controlled thread scheduler; instances are ``options.step_hook``.

    ``seed`` drives random successor choices; ``script`` forces the first
    ``len(script)`` choices (indices into the name-sorted candidate list)
    and ``default`` says what happens past the script's end: ``"random"``
    (seeded) or ``"first"`` (always index 0 — what the DFS explorer uses).

    After the orchestrated part of a test, :meth:`shutdown` releases every
    parked thread and turns the hook into a no-op so the remaining work
    (drains, ``close()``) free-runs to completion.
    """

    def __init__(self, seed: int = 0, script: list[int] | None = None,
                 default: str = "random") -> None:
        if default not in ("random", "first"):
            raise ValueError(f"unknown default choice mode {default!r}")
        self._rng = random.Random(seed)
        self._script = list(script or [])
        self._default = default
        self._lock = threading.Lock()
        self._tasks: dict[int, _Task] = {}  # thread id -> task
        self._names: set[str] = set()
        self._free_run = False
        self._deadlocked = False
        #: Serialized history of yield points: ``(task_name, label)``.
        self.trace: list[tuple[str, str]] = []
        #: Index picked at each *choice point* (>= 2 eligible candidates).
        self.decisions: list[int] = []
        #: Candidate count at each choice point (for DFS branching).
        self.choice_counts: list[int] = []
        # The creating thread holds the run token from birth: threads it
        # spawns park on their first hook call without stealing the run.
        root = self._register_locked(threading.current_thread())
        self._token: str = root.name

    # -- the hook ----------------------------------------------------------

    def __call__(self, label: str) -> None:
        self.park_until(label, None)

    def park_until(self, label: str,
                   guard: Callable[[], bool] | None) -> None:
        """Park at ``label``; stay ineligible until ``guard()`` is true.

        ``guard`` may be evaluated by *other* tasks under the scheduler
        lock (without the caller's locks held): it must be a cheap, pure
        read.  It is a scheduling hint only — the woken task must recheck
        its real condition itself, as ``DB._await_locked`` does.
        """
        if self._free_run:
            time.sleep(0)  # plain yield; keep real threads moving
            return
        if label.startswith(_SPAWN_PREFIX):
            self._await_spawn(label[len(_SPAWN_PREFIX):])
            return
        with self._lock:
            task = self._current_task_locked()
            task.parked = True
            task.label = label
            task.guard = guard
            self.trace.append((task.name, label))
            if self._token == task.name:
                self._grant_next_locked(parker=task)
        self._wait_for_turn(task)

    def _wait_for_turn(self, task: _Task) -> None:
        while not task.gate.wait(_POLL_SECONDS):
            if self._free_run:
                break
            self._poll_stuck()
            if self._deadlocked:
                task.parked = False
                raise SchedulerDeadlockError(
                    f"no eligible task can run; parked: "
                    f"{self.parked_tasks()}")
        task.gate.clear()
        task.parked = False
        task.guard = None

    # -- registration ------------------------------------------------------

    def _register_locked(self, thread: threading.Thread) -> _Task:
        name = thread.name
        while name in self._names:
            name += "'"
        self._names.add(name)
        task = _Task(name, thread)
        self._tasks[thread.ident or id(thread)] = task
        return task

    def _current_task_locked(self) -> _Task:
        thread = threading.current_thread()
        task = self._tasks.get(thread.ident or id(thread))
        if task is None:
            task = self._register_locked(thread)
        return task

    # -- successor choice --------------------------------------------------

    def _grant_next_locked(self, parker: _Task | None = None) -> None:
        # The parker itself is a legitimate successor ("this task simply
        # keeps running") but goes LAST in the candidate order: a plain
        # name sort would let the "always pick index 0" policy hand the
        # token straight back to an alphabetically early parker forever,
        # starving everyone else.  Parker-last makes index 0 mean "switch"
        # and turns the deterministic policy into a natural round-robin,
        # while self-continuation stays explorable as the highest index.
        candidates = sorted(
            (task for task in self._tasks.values()
             if task is not parker and task.eligible()),
            key=lambda task: task.name)
        if parker is not None and parker.eligible():
            candidates.append(parker)
        if not candidates:
            return  # token floats; _poll_stuck re-grants or flags deadlock
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            index = self._next_choice_locked(len(candidates))
            self.choice_counts.append(len(candidates))
            self.decisions.append(index)
            chosen = candidates[index]
        self._token = chosen.name
        chosen.gate.set()

    def _next_choice_locked(self, count: int) -> int:
        position = len(self.decisions)
        if position < len(self._script):
            index = self._script[position]
            if not 0 <= index < count:
                raise ScheduleDivergenceError(
                    f"scripted choice {position} is {index} but only "
                    f"{count} tasks are eligible — the scenario is not "
                    f"deterministic")
            return index
        if self._default == "first":
            return 0
        return self._rng.randrange(count)

    def _poll_stuck(self) -> None:
        """Parked tasks call this at 1 ms: reap dead token holders, regrant
        when a floating token has an eligible taker, and flag a deadlock
        when nothing can ever run again."""
        with self._lock:
            dead = [key for key, task in self._tasks.items()
                    if not task.thread.is_alive()]
            for key in dead:
                task = self._tasks.pop(key)
                self._names.discard(task.name)
            alive = list(self._tasks.values())
            if any(not task.parked or task.gate.is_set() for task in alive):
                return  # someone runs (or was just handed the token)
            if any(task.eligible() for task in alive):
                self._grant_next_locked()
                return
            if alive:
                self._deadlocked = True

    # -- spawning ----------------------------------------------------------

    def _await_spawn(self, name: str) -> None:
        deadline = time.monotonic() + _SPAWN_TIMEOUT
        while True:
            with self._lock:
                for task in self._tasks.values():
                    if task.name == name and task.parked:
                        return
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"task {name!r} did not reach its first yield point")
            time.sleep(_POLL_SECONDS / 2)

    def spawn(self, name: str, fn: Callable[..., Any], *args: Any,
              **kwargs: Any) -> threading.Thread:
        """Start ``fn`` on a managed thread named ``name``.

        The new thread parks at ``start:<name>`` before running ``fn``, and
        this call returns only once it has — from then on the thread moves
        only when the schedule picks it.  When ``fn`` returns, the thread
        deregisters and hands the token back explicitly (no reaper
        latency), which is also what makes :meth:`wait_threads`
        deterministic.
        """
        def runner() -> None:
            self(f"start:{name}")
            try:
                fn(*args, **kwargs)
            finally:
                self._task_exit()

        thread = threading.Thread(target=runner, name=name, daemon=True)
        thread.start()
        self._await_spawn(name)
        return thread

    def _task_exit(self) -> None:
        if self._free_run:
            return
        with self._lock:
            thread = threading.current_thread()
            task = self._tasks.pop(thread.ident or id(thread), None)
            if task is None:
                return
            self._names.discard(task.name)
            if self._token == task.name:
                self._grant_next_locked()

    def wait_threads(self, *threads: threading.Thread,
                     label: str = "wait:threads") -> None:
        """Park until every scheduler-:meth:`spawn`-ed thread has finished.

        Deterministic, unlike polling ``Thread.is_alive`` from a loop: a
        spawned task deregisters at a fixed point in the schedule (its
        ``fn`` returned), so the guard flips at the same decision index in
        every replay.  Only use with threads created by :meth:`spawn`.
        """
        idents = [thread.ident or id(thread) for thread in threads]

        def done() -> bool:
            return all(ident not in self._tasks for ident in idents)

        while not done():
            self.park_until(label, done)

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        """Stop scheduling: every parked task resumes and free-runs."""
        with self._lock:
            self._free_run = True
            for task in self._tasks.values():
                task.gate.set()

    def parked_tasks(self) -> list[tuple[str, str]]:
        """Currently parked ``(name, label)`` pairs, for debugging."""
        with self._lock:
            return sorted((task.name, task.label)
                          for task in self._tasks.values() if task.parked)


def explore_interleavings(
        scenario: Callable[[DeterministicScheduler], Any],
        max_interleavings: int = 200) -> list[tuple[list[int], Any]]:
    """DFS-enumerate schedules of ``scenario`` and collect its results.

    ``scenario`` receives a fresh scheduler per run; it must build its own
    DB/threads (passing the scheduler as ``step_hook``), drive them with
    :meth:`DeterministicScheduler.spawn` / ``wait_threads`` and return
    something comparable (e.g. observed reads plus the final state).
    Returns ``[(decisions, result), ...]``, one entry per distinct
    interleaving, at most ``max_interleavings`` of them.

    The enumeration is exact for scenarios whose choice tree fits the
    budget: every leaf reached is a complete schedule, and alternative
    branches at every depth are queued until exhausted.
    """
    results: list[tuple[list[int], Any]] = []
    stack: list[tuple[int, ...]] = [()]
    while stack and len(results) < max_interleavings:
        prefix = stack.pop()
        scheduler = DeterministicScheduler(script=list(prefix),
                                           default="first")
        result = scenario(scheduler)
        decisions = list(scheduler.decisions)
        counts = list(scheduler.choice_counts)
        if decisions[:len(prefix)] != list(prefix):
            raise ScheduleDivergenceError(
                f"replay of prefix {list(prefix)} recorded "
                f"{decisions[:len(prefix)]}")
        results.append((decisions, result))
        for depth in range(len(prefix), len(decisions)):
            for alternative in range(decisions[depth] + 1, counts[depth]):
                stack.append(tuple(decisions[:depth]) + (alternative,))
    return results
