"""SSTables: immutable sorted tables with embedded secondary-index metadata.

File layout (LevelDB's, extended per the paper's Figure 3)::

    [data block 1]
    ...
    [data block N]
    [primary filter meta block]        one bloom filter per data block
    [secondary filter meta block(s)]   per indexed attribute   (LevelDB++)
    [secondary zone-map meta block(s)] per indexed attribute   (LevelDB++)
    [metaindex block]                  meta block name -> handle
    [index block]                      last key per data block -> handle
    [footer]                           metaindex + index handles, magic

Each physical block is followed by a one-byte compression tag and a CRC32
of payload+tag, as in LevelDB.  Filter and zone-map blocks are loaded into
memory when a table is opened (the paper keeps them memory-resident via a
large ``max_open_files``), so query-time pruning consults them without I/O;
only data blocks that survive pruning are read — and charged.
"""

from __future__ import annotations

import struct
import time
import zlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.lsm.block import Block, BlockBuilder
from repro.lsm.bloom import BloomFilterBuilder, bloom_may_contain
from repro.lsm.compression import Compressor, decompress
from repro.lsm.errors import CorruptionError, SimulatedCrashError
from repro.lsm.keys import (
    KIND_FOR_SEEK,
    KIND_VALUE,
    MAX_SEQUENCE,
    InternalKey,
    decode_length_prefixed,
    decode_varint,
    encode_length_prefixed,
    encode_varint,
    internal_sort_key,
    pack_internal_key,
    unpack_internal_key,
)
from repro.lsm.options import Options, resolve_attribute_path
from repro.lsm.vfs import Category, RandomAccessFile, WritableFile
from repro.lsm.zonemap import ZoneMap, ZoneMapBuilder, encode_attribute

_U32 = struct.Struct("<I")
_TRAILER = struct.Struct(">Q")
_FOOTER_SIZE = 48
_MAGIC = b"LDBppPY1"

_META_PRIMARY_FILTER = b"filter.primary"
_META_SECONDARY_FILTER = "filter.secondary."
_META_SECONDARY_ZONEMAP = "zonemap.secondary."


@dataclass(frozen=True)
class BlockHandle:
    """Location of a block within the file (size excludes the 5-byte trailer)."""

    offset: int
    size: int

    def encode(self) -> bytes:
        return encode_varint(self.offset) + encode_varint(self.size)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["BlockHandle", int]:
        off, pos = decode_varint(data, offset)
        size, pos = decode_varint(data, pos)
        return cls(off, size), pos


@dataclass
class TableProperties:
    """Summary statistics the builder reports for manifest bookkeeping."""

    num_entries: int = 0
    num_data_blocks: int = 0
    file_size: int = 0
    smallest: bytes | None = None  # encoded internal key
    largest: bytes | None = None
    min_seq: int = 0
    max_seq: int = 0
    secondary_zonemaps: dict[str, ZoneMap] = field(default_factory=dict)


def _write_physical_block(out: WritableFile, payload: bytes,
                          compressor: Compressor,
                          category: Category) -> BlockHandle:
    offset = out.size
    data, type_tag = compressor.compress(payload)
    tag = bytes([type_tag])
    crc = _U32.pack(zlib.crc32(data + tag) & 0xFFFFFFFF)
    out.append(data + tag + crc, category)
    return BlockHandle(offset, len(data))


def _read_at_retry(file: RandomAccessFile, offset: int, length: int,
                   category: Category, options: Options) -> bytes:
    """``read_at`` with bounded retries for *transient* I/O errors.

    A checksum failure is not transient (the bytes arrived, they are just
    wrong) and a simulated crash is terminal, so neither is retried.  A
    read that keeps failing past the retry budget is treated as corruption:
    the containment layer then quarantines rather than crash-looping.
    """
    attempts = options.read_retries
    delay = options.read_retry_backoff_seconds
    max_delay = options.read_retry_backoff_seconds * 8
    while True:
        try:
            return file.read_at(offset, length, category)
        except (CorruptionError, SimulatedCrashError):
            raise
        except OSError as exc:
            if attempts <= 0:
                raise CorruptionError(
                    f"read at offset {offset} still failing after "
                    f"{options.read_retries} retries: {exc}") from exc
            attempts -= 1
            if delay > 0:
                time.sleep(delay)
                delay = min(delay * 2, max_delay)


def _read_physical_block(file: RandomAccessFile, handle: BlockHandle,
                         category: Category, verify_crc: bool,
                         options: Options | None = None) -> bytes:
    if options is None:
        raw = file.read_at(handle.offset, handle.size + 5, category)
    else:
        raw = _read_at_retry(file, handle.offset, handle.size + 5, category,
                             options)
    if len(raw) != handle.size + 5:
        raise CorruptionError(
            f"truncated block read at offset {handle.offset}")
    payload, type_tag, stored_crc = raw[:-5], raw[-5], raw[-4:]
    if verify_crc:
        actual = _U32.pack(zlib.crc32(raw[:-4]) & 0xFFFFFFFF)
        if actual != stored_crc:
            raise CorruptionError(
                f"block CRC mismatch at offset {handle.offset}")
    try:
        return decompress(payload, type_tag)
    except (zlib.error, ValueError) as exc:
        # A block that fails to decompress is corrupt regardless of
        # whether the (skipped) CRC would have caught it.
        raise CorruptionError(
            f"block decompression failed at offset {handle.offset}: "
            f"{exc}") from exc


class TableBuilder:
    """Streams sorted entries into a new SSTable file.

    When :attr:`Options.indexed_attributes` is non-empty, the builder runs
    the options' attribute extractor over every VALUE entry and accumulates,
    per data block, a bloom filter and a zone map for each attribute — the
    Embedded Index structures of the paper's Section 3.  They cost nothing
    extra at write time beyond CPU: they are emitted with the table during
    flush/compaction, never updated in place.
    """

    def __init__(self, options: Options, out: WritableFile,
                 compressor: Compressor,
                 category: Category = Category.FLUSH,
                 block_observer=None) -> None:
        self.options = options
        self._out = out
        self._compressor = compressor
        self._category = category
        # ``block_observer(offset, payload)`` sees every finished *data*
        # block's file offset and uncompressed payload.  Compaction workers
        # use it to pre-warm the shared block cache with the exact bytes a
        # later ``read_data_block`` would produce; ``None`` costs nothing.
        self._block_observer = block_observer
        self._data_block = BlockBuilder()
        self._index_block = BlockBuilder(restart_interval=1)
        self._index_entries: list[tuple[bytes, BlockHandle]] = []
        self._primary_filter = BloomFilterBuilder(options.bloom_bits_per_key)
        self._primary_filters: list[bytes] = []
        self._secondary_filters: dict[str, list[bytes]] = {
            attr: [] for attr in options.indexed_attributes}
        self._secondary_filter_builders: dict[str, BloomFilterBuilder] = {}
        self._secondary_zonemaps: dict[str, list[ZoneMap]] = {
            attr: [] for attr in options.indexed_attributes}
        self._secondary_zonemap_builders: dict[str, ZoneMapBuilder] = {}
        self._file_zonemap_builders: dict[str, ZoneMapBuilder] = {
            attr: ZoneMapBuilder() for attr in options.indexed_attributes}
        self._reset_block_secondary_builders()
        self.props = TableProperties()
        self._finished = False

    def _reset_block_secondary_builders(self) -> None:
        bits = self.options.secondary_bloom_bits_per_key
        self._secondary_filter_builders = {
            attr: BloomFilterBuilder(bits)
            for attr in self.options.indexed_attributes}
        self._secondary_zonemap_builders = {
            attr: ZoneMapBuilder()
            for attr in self.options.indexed_attributes}

    def add(self, internal_key: bytes, value: bytes) -> None:
        """Append an entry (keys must be in internal-key order)."""
        if self._finished:
            raise ValueError("builder already finished")
        decoded = unpack_internal_key(internal_key)
        self._data_block.add(internal_key, value)
        self._primary_filter.add(decoded.user_key)
        if self.options.indexed_attributes and decoded.kind == KIND_VALUE:
            self._observe_secondary(value)
        self._track_bounds(internal_key, decoded.seq)
        self.props.num_entries += 1
        if self._data_block.current_size_estimate() >= self.options.block_size:
            self._flush_data_block()

    def _observe_secondary(self, value: bytes) -> None:
        attrs = self.options.attribute_extractor(value)
        for attr in self.options.indexed_attributes:
            attr_value = resolve_attribute_path(attrs, attr)
            if attr_value is None:
                continue
            encoded = encode_attribute(attr_value)
            self._secondary_filter_builders[attr].add(encoded)
            self._secondary_zonemap_builders[attr].add(encoded)
            self._file_zonemap_builders[attr].add(encoded)

    def _track_bounds(self, internal_key: bytes, seq: int) -> None:
        props = self.props
        if props.smallest is None:
            props.smallest = internal_key
            props.min_seq = seq
            props.max_seq = seq
        elif seq < props.min_seq:
            props.min_seq = seq
        elif seq > props.max_seq:
            props.max_seq = seq
        props.largest = internal_key

    def _flush_data_block(self) -> None:
        if self._data_block.is_empty:
            return
        payload = self._data_block.finish()
        handle = _write_physical_block(
            self._out, payload, self._compressor, self._category)
        if self._block_observer is not None:
            self._block_observer(handle.offset, payload)
        last_key = self._data_block._last_key
        self._index_entries.append((last_key, handle))
        self._primary_filters.append(self._primary_filter.finish())
        self._primary_filter = BloomFilterBuilder(self.options.bloom_bits_per_key)
        for attr in self.options.indexed_attributes:
            self._secondary_filters[attr].append(
                self._secondary_filter_builders[attr].finish())
            self._secondary_zonemaps[attr].append(
                self._secondary_zonemap_builders[attr].finish())
        self._reset_block_secondary_builders()
        self._data_block.reset()
        self.props.num_data_blocks += 1

    @property
    def estimated_file_size(self) -> int:
        return self._out.size + self._data_block.current_size_estimate()

    @property
    def num_entries(self) -> int:
        return self.props.num_entries

    def finish(self) -> TableProperties:
        """Flush remaining data, write meta/index blocks and the footer."""
        if self._finished:
            raise ValueError("builder already finished")
        self._flush_data_block()
        meta_handles: list[tuple[bytes, BlockHandle]] = []
        meta_handles.append((
            _META_PRIMARY_FILTER,
            self._write_filter_block(self._primary_filters)))
        for attr in self.options.indexed_attributes:
            name = (_META_SECONDARY_FILTER + attr).encode("utf-8")
            meta_handles.append((
                name, self._write_filter_block(self._secondary_filters[attr])))
            name = (_META_SECONDARY_ZONEMAP + attr).encode("utf-8")
            meta_handles.append((
                name,
                self._write_zonemap_block(self._secondary_zonemaps[attr])))
        metaindex_handle = self._write_metaindex(meta_handles)
        for last_key, handle in self._index_entries:
            self._index_block.add(last_key, handle.encode())
        index_handle = _write_physical_block(
            self._out, self._index_block.finish(), self._compressor,
            self._category)
        footer = metaindex_handle.encode() + index_handle.encode()
        footer += b"\x00" * (_FOOTER_SIZE - 8 - len(footer))
        footer += _MAGIC
        self._out.append(footer, self._category)
        self._out.sync()
        self.props.file_size = self._out.size
        self.props.secondary_zonemaps = {
            attr: builder.finish()
            for attr, builder in self._file_zonemap_builders.items()}
        self._finished = True
        return self.props

    def _write_filter_block(self, filters: list[bytes]) -> BlockHandle:
        payload = bytearray(encode_varint(len(filters)))
        for blob in filters:
            payload += encode_length_prefixed(blob)
        return _write_physical_block(
            self._out, bytes(payload), self._compressor, self._category)

    def _write_zonemap_block(self, zonemaps: list[ZoneMap]) -> BlockHandle:
        payload = bytearray(encode_varint(len(zonemaps)))
        for zone in zonemaps:
            payload += zone.encode()
        return _write_physical_block(
            self._out, bytes(payload), self._compressor, self._category)

    def _write_metaindex(
            self, handles: list[tuple[bytes, BlockHandle]]) -> BlockHandle:
        payload = bytearray(encode_varint(len(handles)))
        for name, handle in handles:
            payload += encode_length_prefixed(name)
            payload += encode_length_prefixed(handle.encode())
        return _write_physical_block(
            self._out, bytes(payload), self._compressor, self._category)


def _decode_filter_block(payload: bytes) -> list[bytes]:
    count, pos = decode_varint(payload, 0)
    filters = []
    for _ in range(count):
        blob, pos = decode_length_prefixed(payload, pos)
        filters.append(blob)
    return filters


def _decode_zonemap_block(payload: bytes) -> list[ZoneMap]:
    count, pos = decode_varint(payload, 0)
    zonemaps = []
    for _ in range(count):
        zone, pos = ZoneMap.decode(payload, pos)
        zonemaps.append(zone)
    return zonemaps


class SSTable:
    """Read-side handle on one table file.

    Opening a table reads the footer, the index block and all meta blocks
    (filters and zone maps); after that, key lookups touch "disk" only for
    data blocks that pass the bloom-filter and zone-map checks.
    """

    def __init__(self, options: Options, file: RandomAccessFile,
                 file_number: int = 0) -> None:
        self.options = options
        self.file = file
        self.file_number = file_number
        footer = _read_at_retry(file, file.size - _FOOTER_SIZE, _FOOTER_SIZE,
                                Category.INDEX, options)
        if len(footer) != _FOOTER_SIZE or footer[-8:] != _MAGIC:
            raise CorruptionError(
                f"bad SSTable footer in file {file_number}")
        metaindex_handle, pos = BlockHandle.decode(footer, 0)
        index_handle, _pos = BlockHandle.decode(footer, pos)
        self._index_block = Block(_read_physical_block(
            file, index_handle, Category.INDEX, verify_crc=True,
            options=options))
        self._index_entries: list[tuple[bytes, BlockHandle]] = []
        for key, value in self._index_block:
            handle, _off = BlockHandle.decode(value, 0)
            self._index_entries.append((key, handle))
        # Per-block search metadata, decoded once at open (the index block
        # is memory-resident anyway): sort keys for the block binary search
        # and each block's last *user* key for the continue-scan check.
        # Without these, every GET re-unpacked index keys per bisect step.
        self._index_sort_keys = [
            internal_sort_key(key) for key, _handle in self._index_entries]
        self._index_last_user_keys = [
            key[:-8] for key, _handle in self._index_entries]
        self.primary_filters: list[bytes] = []
        self.secondary_filters: dict[str, list[bytes]] = {}
        self.secondary_zonemaps: dict[str, list[ZoneMap]] = {}
        #: Meta blocks that failed their CRC and were dropped instead of
        #: failing the open (``on_corruption="quarantine"`` only).  Filters
        #: and zone maps are advisory — a missing one means "must read the
        #: data block", never a wrong answer — so the table degrades to
        #: filter-less reads rather than being lost whole.
        self.degraded_filters: list[str] = []
        self._load_meta(metaindex_handle)
        self._block_cache: Any = None  # set by TableCache when caching is on

    def _load_meta(self, metaindex_handle: BlockHandle) -> None:
        degrade = self.options.on_corruption == "quarantine"
        try:
            payload = _read_physical_block(
                self.file, metaindex_handle, Category.INDEX, verify_crc=True,
                options=self.options)
        except CorruptionError:
            if not degrade:
                raise
            # The metaindex names every filter block; without it none can
            # be located, so the whole advisory layer is dropped.
            self.degraded_filters.append("metaindex")
            return
        count, pos = decode_varint(payload, 0)
        for _ in range(count):
            name_bytes, pos = decode_length_prefixed(payload, pos)
            handle_bytes, pos = decode_length_prefixed(payload, pos)
            handle, _off = BlockHandle.decode(handle_bytes, 0)
            name = name_bytes.decode("utf-8")
            try:
                block_payload = _read_physical_block(
                    self.file, handle, Category.FILTER, verify_crc=True,
                    options=self.options)
            except CorruptionError:
                if not degrade:
                    raise
                self.degraded_filters.append(name)
                continue
            if name_bytes == _META_PRIMARY_FILTER:
                self.primary_filters = _decode_filter_block(block_payload)
            elif name.startswith(_META_SECONDARY_FILTER):
                attr = name[len(_META_SECONDARY_FILTER):]
                self.secondary_filters[attr] = _decode_filter_block(
                    block_payload)
            elif name.startswith(_META_SECONDARY_ZONEMAP):
                attr = name[len(_META_SECONDARY_ZONEMAP):]
                self.secondary_zonemaps[attr] = _decode_zonemap_block(
                    block_payload)

    # -- block access -------------------------------------------------------

    @property
    def num_data_blocks(self) -> int:
        return len(self._index_entries)

    def read_data_block(self, index: int,
                        category: Category = Category.DATA) -> Block:
        """Read (and decompress) data block ``index``, consulting the cache."""
        handle = self._index_entries[index][1]
        cache_key = (self.file_number, handle.offset)
        if self._block_cache is not None:
            cached = self._block_cache.get(cache_key)
            if cached is not None:
                return cached
        try:
            payload = _read_physical_block(
                self.file, handle, category,
                verify_crc=self.options.paranoid_checks,
                options=self.options)
            block = Block(payload)
        except CorruptionError:
            # Never let a poisoned entry linger: any previously cached copy
            # of this block must not be served after the file heals or the
            # table is quarantined.
            if self._block_cache is not None:
                self._block_cache.evict(cache_key)
            raise
        if self._block_cache is not None:
            self._block_cache.put(cache_key, block, len(payload))
        return block

    def _block_index_for(self, internal_key: bytes) -> int | None:
        """Index of the first block whose last key is >= ``internal_key``."""
        lo = bisect_left(self._index_sort_keys,
                         internal_sort_key(internal_key))
        if lo >= len(self._index_entries):
            return None
        return lo

    # -- lookups ------------------------------------------------------------

    def may_contain_primary(self, user_key: bytes, block_index: int) -> bool:
        """Consult the in-memory primary bloom for one block (no I/O)."""
        if block_index >= len(self.primary_filters):
            return True
        return bloom_may_contain(self.primary_filters[block_index], user_key)

    def may_contain_user_key(self, user_key: bytes) -> bool:
        """Purely in-memory presence probe: index block + primary blooms.

        This is the core of the paper's ``GetLite`` optimisation (Section 3):
        deciding whether a *newer* version of a key might exist in a file
        without reading any data block.  False positives are possible at the
        bloom filter's rate; false negatives are not.
        """
        probe = pack_internal_key(user_key, MAX_SEQUENCE, KIND_FOR_SEEK)
        start = self._block_index_for(probe)
        if start is None:
            return False
        for block_index in range(start, len(self._index_entries)):
            if self.may_contain_primary(user_key, block_index):
                return True
            if not self._user_key_may_continue(user_key, block_index):
                return False
        return False

    def versions(self, user_key: bytes, max_seq: int,
                 category: Category = Category.DATA
                 ) -> Iterator[tuple[InternalKey, bytes]]:
        """All stored versions of ``user_key`` with ``seq <= max_seq``.

        Yields newest-first.  Performs at most a handful of data-block reads
        (bloom filters prune the common miss case without I/O).
        """
        for kind, seq, value in self.versions_raw(user_key, max_seq,
                                                  category):
            yield InternalKey(user_key, seq, kind), value

    def versions_raw(self, user_key: bytes, max_seq: int,
                     category: Category = Category.DATA
                     ) -> Iterator[tuple[int, int, bytes]]:
        """Versions of ``user_key`` as ``(kind, seq, value)``, newest first.

        The engine-internal form of :meth:`versions`: the GET hot path
        consumes kind/seq scalars straight off the key trailer, so no
        :class:`InternalKey` (nor a user-key slice per entry) is allocated.
        """
        probe = pack_internal_key(user_key, max_seq, KIND_FOR_SEEK)
        start = self._block_index_for(probe)
        if start is None:
            return
        user_key_len = len(user_key)
        encoded_len = user_key_len + 8
        unpack_trailer = _TRAILER.unpack_from
        for block_index in range(start, len(self._index_entries)):
            if not self.may_contain_primary(user_key, block_index):
                # Bloom says the key is not in this block.  Versions of one
                # user key may still straddle a block boundary, so continue
                # to the next block rather than stopping; the next index-key
                # check below terminates the scan cheaply.
                if not self._user_key_may_continue(user_key, block_index):
                    return
                continue
            block = self.read_data_block(block_index, category)
            for ikey_bytes, value in block.seek(probe):
                if len(ikey_bytes) != encoded_len or \
                        not ikey_bytes.startswith(user_key):
                    return
                tag = unpack_trailer(ikey_bytes, user_key_len)[0]
                yield tag & 0xFF, tag >> 8, value
            if not self._user_key_may_continue(user_key, block_index):
                return

    def _user_key_may_continue(self, user_key: bytes, block_index: int) -> bool:
        """Could ``user_key`` have versions in blocks after ``block_index``?"""
        return self._index_last_user_keys[block_index] <= user_key

    def __iter__(self) -> Iterator[tuple[InternalKey, bytes]]:
        for block_index in range(len(self._index_entries)):
            block = self.read_data_block(block_index)
            for ikey_bytes, value in block:
                yield unpack_internal_key(ikey_bytes), value

    def iterate_from(self, internal_key: bytes,
                     category: Category = Category.DATA
                     ) -> Iterator[tuple[InternalKey, bytes]]:
        """Entries with internal key >= ``internal_key``, in order."""
        start = self._block_index_for(internal_key)
        if start is None:
            return
        block = self.read_data_block(start, category)
        for ikey_bytes, value in block.seek(internal_key):
            yield unpack_internal_key(ikey_bytes), value
        for block_index in range(start + 1, len(self._index_entries)):
            block = self.read_data_block(block_index, category)
            for ikey_bytes, value in block:
                yield unpack_internal_key(ikey_bytes), value

    def sorted_entries(self, start_internal_key: bytes | None = None,
                       category: Category = Category.DATA
                       ) -> Iterator[tuple[tuple[bytes, int], bytes]]:
        """``(sort_key, value)`` pairs from ``start_internal_key`` onward.

        The scan pipeline's form of :meth:`iterate_from`: no
        :class:`InternalKey` objects are allocated; the per-block sort-key
        arrays are handed out directly (see :meth:`Block.sorted_items`).
        """
        start = 0
        if start_internal_key is not None:
            first = self._block_index_for(start_internal_key)
            if first is None:
                return
            block = self.read_data_block(first, category)
            yield from block.sorted_seek(start_internal_key)
            start = first + 1
        for block_index in range(start, len(self._index_entries)):
            yield from self.read_data_block(block_index,
                                            category).sorted_items()
