"""Multiprocess compaction: byte identity, crash drills, lifecycle.

Worker processes are spawned (slow-ish per spawn), so tests share DBs
where they can and keep datasets small.
"""

import hashlib
import os
import signal
import time

import pytest

from repro.core.posting import posting_merge_operator
from repro.lsm.checker import verify_integrity
from repro.lsm.db import DB
from repro.lsm.errors import (
    CompactionWorkerError,
    FaultInjectedError,
    OutOfSpaceError,
)
from repro.lsm.faults import FaultPlan
from repro.lsm.manifest import table_file_name
from repro.lsm.options import Options
from repro.lsm.procpool import (
    create_executor,
    restore_options,
    snapshot_options,
)
from repro.lsm.vfs import LocalVFS, MemoryVFS


def _options(**overrides):
    base = dict(sstable_target_size=8 * 1024, memtable_budget=8 * 1024,
                l0_compaction_trigger=64, l0_slowdown_writes_trigger=80,
                l0_stop_writes_trigger=96)
    base.update(overrides)
    return Options(**base)


def _load(db, rounds=6, keys=120):
    """Deterministic overlapping L0 tables: overwrites, deletes, churn."""
    for r in range(rounds):
        for i in range(keys):
            db.put(f"k{i:04d}".encode(), f"r{r}-v{i}".encode() * 8)
        for i in range(0, keys, 7):
            db.delete(f"k{i:04d}".encode())
        db.flush()


def _expect(db, rounds=6, keys=120):
    last = rounds - 1
    for i in range(keys):
        value = db.get(f"k{i:04d}".encode())
        if i % 7 == 0:
            assert value is None, i
        else:
            assert value == f"r{last}-v{i}".encode() * 8, i


def _level_hashes(db):
    """Per-level multisets of table-content hashes (file numbers ignored)."""
    shapes = []
    for files in db.versions.current.levels:
        digests = sorted(
            hashlib.sha256(db.vfs.read_whole(
                table_file_name(db.name, meta.file_number))).hexdigest()
            for meta in files)
        shapes.append(digests)
    return shapes


class TestByteIdentity:
    def test_same_tables_inline_threaded_multiprocess(self, tmp_path):
        shapes = {}
        modes = {
            "inline": dict(background_compaction=False),
            "threaded": dict(background_compaction=True),
            "process": dict(background_compaction=True,
                            compaction_processes=1,
                            shm_cache_bytes=256 * 1024),
        }
        for mode, overrides in modes.items():
            vfs = LocalVFS(str(tmp_path / mode))
            db = DB.open(vfs, "db", _options(**overrides))
            try:
                _load(db)
                db.compact_range()
                if mode == "process":
                    workers = db.stats()["pipeline"]["workers"]
                    assert workers["jobs_completed"] > 0
                    assert workers["jobs_failed"] == 0
                _expect(db)
                shapes[mode] = _level_hashes(db)
            finally:
                db.close()
        assert shapes["inline"] == shapes["threaded"]
        assert shapes["inline"] == shapes["process"]

    def test_merge_operator_folds_identically(self, tmp_path):
        from repro.core.posting import PostingEntry, encode_posting_list

        shapes = {}
        for mode, processes in (("inline", 0), ("process", 1)):
            vfs = LocalVFS(str(tmp_path / mode))
            db = DB.open(vfs, "db", _options(
                merge_operator=posting_merge_operator,
                compaction_processes=processes))
            try:
                seq = 0
                for r in range(5):
                    for i in range(40):
                        seq += 1
                        db.merge(f"p{i:03d}".encode(), encode_posting_list(
                            [PostingEntry(f"doc-{r}-{i}", seq)]))
                    db.flush()
                db.compact_range()
                assert b"doc-0-7" in db.get(b"p007")
                assert b"doc-4-7" in db.get(b"p007")
                shapes[mode] = _level_hashes(db)
            finally:
                db.close()
        assert shapes["inline"] == shapes["process"]


class TestWorkerCrash:
    def test_planned_exit_retries_on_fresh_worker(self, tmp_path):
        db = DB.open(LocalVFS(str(tmp_path)), "db",
                     _options(compaction_processes=1))
        try:
            _load(db, rounds=4)
            # Kill the worker partway into writing the first output; the
            # retry must strip the plan and complete on a respawned worker.
            db._executor.arm_fault(FaultPlan(exit_at=3))
            db.compact_range()
            _expect(db, rounds=4)
            workers = db.stats()["pipeline"]["workers"]
            assert workers["jobs_retried"] >= 1
            assert workers["jobs_failed"] >= 1
            assert any(w["restarts"] >= 1 for w in workers["per_worker"])
            assert verify_integrity(db).ok
        finally:
            db.close()

    def test_sigkill_mid_job_retries_and_leaves_no_orphans(self, tmp_path):
        db = DB.open(LocalVFS(str(tmp_path)), "db",
                     _options(compaction_processes=1))
        try:
            _load(db, rounds=4)
            # A real SIGKILL, not a cooperative exit: fire it from a timer
            # while the coordinator blocks on the job.
            import threading

            pid = db._executor.worker_pids()[0]
            threading.Timer(0.05, os.kill, args=(pid, signal.SIGKILL)).start()
            db.compact_range()  # retried on the respawned worker
            _expect(db, rounds=4)
            assert verify_integrity(db).ok
        finally:
            db.close()

    def test_repeated_deaths_abandon_cleanly(self, tmp_path):
        db = DB.open(LocalVFS(str(tmp_path)), "db",
                     _options(compaction_processes=1))
        try:
            _load(db, rounds=3)
            from repro.lsm import procpool

            original = procpool.MAX_JOB_RETRIES
            procpool.MAX_JOB_RETRIES = 0
            try:
                db._executor.arm_fault(FaultPlan(exit_at=3))
                with pytest.raises(CompactionWorkerError):
                    db.compact_range()
            finally:
                procpool.MAX_JOB_RETRIES = original
            # Inputs stay live, no orphan outputs, DB fully usable.
            _expect(db, rounds=3)
            assert verify_integrity(db).ok
            db.compact_range()
            _expect(db, rounds=3)
        finally:
            db.close()

    def test_write_fault_in_worker_abandons_without_orphans(self, tmp_path):
        db = DB.open(LocalVFS(str(tmp_path)), "db",
                     _options(compaction_processes=1))
        try:
            _load(db, rounds=3)
            db._executor.arm_fault(FaultPlan(fail_write_at=5))
            with pytest.raises(FaultInjectedError):
                db.compact_range()
            _expect(db, rounds=3)
            assert verify_integrity(db).ok
            db.compact_range()  # plan was one-shot; now clean
            assert verify_integrity(db).ok
        finally:
            db.close()

    def test_worker_enospc_maps_to_out_of_space(self, tmp_path):
        db = DB.open(LocalVFS(str(tmp_path)), "db",
                     _options(compaction_processes=1))
        try:
            _load(db, rounds=3)
            db._executor.arm_fault(FaultPlan(enospc_at=4))
            with pytest.raises(OutOfSpaceError):
                db.compact_range()
            assert verify_integrity(db).ok
        finally:
            db.close()

    def test_close_never_hangs_on_dead_workers(self, tmp_path):
        db = DB.open(LocalVFS(str(tmp_path)), "db",
                     _options(compaction_processes=2))
        _load(db, rounds=2)
        for pid in db._executor.worker_pids():
            os.kill(pid, signal.SIGKILL)
        started = time.monotonic()
        db.close()
        assert time.monotonic() - started < 10.0


class TestExecutorGating:
    def test_memory_vfs_falls_back_inline(self):
        db = DB.open(MemoryVFS(), "db",
                     _options(compaction_processes=2))
        try:
            assert db._executor is None
            _load(db, rounds=2)
            db.compact_range()
            _expect(db, rounds=2)
        finally:
            db.close()

    def test_lambda_merge_operator_falls_back(self, tmp_path):
        options = _options(compaction_processes=1,
                           merge_operator=lambda key, ops: ops[-1])
        db = DB.open(LocalVFS(str(tmp_path)), "db", options)
        try:
            assert db._executor is None
            assert db.compactor.executor is None
        finally:
            db.close()

    def test_env_var_opts_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_COMPACTION_PROCESSES", "1")
        db = DB.open(LocalVFS(str(tmp_path)), "db", _options())
        try:
            assert db._executor is not None
            _load(db, rounds=2)
            db.compact_range()
            _expect(db, rounds=2)
            assert db.stats()["pipeline"]["workers"]["jobs_completed"] > 0
        finally:
            db.close()

    def test_default_stays_in_process(self, tmp_path):
        db = DB.open(LocalVFS(str(tmp_path)), "db", _options())
        try:
            assert db._executor is None
            assert db.stats()["pipeline"]["workers"] is None
            assert db.stats()["pipeline"]["shm_cache"] is None
        finally:
            db.close()


class TestOptionsSnapshot:
    def test_roundtrip_preserves_engine_fields(self):
        options = _options(compression="none", block_size=2048,
                           paranoid_checks=False)
        doc, reason = snapshot_options(options)
        assert reason is None
        restored = restore_options(doc)
        assert restored.compression == "none"
        assert restored.block_size == 2048
        assert restored.paranoid_checks is False
        assert restored.sstable_target_size == options.sstable_target_size
        # Worker-side snapshots never recurse into more processes.
        assert restored.compaction_processes == 0
        assert restored.background_compaction is False

    def test_importable_merge_operator_ships_by_reference(self):
        doc, reason = snapshot_options(
            _options(merge_operator=posting_merge_operator))
        assert reason is None
        assert restore_options(doc).merge_operator is posting_merge_operator

    def test_closure_merge_operator_is_rejected(self):
        doc, reason = snapshot_options(
            _options(merge_operator=lambda key, ops: ops[-1]))
        assert doc is None
        assert "merge_operator" in reason

    def test_create_executor_requires_local_root(self):
        executor = create_executor(MemoryVFS(), "db", _options(), 1)
        assert executor is None


class TestObservability:
    def test_worker_gauges_populate(self, tmp_path):
        db = DB.open(LocalVFS(str(tmp_path)), "db",
                     _options(compaction_processes=1,
                              shm_cache_bytes=128 * 1024))
        try:
            _load(db, rounds=3)
            db.compact_range()
            pipeline = db.stats()["pipeline"]
            workers = pipeline["workers"]
            assert workers["processes"] == 1
            assert workers["jobs_completed"] == workers["jobs_dispatched"] > 0
            assert workers["jobs_failed"] == 0
            assert workers["worker_cpu_seconds"] > 0
            per = workers["per_worker"][0]
            assert per["pid"] is not None
            assert per["shm_stores"] > 0
            shm = pipeline["shm_cache"]
            assert shm["slot_count"] > 0
        finally:
            db.close()

    def test_shm_cache_serves_coordinator_reads(self, tmp_path):
        # Blocks written by the worker should be readable without disk I/O:
        # compact, then GET with a cold table cache and check shm hits.
        db = DB.open(LocalVFS(str(tmp_path)), "db",
                     _options(compaction_processes=1,
                              shm_cache_bytes=1 << 20,
                              block_cache_size=0))
        try:
            _load(db, rounds=3)
            db.compact_range()
            _expect(db, rounds=3)
            assert db._shm_cache.hits > 0
        finally:
            db.close()
