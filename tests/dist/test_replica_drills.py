"""Deterministic kill-a-replica drills.

Under the :class:`DeterministicScheduler`, a killer thread takes one
replica down at an enumerated yield point of a mixed put/delete/lookup
workload.  The drilled invariants, at every kill point:

* every **acked** write stays readable (no lost acks),
* no lookup ever returns a wrong or resurrected result — checked
  mid-drill against an operation oracle, not just at the end,
* the revived replica reseeds back to a byte-identical copy,
* and every schedule replays **bit-for-bit** from its seed — the trace,
  the decision log, the acked set and the final replica digests.

``REPRO_DIST_DRILLS=full`` (the CI setting) enumerates every kill step;
the default strides through them for developer-loop speed.  Set
``DIST_DRILL_LOG_DIR`` to keep per-run schedule logs as artifacts.
"""

import json
import os
import random

import pytest

from repro.core.base import IndexKind
from repro.dist.cluster import ShardedDB
from repro.lsm.options import Options
from repro.lsm.testing import DeterministicScheduler

FULL = os.environ.get("REPRO_DIST_DRILLS") == "full"
NEVER = 10 ** 9
NUM_USERS = 3
TARGETS = [(0, 0), (0, 1), (1, 0), (1, 1)]


def _options():
    return Options(block_size=512, sstable_target_size=2 * 1024,
                   memtable_budget=2 * 1024, l1_target_size=8 * 1024)


def _open_cluster():
    return ShardedDB.open_memory(num_shards=2, replication_factor=2,
                                 local_indexes={"UserID": IndexKind.LAZY},
                                 options=_options())


def _open_log(basename):
    log_dir = os.environ.get("DIST_DRILL_LOG_DIR")
    if not log_dir:
        return None
    os.makedirs(log_dir, exist_ok=True)
    return open(os.path.join(log_dir, basename), "w")


def _check_lookup(acked, value, results):
    """Lookup results must equal the operation oracle exactly — same
    keys, same documents, same recency order, no tombstoned record
    resurrected."""
    expected = sorted(((seq, key) for key, (doc, seq) in acked.items()
                       if doc is not None and doc["UserID"] == value),
                      reverse=True)
    assert [(r.seq, r.key) for r in results] == expected
    for r in results:
        assert r.document == acked[r.key][0]


def _run_drill(kill_shard, kill_replica, kill_step, seed=0, num_ops=16,
               revive_step=None):
    """One drill: run the workload, kill (and optionally revive) the
    target replica at the given trace step, check every invariant, and
    return a replay-comparable summary of the entire run."""
    sched = DeterministicScheduler(seed=seed)
    cluster = _open_cluster()
    acked = {}
    for i in range(6):  # preload before instrumenting: not drill steps
        doc = {"UserID": f"u{i % NUM_USERS}", "n": -1}
        acked[f"k{i}"] = (doc, cluster.put(f"k{i}", doc))
    cluster.instrument(sched)
    failures, done, killed, revived = [], [False], [False], [None]

    def workload():
        rng = random.Random(seed)
        try:
            for i in range(num_ops):
                key = f"k{rng.randrange(10)}"
                roll = rng.random()
                if roll < 0.2:
                    seq = cluster.delete(key)
                    acked[key] = (None, seq)
                elif roll < 0.8:
                    doc = {"UserID": f"u{rng.randrange(NUM_USERS)}", "n": i}
                    seq = cluster.put(key, doc)
                    acked[key] = (doc, seq)
                else:
                    value = f"u{rng.randrange(NUM_USERS)}"
                    _check_lookup(acked, value,
                                  cluster.lookup("UserID", value,
                                                 early_termination=False))
        except BaseException as exc:  # noqa: BLE001 - reported by the test
            failures.append(exc)
        finally:
            done[0] = True

    def killer():
        sched.park_until("killer:arm",
                         lambda: done[0] or len(sched.trace) >= kill_step)
        if len(sched.trace) >= kill_step:
            cluster.kill_replica(kill_shard, kill_replica)
            killed[0] = True

    def medic():
        sched.park_until("medic:arm",
                         lambda: done[0] or (killed[0] and
                                             len(sched.trace) >= revive_step))
        if killed[0] and not done[0]:
            revived[0] = cluster.revive_replica(kill_shard, kill_replica)

    threads = [sched.spawn("writer", workload), sched.spawn("killer", killer)]
    if revive_step is not None:
        threads.append(sched.spawn("medic", medic))
    sched.wait_threads(*threads)
    sched.shutdown()
    assert not failures, f"workload failed mid-drill: {failures[0]!r}"

    # Invariant 1: every acked write is readable; deletes stay deleted.
    for key, (doc, _seq) in acked.items():
        assert cluster.get(key) == doc, f"acked write to {key} lost"
    # Invariant 2: index queries agree with the oracle after the dust
    # settles (wrong/resurrected results were already checked mid-drill).
    for u in range(NUM_USERS):
        _check_lookup(acked, f"u{u}",
                      cluster.lookup("UserID", f"u{u}",
                                     early_termination=False))
    # Invariant 3: the killed replica revives and reseeds to parity.
    if killed[0] and revived[0] is None:
        revived[0] = cluster.revive_replica(kill_shard, kill_replica)
    assert revived[0] in (None, "up", "stale")
    cluster.repair_shard(kill_shard)
    digests = []
    for group in cluster.data_shards:
        per_shard = set(group.replica_digests().values())
        assert len(per_shard) == 1, \
            f"shard {group.shard_id} replicas diverged after repair"
        digests.append(per_shard.pop())
    report = cluster.verify_integrity()
    assert all(r.ok for r in report.values())

    result = {
        "trace": tuple(sched.trace),
        "decisions": tuple(sched.decisions),
        "killed": killed[0],
        "revived": revived[0],
        "acked": {key: (None if doc is None else tuple(sorted(doc.items())),
                        seq)
                  for key, (doc, seq) in acked.items()},
        "digests": tuple(digests),
    }
    cluster.close()
    return result


class TestKillDrills:
    def test_kill_every_replica_at_every_enumerated_step(self):
        baseline = _run_drill(0, 0, NEVER)
        assert not baseline["killed"]
        horizon = len(baseline["trace"])
        assert horizon > 20, "workload too short to drill"
        stride = 1 if FULL else max(1, horizon // 12)
        log = _open_log("replica-kill.log")
        runs = kills = 0
        try:
            for shard, replica in TARGETS:
                for step in range(0, horizon, stride):
                    result = _run_drill(shard, replica, step)
                    runs += 1
                    kills += result["killed"]
                    if log is not None:
                        log.write(json.dumps(
                            {"target": [shard, replica], "step": step,
                             "killed": result["killed"],
                             "revived": result["revived"],
                             "decisions": list(result["decisions"]),
                             "digests": list(result["digests"])}) + "\n")
        finally:
            if log is not None:
                log.close()
        # Every target must actually have died at least once (step 0
        # always fires), or the enumeration proved nothing.
        assert kills >= len(TARGETS)
        assert runs == len(TARGETS) * len(range(0, horizon, stride))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_schedules_replay_bit_for_bit(self, seed):
        first = _run_drill(0, 1, 7, seed=seed)
        second = _run_drill(0, 1, 7, seed=seed)
        assert first == second

    @pytest.mark.parametrize("seed", [3, 4])
    def test_different_seeds_explore_different_schedules(self, seed):
        # Sanity check that the seed actually steers scheduling: the
        # workload differs, so the traces must too.
        assert _run_drill(0, 1, 7, seed=seed)["trace"] != \
            _run_drill(0, 1, 7, seed=seed + 10)["trace"]


class TestKillReviveDrills:
    def test_revive_mid_drill_at_enumerated_delays(self):
        baseline = _run_drill(0, 0, NEVER)
        horizon = len(baseline["trace"])
        kill_step = 5
        delays = range(1, horizon - kill_step,
                       1 if FULL else max(1, horizon // 8))
        log = _open_log("replica-kill-revive.log")
        try:
            for delay in delays:
                for shard, replica in ((0, 0), (1, 1)):
                    result = _run_drill(shard, replica, kill_step,
                                        revive_step=kill_step + delay)
                    assert result["killed"]
                    if log is not None:
                        log.write(json.dumps(
                            {"target": [shard, replica],
                             "revive_delay": delay,
                             "revived": result["revived"]}) + "\n")
        finally:
            if log is not None:
                log.close()
