"""The shared-memory block cache (cross-process, seqlock slots)."""

import zlib

import pytest

from repro.lsm.block import BlockBuilder
from repro.lsm.cache import LRUCache
from repro.lsm.options import Options
from repro.lsm.shmcache import (
    _SLOT_HEADER,
    SharedBlockCache,
    ShmBackedBlockCache,
    slot_payload_bytes,
)


@pytest.fixture
def cache():
    shared = SharedBlockCache.create(64 * 1024, 4096)
    yield shared
    shared.close()


class TestSharedBlockCache:
    def test_put_get_roundtrip(self, cache):
        payload = b"block-payload" * 100
        assert cache.put((7, 4096), payload)
        assert cache.get((7, 4096)) == payload
        assert cache.hits == 1 and cache.stores == 1

    def test_miss_on_absent_key(self, cache):
        assert cache.get((1, 0)) is None
        assert cache.misses == 1

    def test_attach_sees_owner_writes(self, cache):
        cache.put((3, 128), b"shared-bytes")
        other = SharedBlockCache.attach(cache.name)
        try:
            assert other.get((3, 128)) == b"shared-bytes"
            other.put((4, 256), b"from-attacher")
        finally:
            other.close()
        assert cache.get((4, 256)) == b"from-attacher"

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=1024)
        try:
            with pytest.raises(ValueError):
                SharedBlockCache.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_oversized_payload_declined(self, cache):
        assert not cache.put((1, 0), b"x" * (cache.slot_bytes + 1))
        assert cache.store_skips == 1
        assert cache.get((1, 0)) is None

    def test_colliding_key_overwrites_and_counts_eviction(self, cache):
        # Same slot, different key: direct-mapped placement means the
        # second store displaces the first.
        key_a = (1, 0)
        slot = cache._slot_offset(*key_a)
        key_b = None
        for number in range(2, 10_000):
            if cache._slot_offset(number, 0) == slot:
                key_b = (number, 0)
                break
        assert key_b is not None, "no colliding key found"
        cache.put(key_a, b"first")
        cache.put(key_b, b"second")
        assert cache.evictions == 1
        assert cache.get(key_a) is None
        assert cache.get(key_b) == b"second"

    def test_torn_slot_reads_as_miss(self, cache):
        payload = b"will-be-torn" * 50
        cache.put((9, 512), payload)
        # Corrupt one payload byte behind the cache's back: the slot CRC
        # must catch it (this is the multi-writer race's failure mode).
        base = cache._slot_offset(9, 512)
        start = base + 32  # past the slot header
        cache._buf[start] ^= 0xFF
        assert cache.get((9, 512)) is None

    def test_writer_in_progress_slot_is_skipped(self, cache):
        cache.put((2, 64), b"stable")
        base = cache._slot_offset(2, 64)
        gen, length, crc, number, offset = _SLOT_HEADER.unpack_from(
            cache._buf, base)
        _SLOT_HEADER.pack_into(cache._buf, base, gen | 1, length, crc,
                               number, offset)
        assert cache.get((2, 64)) is None       # odd gen: mid-write
        assert not cache.put((2, 64), b"nope")  # writers decline too
        assert cache.store_skips == 1

    def test_evict_and_evict_file(self, cache):
        for offset in (0, 4096, 8192):
            cache.put((5, offset), b"five")
        cache.put((6, 0), b"six")
        assert cache.evict((5, 0))
        assert cache.get((5, 0)) is None
        assert cache.evict_file(5) == 2
        assert cache.get((5, 4096)) is None
        assert cache.get((6, 0)) == b"six"

    def test_stats_dict_shape(self, cache):
        stats = cache.stats_dict()
        assert set(stats) == {"slot_count", "slot_bytes", "hits", "misses",
                              "stores", "store_skips", "evictions"}


class TestSlotSizing:
    def test_defaults_to_twice_block_size(self):
        assert slot_payload_bytes(Options(block_size=4096)) == 8192

    def test_explicit_override_wins(self):
        options = Options(block_size=4096, shm_slot_bytes=1 << 16)
        assert slot_payload_bytes(options) == 1 << 16


def _block_payload(items):
    builder = BlockBuilder(restart_interval=4)
    for user_key, value in items:
        builder.add(user_key + bytes(8), value)  # 8-byte seq/kind trailer
    return builder.finish()


class TestShmBackedBlockCache:
    def test_shm_hit_decodes_and_backfills_local(self, cache):
        payload = _block_payload([(b"a", b"1"), (b"b", b"2")])
        cache.put((1, 0), payload)
        local = LRUCache(1 << 20)
        layered = ShmBackedBlockCache(cache, local)
        block = layered.get((1, 0))
        assert block is not None
        assert block.data == payload
        assert local.get((1, 0)) is block  # back-filled, decoded once

    def test_put_populates_both_layers(self, cache):
        from repro.lsm.block import Block

        payload = _block_payload([(b"k", b"v")])
        local = LRUCache(1 << 20)
        layered = ShmBackedBlockCache(cache, local)
        layered.put((2, 0), Block(payload), len(payload))
        assert cache.get((2, 0)) == payload
        fresh = ShmBackedBlockCache(cache, None)
        assert fresh.get((2, 0)).data == payload

    def test_evict_file_sweeps_both_layers(self, cache):
        from repro.lsm.block import Block

        payload = _block_payload([(b"k", b"v")])
        local = LRUCache(1 << 20)
        layered = ShmBackedBlockCache(cache, local)
        layered.put((3, 0), Block(payload), len(payload))
        layered.put((3, 4096), Block(payload), len(payload))
        assert layered.evict_file(3) >= 2
        assert layered.get((3, 0)) is None
        assert cache.get((3, 4096)) is None

    def test_works_without_local_lru(self, cache):
        from repro.lsm.block import Block

        payload = _block_payload([(b"k", b"v")])
        layered = ShmBackedBlockCache(cache, None)
        layered.put((4, 0), Block(payload), len(payload))
        assert layered.get((4, 0)).data == payload
        assert layered.get((5, 0)) is None
        assert layered.capacity == cache.slot_count * cache.slot_bytes
        assert layered.used_bytes == 0

    def test_payload_crc_matches_zlib_crc32(self, cache):
        # The slot CRC is plain crc32 over the payload — pin that so a
        # future "optimization" can't silently weaken torn-read detection.
        payload = b"pinned"
        cache.put((8, 0), payload)
        base = cache._slot_offset(8, 0)
        crc = _SLOT_HEADER.unpack_from(cache._buf, base)[2]
        assert crc == zlib.crc32(payload) & 0xFFFFFFFF
