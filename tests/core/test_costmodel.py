"""The Tables 3/5 analytic cost model."""

import math

import pytest

from repro.core.base import IndexKind
from repro.core.costmodel import CostModel


@pytest.fixture
def model():
    return CostModel(levels=4, level_ratio=10, level0_blocks=100,
                     bloom_bits_per_key=100, avg_posting_list_length=30,
                     num_indexed_attributes=2)


class TestWAMF:
    def test_paper_numbers(self, model):
        """Section 5.2.1: WAMF_lazy = WAMF_composite = 22*(4-1) = 66;
        WAMF_eager = 30 * 22 * (4-1) = 1980 (per unit; the paper scales by
        PL_S for each of two indexes)."""
        assert model.wamf(IndexKind.LAZY) == 22 * 3
        assert model.wamf(IndexKind.COMPOSITE) == 22 * 3
        assert model.wamf(IndexKind.EAGER) == 30 * 22 * 3

    def test_embedded_and_noindex_free(self, model):
        assert model.wamf(IndexKind.EMBEDDED) == 0
        assert model.wamf(IndexKind.NOINDEX) == 0

    def test_eager_dominates(self, model):
        assert model.wamf(IndexKind.EAGER) > 10 * model.wamf(IndexKind.LAZY)


class TestPutCosts:
    def test_table5_put_rows(self, model):
        assert model.put_cost(IndexKind.EAGER) == (2.0, 2.0)  # l=2
        assert model.put_cost(IndexKind.LAZY) == (0.0, 2.0)
        assert model.put_cost(IndexKind.COMPOSITE) == (0.0, 2.0)
        assert model.put_cost(IndexKind.EMBEDDED) == (0.0, 0.0)

    def test_get_uniform(self, model):
        for kind in IndexKind:
            assert model.get_cost(kind) == 1.0


class TestLookupCosts:
    def test_eager_single_index_read(self, model):
        assert model.lookup_cost(IndexKind.EAGER, k_matched=10) == 11.0

    def test_lazy_composite_pay_levels(self, model):
        assert model.lookup_cost(IndexKind.LAZY, k_matched=10) == 14.0
        assert model.lookup_cost(IndexKind.COMPOSITE, k_matched=10) == 14.0

    def test_embedded_false_positive_term(self, model):
        cost = model.lookup_cost(IndexKind.EMBEDDED, k_matched=10)
        fp = model.false_positive_rate
        geometric = (10 ** 5 - 1) / 9
        assert cost == pytest.approx(10 + fp * 100 * geometric)

    def test_embedded_fp_rate_is_equation_1(self, model):
        assert model.false_positive_rate == \
            pytest.approx(2 ** (-100 * math.log(2)))

    def test_noindex_lookup_unbounded(self, model):
        assert model.lookup_cost(IndexKind.NOINDEX, 10) == float("inf")


class TestRangeLookupCosts:
    def test_embedded_time_correlated(self, model):
        assert model.range_lookup_cost(
            IndexKind.EMBEDDED, k_matched=10, range_blocks=50,
            time_correlated=True) == 10.0

    def test_embedded_non_time_correlated_is_full_scan(self, model):
        assert model.range_lookup_cost(
            IndexKind.EMBEDDED, 10, 50, time_correlated=False) \
            == float("inf")

    def test_standalone_pays_m_blocks(self, model):
        for kind in (IndexKind.EAGER, IndexKind.LAZY, IndexKind.COMPOSITE):
            assert model.range_lookup_cost(kind, 10, 50) == 60.0


class TestWorkloadRanking:
    def test_write_heavy_favours_embedded(self, model):
        costs = {kind: model.workload_cost(kind, 0.80, 0.15, 0.05)
                 for kind in (IndexKind.EMBEDDED, IndexKind.EAGER,
                              IndexKind.LAZY)}
        assert costs[IndexKind.EMBEDDED] < costs[IndexKind.LAZY]
        assert costs[IndexKind.LAZY] < costs[IndexKind.EAGER]

    def test_eager_worst_for_writes(self, model):
        for mix in [(0.8, 0.15, 0.05), (0.4, 0.55, 0.05)]:
            eager = model.workload_cost(IndexKind.EAGER, *mix)
            lazy = model.workload_cost(IndexKind.LAZY, *mix)
            assert eager > lazy
