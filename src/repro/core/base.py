"""Common types for all secondary-index implementations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.core.records import Document


class IndexKind(Enum):
    """The paper's taxonomy of secondary-index techniques (Table 2)."""

    EMBEDDED = "embedded"
    EAGER = "eager"
    LAZY = "lazy"
    COMPOSITE = "composite"
    NOINDEX = "noindex"


@dataclass(frozen=True)
class LookupResult:
    """One hit of a LOOKUP/RANGELOOKUP: the live record and its recency.

    ``seq`` is the data-table sequence number of the record's current
    version — the "insertion time in the database" that top-K ranks by
    (Table 1: "Retrieve the K most recent entries").
    """

    key: str
    document: Document
    seq: int

    @property
    def value(self) -> Document:
        """Alias kept for symmetry with the paper's (k, v) notation."""
        return self.document


class SecondaryIndex(ABC):
    """One secondary index over one attribute of the primary table.

    The :class:`~repro.core.database.SecondaryIndexedDB` facade drives the
    write hooks (keeping index and data table consistent, Section 1's
    "consistency management") and delegates queries.  ``k=None`` means the
    paper's "no limit on top-k": return every match, newest first.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    kind: IndexKind

    # -- write path -------------------------------------------------------------

    @abstractmethod
    def on_put(self, key: bytes, document: Document, seq: int) -> None:
        """Maintain the index for ``PUT(key, document)`` at sequence ``seq``."""

    @abstractmethod
    def on_delete(self, key: bytes, old_document: Document | None,
                  seq: int) -> None:
        """Maintain the index for ``DEL(key)``.

        ``old_document`` is the record being deleted (``None`` if the key
        was absent); stand-alone indexes need it to target the posting list
        of the old attribute value.
        """

    # -- query path -------------------------------------------------------------

    @abstractmethod
    def lookup(self, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        """LOOKUP(A, a, K): the K most recent live records with val(A) = a.

        ``early_termination`` enables the paper's stop-after-a-level rule
        for the techniques that support it (Embedded, Lazy); the Eager and
        Composite techniques are unaffected (Eager reads a single list;
        Composite must traverse every level regardless, Section 4.2).
        """

    @abstractmethod
    def range_lookup(self, low: Any, high: Any, k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        """RANGELOOKUP(A, a, b, K): K most recent with a <= val(A) <= b.

        ``early_termination`` enables the paper's stop-at-end-of-level rule
        where the technique supports it; passing ``False`` forces an
        exhaustive scan (exact top-K even under pathological compaction
        timing).
        """

    # -- maintenance ------------------------------------------------------------

    def flush(self) -> None:
        """Flush any index-table MemTable (no-op for embedded indexes)."""

    def compact(self) -> None:
        """Force full compaction of the index table (no-op for embedded)."""

    def size_bytes(self) -> int:
        """Extra storage attributable to this index (0 for embedded; the
        embedded structures live inside the primary table's files)."""
        return 0

    def close(self) -> None:
        """Release resources (index-table handles)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(attribute={self.attribute!r})"
