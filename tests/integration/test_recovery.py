"""Facade-level durability: reopening a database with all its indexes."""

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS

STANDALONE = [IndexKind.EAGER, IndexKind.LAZY, IndexKind.COMPOSITE]


def _options():
    return Options(block_size=1024, sstable_target_size=4 * 1024,
                   memtable_budget=4 * 1024, l1_target_size=16 * 1024)


def _reopenable(kind):
    """Build a facade on one shared VFS so it can be reopened."""
    vfs = MemoryVFS()
    db = SecondaryIndexedDB.open(vfs, "data", {"UserID": kind}, _options())
    return vfs, db


@pytest.mark.parametrize("kind", [IndexKind.EMBEDDED, *STANDALONE],
                         ids=lambda k: k.value)
class TestReopen:
    def test_reopen_preserves_data_and_index(self, kind):
        vfs, db = _reopenable(kind)
        for i in range(300):
            db.put(f"t{i:05d}", {"UserID": f"u{i % 5}"})
        db.close()
        db2 = SecondaryIndexedDB.open(vfs, "data", {"UserID": kind},
                                      _options())
        assert db2.get("t00042") == {"UserID": "u2"}
        got = [r.key for r in db2.lookup("UserID", "u3",
                                         early_termination=False)]
        assert got == [f"t{i:05d}" for i in range(299, -1, -1) if i % 5 == 3]
        db2.close()

    def test_reopen_with_unflushed_memtable(self, kind):
        """WAL recovery must also restore query-side state (notably the
        Embedded index's MemTable B-tree)."""
        vfs, db = _reopenable(kind)
        db.put("t1", {"UserID": "u1"})
        db.put("t2", {"UserID": "u1"})
        db.close()  # never flushed: data lives only in the WAL
        db2 = SecondaryIndexedDB.open(vfs, "data", {"UserID": kind},
                                      _options())
        assert [r.key for r in db2.lookup("UserID", "u1")] == ["t2", "t1"]
        db2.put("t3", {"UserID": "u1"})
        assert [r.key for r in db2.lookup("UserID", "u1")] == \
            ["t3", "t2", "t1"]
        db2.close()

    def test_deletes_survive_reopen(self, kind):
        vfs, db = _reopenable(kind)
        db.put("t1", {"UserID": "u1"})
        db.put("t2", {"UserID": "u1"})
        db.delete("t1")
        db.close()
        db2 = SecondaryIndexedDB.open(vfs, "data", {"UserID": kind},
                                      _options())
        assert db2.get("t1") is None
        assert [r.key for r in db2.lookup("UserID", "u1")] == ["t2"]
        db2.close()
