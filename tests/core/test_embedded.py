"""Embedded Index: per-block filters, zone maps, GetLite validity."""

import pytest

from conftest import load_tweets, open_db

from repro.core.base import IndexKind
from repro.core.embedded import EmbeddedIndex
from repro.core.validity import ValidityChecker
from repro.lsm.db import DB
from repro.lsm.options import Options


class TestConstruction:
    def test_requires_indexed_attribute_in_options(self):
        primary = DB.open_memory(Options())  # no indexed_attributes
        with pytest.raises(ValueError):
            EmbeddedIndex("UserID", primary, ValidityChecker(primary))
        primary.close()

    def test_no_extra_storage(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options)
        load_tweets(db, 100)
        assert db.indexes["UserID"].size_bytes() == 0
        db.close()


class TestMemTableComponent:
    def test_lookup_finds_unflushed_data(self, index_options):
        options = index_options
        options.memtable_budget = 10**6  # keep everything in memory
        db = open_db(IndexKind.EMBEDDED, options)
        load_tweets(db, 50, users=5)
        assert db.primary.memtable.approximate_memory_usage > 0
        results = db.lookup("UserID", "u2")
        assert [r.key for r in results] == [
            f"t{i:05d}" for i in range(49, -1, -1) if i % 5 == 2]
        db.close()

    def test_memtable_update_supersedes(self, index_options):
        options = index_options
        options.memtable_budget = 10**6
        db = open_db(IndexKind.EMBEDDED, options)
        db.put("t1", {"UserID": "u1"})
        db.put("t1", {"UserID": "u2"})
        assert db.lookup("UserID", "u1") == []
        assert [r.key for r in db.lookup("UserID", "u2")] == ["t1"]
        db.close()

    def test_memtable_delete_supersedes(self, index_options):
        options = index_options
        options.memtable_budget = 10**6
        db = open_db(IndexKind.EMBEDDED, options)
        db.put("t1", {"UserID": "u1"})
        db.delete("t1")
        assert db.lookup("UserID", "u1") == []
        db.close()

    def test_flush_expires_memview(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options)
        load_tweets(db, 50)
        db.flush()
        index = db.indexes["UserID"]
        assert len(index.memview) == 0
        # Data still findable through the SSTable filters.
        assert len(db.lookup("UserID", "u1")) == 5
        db.close()


class TestDiskComponent:
    def test_lookup_across_levels(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options)
        load_tweets(db, 500, users=10)
        assert db.primary.num_nonempty_levels() >= 2
        results = db.lookup("UserID", "u7", early_termination=False)
        assert [r.key for r in results] == [
            f"t{i:05d}" for i in range(499, -1, -1) if i % 10 == 7]
        db.close()

    def test_bloom_pruning_limits_block_reads(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options)
        load_tweets(db, 400, users=100)
        db.flush()
        index = db.indexes["UserID"]
        index.blocks_read = 0
        db.lookup("UserID", "u00000-not-there", early_termination=False)
        assert index.blocks_read == 0  # blooms prune every block
        db.close()

    def test_update_filtered_by_getlite(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options)
        db.put("t1", {"UserID": "u1"})
        db.flush()
        db.put("t1", {"UserID": "u2"})  # newer version in the memtable
        results = db.lookup("UserID", "u1", early_termination=False)
        assert results == []
        db.close()

    def test_update_across_disk_levels(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options)
        db.put("t1", {"UserID": "u1"})
        load_tweets(db, 300, start=100)  # push t1's version deep
        db.put("t1", {"UserID": "u2"})
        db.flush()
        results = db.lookup("UserID", "u1", early_termination=False)
        assert "t1" not in [r.key for r in results]
        db.close()

    def test_getlite_mostly_memory_resident(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options)
        load_tweets(db, 400, users=8)
        db.flush()
        db.lookup("UserID", "u3", early_termination=False)
        stats = db.indexes["UserID"].probe_stats()
        assert stats["getlite_memory_only"] > 0
        # Confirm reads happen only on bloom false positives: rare.
        assert stats["getlite_confirm_reads"] <= \
            stats["getlite_memory_only"] // 5 + 2
        db.close()


class TestZoneMaps:
    def test_file_level_pruning_on_time_correlated_attribute(
            self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options,
                     attributes=("CreationTime",))
        load_tweets(db, 500)
        db.flush()
        index = db.indexes["CreationTime"]
        index.files_pruned = 0
        index.blocks_read = 0
        db.range_lookup("CreationTime", 1000, 1004, early_termination=False)
        assert index.files_pruned > 0
        total_blocks = sum(
            db.primary.table_cache.get(meta.file_number).num_data_blocks
            for _lvl, meta in db.primary.versions.current.all_files())
        assert index.blocks_read < total_blocks / 2
        db.close()

    def test_range_lookup_time_correlated_exact(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options,
                     attributes=("CreationTime",))
        load_tweets(db, 300)
        results = db.range_lookup("CreationTime", 1050, 1059,
                                  early_termination=False)
        assert sorted(r.key for r in results) == \
            [f"t{i:05d}" for i in range(50, 60)]
        db.close()

    def test_range_lookup_non_time_correlated_reads_everything(
            self, index_options):
        """Zone maps are useless on a shuffled attribute: "almost perform
        same as no index"."""
        db = open_db(IndexKind.EMBEDDED, index_options)
        load_tweets(db, 300, users=150)
        db.flush()
        index = db.indexes["UserID"]
        index.blocks_read = 0
        results = db.range_lookup("UserID", "u0", "u9999",
                                  early_termination=False)
        assert len(results) == 300  # everything matches
        assert index.blocks_read > 0
        db.close()

    def test_range_with_top_k(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options,
                     attributes=("CreationTime",))
        load_tweets(db, 200)
        results = db.range_lookup("CreationTime", 1000, 1100, k=5,
                                  early_termination=False)
        assert [r.key for r in results] == [
            "t00100", "t00099", "t00098", "t00097", "t00096"]
        db.close()
