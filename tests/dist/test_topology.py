"""Unit tests for the durable CLUSTER manifest (repro.dist.topology)."""

import pytest

from repro.dist.topology import (
    CLUSTER_FILE,
    CLUSTER_TMP_FILE,
    ClusterManifest,
    load_cluster_manifest,
)
from repro.lsm.errors import CorruptionError
from repro.lsm.vfs import Category, MemoryVFS


def _full_manifest():
    return ClusterManifest(
        base_shards=4,
        replication_factor=3,
        epoch=9,
        splits=((0, 4), (2, 5)),
        in_flight=(1, 6),
        pending_cleanup=True,
        local_indexes={"UserID": "lazy", "Score": "eager"},
        global_indexes={
            "UserID": {"scheme": "hash", "shards": 2},
            "Score": {"scheme": "range",
                      "split_points": [b"m".hex(), b"t".hex()]},
        })


class TestEncoding:
    def test_round_trip_all_fields(self):
        manifest = _full_manifest()
        decoded = ClusterManifest.decode(manifest.encode())
        assert decoded == manifest

    def test_round_trip_defaults(self):
        manifest = ClusterManifest(base_shards=2)
        decoded = ClusterManifest.decode(manifest.encode())
        assert decoded == manifest
        assert decoded.splits == ()
        assert decoded.in_flight is None
        assert decoded.pending_cleanup is False

    def test_num_shards_counts_committed_splits_only(self):
        manifest = _full_manifest()
        assert manifest.num_shards == 4 + 2  # in_flight does not count

    def test_evolve_bumps_epoch_and_applies_changes(self):
        manifest = ClusterManifest(base_shards=2)
        evolved = manifest.evolve(splits=((0, 2),), pending_cleanup=True)
        assert evolved.epoch == manifest.epoch + 1
        assert evolved.splits == ((0, 2),)
        assert evolved.pending_cleanup is True
        # The original is untouched (frozen dataclass).
        assert manifest.splits == ()

    def test_encoding_is_deterministic(self):
        assert _full_manifest().encode() == _full_manifest().encode()


class TestCorruptionDetection:
    def test_flipped_payload_byte_fails_crc(self):
        data = bytearray(_full_manifest().encode())
        data[-3] ^= 0x40
        with pytest.raises(CorruptionError, match="CRC mismatch"):
            ClusterManifest.decode(bytes(data))

    def test_missing_header(self):
        with pytest.raises(CorruptionError, match="CRC header"):
            ClusterManifest.decode(b'{"magic":"repro-cluster-v1"}')

    def test_malformed_crc_value(self):
        with pytest.raises(CorruptionError, match="malformed"):
            ClusterManifest.decode(b"crc32:zzzzzzzz\n{}")

    def test_wrong_magic(self):
        import json
        import zlib
        payload = json.dumps({"magic": "not-a-cluster"}).encode()
        data = b"crc32:%08x\n" % zlib.crc32(payload) + payload
        with pytest.raises(CorruptionError, match="magic"):
            ClusterManifest.decode(data)

    def test_valid_crc_but_missing_field(self):
        import json
        import zlib
        payload = json.dumps({"magic": "repro-cluster-v1",
                              "epoch": 1}).encode()
        data = b"crc32:%08x\n" % zlib.crc32(payload) + payload
        with pytest.raises(CorruptionError, match="field error"):
            ClusterManifest.decode(data)

    def test_not_json(self):
        import zlib
        payload = b"\x00\x01\x02"
        data = b"crc32:%08x\n" % zlib.crc32(payload) + payload
        with pytest.raises(CorruptionError, match="not valid JSON"):
            ClusterManifest.decode(data)


class TestDurableInstallation:
    def test_save_then_load(self):
        vfs = MemoryVFS()
        manifest = _full_manifest()
        manifest.save(vfs)
        assert load_cluster_manifest(vfs) == manifest
        # Nothing but the manifest itself is left behind.
        assert vfs.exists(CLUSTER_FILE)
        assert not vfs.exists(CLUSTER_TMP_FILE)

    def test_load_fresh_vfs_returns_none(self):
        assert load_cluster_manifest(MemoryVFS()) is None

    def test_save_overwrites_previous_generation(self):
        vfs = MemoryVFS()
        first = ClusterManifest(base_shards=2)
        first.save(vfs)
        second = first.evolve(splits=((0, 2),))
        second.save(vfs)
        assert load_cluster_manifest(vfs) == second

    def test_stranded_tmp_is_ignored_and_deleted(self):
        vfs = MemoryVFS()
        installed = ClusterManifest(base_shards=2)
        installed.save(vfs)
        # A crash between sync and rename leaves CLUSTER.tmp behind;
        # its content was never installed, so load must ignore it.
        stranded = vfs.create(CLUSTER_TMP_FILE)
        stranded.append(installed.evolve(splits=((0, 2),)).encode(),
                        Category.MANIFEST)
        stranded.close()
        assert load_cluster_manifest(vfs) == installed
        assert not vfs.exists(CLUSTER_TMP_FILE)

    def test_stranded_tmp_alone_means_fresh_cluster(self):
        vfs = MemoryVFS()
        stranded = vfs.create(CLUSTER_TMP_FILE)
        stranded.append(b"torn garbage", Category.MANIFEST)
        stranded.close()
        assert load_cluster_manifest(vfs) is None
        assert not vfs.exists(CLUSTER_TMP_FILE)
