"""The maintenance CLI (python -m repro)."""

import io

import pytest

from repro.lsm.db import DB
from repro.lsm.manifest import table_file_name
from repro.lsm.options import Options
from repro.lsm.vfs import LocalVFS
from repro.tools import main


@pytest.fixture
def populated_dir(tmp_path):
    directory = str(tmp_path)
    options = Options(block_size=1024, sstable_target_size=4 * 1024,
                      memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    db = DB.open(LocalVFS(directory), "db", options)
    for i in range(300):
        db.put(f"k{i:04d}".encode(), f"value-{i}".encode())
    db.flush()
    db.close()
    return directory


class TestStats:
    def test_reports_shape(self, populated_dir):
        out = io.StringIO()
        status = main(["stats", populated_dir, "db"], out)
        text = out.getvalue()
        assert status == 0
        assert "last sequence:   300" in text
        assert "L0:" in text or "L1:" in text
        assert "total size:" in text
        assert "pipeline:" in text
        assert "background:      off" in text
        assert "imm pending:     0" in text
        assert "queue depth:" in text
        assert "stalls:          0 events" in text


class TestDump:
    def test_dumps_in_key_order(self, populated_dir):
        out = io.StringIO()
        status = main(["dump", populated_dir, "db", "--limit", "5"], out)
        text = out.getvalue()
        assert status == 0
        assert "b'k0000'" in text
        assert "stopped at --limit 5" in text

    def test_full_dump_counts_entries(self, populated_dir):
        out = io.StringIO()
        main(["dump", populated_dir, "db"], out)
        assert "300 entries" in out.getvalue()


class TestVerify:
    def test_clean_database(self, populated_dir):
        out = io.StringIO()
        status = main(["verify", populated_dir, "db"], out)
        assert status == 0
        assert "OK" in out.getvalue()

    def test_corrupted_database(self, populated_dir):
        vfs = LocalVFS(populated_dir)
        corrupted = None
        for name in vfs.list_dir("db/"):
            if name.endswith(".ldb"):
                corrupted = name
                break
        assert corrupted is not None
        import os

        path = os.path.join(populated_dir, corrupted)
        with open(path, "r+b") as handle:
            handle.seek(40)
            byte = handle.read(1)
            handle.seek(40)
            handle.write(bytes([byte[0] ^ 0xFF]))
        out = io.StringIO()
        status = main(["verify", populated_dir, "db"], out)
        assert status == 1
        assert "PROBLEM" in out.getvalue()


class TestArgumentParsing:
    def test_missing_command(self, populated_dir):
        with pytest.raises(SystemExit):
            main([], io.StringIO())

    def test_profile_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["profile", "nosuch"], io.StringIO())


class TestProfile:
    def test_profile_put_prints_report(self):
        out = io.StringIO()
        status = main(["profile", "put", "--ops", "50", "--top", "5"], out)
        assert status == 0
        report = out.getvalue()
        assert "function calls" in report
        assert "cumulative" in report

    def test_profile_get_hits_engine_internals(self):
        out = io.StringIO()
        status = main(["profile", "get", "--ops", "40", "--top", "40"], out)
        assert status == 0
        assert "get_with_seq" in out.getvalue()
