"""The DB facade: basic operations, scans, probes, recovery, snapshots."""

import json

import pytest

from repro.lsm.db import DB, WriteBatch
from repro.lsm.errors import DBClosedError, InvalidArgumentError
from repro.lsm.keys import KIND_MERGE, KIND_VALUE
from repro.lsm.options import Options
from repro.lsm.vfs import LocalVFS, MemoryVFS


def _options(**overrides):
    base = dict(block_size=1024, sstable_target_size=4 * 1024,
                memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    base.update(overrides)
    trigger = base.get("l0_compaction_trigger", 4)
    base.setdefault("l0_stop_writes_trigger", max(12, trigger * 3))
    return Options(**base)


class TestBasicOps:
    def test_put_get(self):
        db = DB.open_memory(_options())
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"
        db.close()

    def test_get_missing(self):
        db = DB.open_memory(_options())
        assert db.get(b"missing") is None
        db.close()

    def test_overwrite(self):
        db = DB.open_memory(_options())
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"
        db.close()

    def test_delete(self):
        db = DB.open_memory(_options())
        db.put(b"k", b"v")
        db.delete(b"k")
        assert db.get(b"k") is None
        db.close()

    def test_delete_missing_is_fine(self):
        db = DB.open_memory(_options())
        db.delete(b"never-there")
        assert db.get(b"never-there") is None
        db.close()

    def test_get_with_seq(self):
        db = DB.open_memory(_options())
        db.put(b"a", b"1")
        db.put(b"k", b"v")
        value, seq = db.get_with_seq(b"k")
        assert value == b"v"
        assert seq == db.versions.last_sequence

    def test_values_survive_flush(self):
        db = DB.open_memory(_options())
        db.put(b"k", b"v")
        db.flush()
        assert db.get(b"k") == b"v"
        assert db.memtable.is_empty()
        db.close()

    def test_empty_value(self):
        db = DB.open_memory(_options())
        db.put(b"k", b"")
        assert db.get(b"k") == b""
        db.flush()
        assert db.get(b"k") == b""

    def test_closed_db_rejects_operations(self):
        db = DB.open_memory(_options())
        db.close()
        with pytest.raises(DBClosedError):
            db.put(b"k", b"v")
        with pytest.raises(DBClosedError):
            db.get(b"k")
        db.close()  # idempotent

    def test_context_manager(self):
        with DB.open_memory(_options()) as db:
            db.put(b"k", b"v")
        with pytest.raises(DBClosedError):
            db.get(b"k")

    def test_merge_requires_operator(self):
        db = DB.open_memory(_options())
        with pytest.raises(InvalidArgumentError):
            db.merge(b"k", b"operand")
        db.close()


class TestWriteBatch:
    def test_atomic_batch(self):
        db = DB.open_memory(_options())
        batch = WriteBatch().put(b"a", b"1").put(b"b", b"2").delete(b"a")
        db.write(batch)
        assert db.get(b"a") is None
        assert db.get(b"b") == b"2"
        db.close()

    def test_batch_sequence_numbers_consecutive(self):
        db = DB.open_memory(_options())
        before = db.versions.last_sequence
        last = db.write(WriteBatch().put(b"a", b"1").put(b"b", b"2"))
        assert last == before + 2

    def test_empty_batch(self):
        db = DB.open_memory(_options())
        before = db.versions.last_sequence
        assert db.write(WriteBatch()) == before

    def test_encode_decode_roundtrip(self):
        batch = WriteBatch().put(b"k", b"v").delete(b"d").merge(b"m", b"o")
        decoded, seq = WriteBatch.decode(batch.encode(41))
        assert seq == 41
        assert decoded.ops == batch.ops


class TestScans:
    def _loaded(self):
        db = DB.open_memory(_options())
        for i in range(500):
            db.put(f"k{i:04d}".encode(), str(i).encode())
        for i in range(0, 500, 5):
            db.delete(f"k{i:04d}".encode())
        return db

    def test_full_scan_matches_oracle(self):
        db = self._loaded()
        got = dict(db.scan())
        want = {f"k{i:04d}".encode(): str(i).encode()
                for i in range(500) if i % 5 != 0}
        assert got == want
        db.close()

    def test_bounded_scan(self):
        db = self._loaded()
        got = [k for k, _v in db.scan(b"k0100", b"k0110")]
        want = [f"k{i:04d}".encode() for i in range(100, 111) if i % 5 != 0]
        assert got == want
        db.close()

    def test_scan_is_sorted(self):
        db = self._loaded()
        keys = [k for k, _v in db.scan()]
        assert keys == sorted(keys)
        db.close()

    def test_scan_with_seq_reports_write_order(self):
        db = DB.open_memory(_options())
        db.put(b"b", b"2")
        db.put(b"a", b"1")
        rows = list(db.scan_with_seq())
        assert rows[0][0] == b"a" and rows[1][0] == b"b"
        assert rows[0][2] > rows[1][2]  # "a" was written later
        db.close()

    def test_scan_level_raw_versions(self):
        db = DB.open_memory(_options(memtable_budget=100 * 1024))
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        entries = list(db.scan_level(-1))
        assert [(ik.user_key, v) for ik, v in entries] == \
            [(b"k", b"v2"), (b"k", b"v1")]
        db.close()


class TestProbes:
    def test_fragments_by_level(self):
        db = DB.open_memory(_options(l0_compaction_trigger=100))
        db.put(b"k", b"deep")
        for i in range(400):
            db.put(f"fill{i:05d}".encode(), b"x" * 60)
        db.flush()
        db.put(b"k", b"shallow")
        frags = db.fragments_by_level(b"k")
        levels = [level for level, _entries in frags]
        assert levels[0] == -1  # memtable first
        values = [entries[0][2] for _level, entries in frags]
        assert values[0] == b"shallow"
        assert b"deep" in values
        db.close()

    def test_key_maybe_in_levels_memtable(self):
        db = DB.open_memory(_options())
        db.put(b"k", b"v")
        assert db.key_maybe_in_levels(b"k", 0)
        assert not db.key_maybe_in_levels(b"nope", 5)
        db.close()

    def test_key_maybe_in_levels_is_free_once_metadata_loaded(self):
        db = DB.open_memory(_options())
        for i in range(800):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        db.flush()
        # First pass warms the table cache (footer/index/filter blocks are
        # read once per file and then stay memory-resident, as in the paper).
        for i in range(0, 800, 7):
            db.key_maybe_in_levels(f"k{i:05d}".encode(), 7)
        before = db.vfs.stats.read_blocks
        for i in range(0, 800, 7):
            db.key_maybe_in_levels(f"k{i:05d}".encode(), 7)
        assert db.vfs.stats.read_blocks == before
        db.close()


class TestRecovery:
    def test_reopen_from_memtable_only(self):
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options())
        db.put(b"k", b"v")  # never flushed
        db.close()
        db2 = DB.open(vfs, "db", _options())
        assert db2.get(b"k") == b"v"
        db2.close()

    def test_reopen_after_flush_and_compaction(self):
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options())
        for i in range(1000):
            db.put(f"k{i:05d}".encode(), str(i).encode())
        db.close()
        db2 = DB.open(vfs, "db", _options())
        assert len(dict(db2.scan())) == 1000
        assert db2.get(b"k00123") == b"123"
        db2.close()

    def test_sequence_numbers_continue_after_reopen(self):
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options())
        db.put(b"a", b"1")
        last = db.versions.last_sequence
        db.close()
        db2 = DB.open(vfs, "db", _options())
        db2.put(b"b", b"2")
        assert db2.versions.last_sequence > last
        db2.close()

    def test_deletions_survive_reopen(self):
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options())
        db.put(b"k", b"v")
        db.flush()
        db.delete(b"k")
        db.close()
        db2 = DB.open(vfs, "db", _options())
        assert db2.get(b"k") is None
        db2.close()

    def test_obsolete_files_removed_on_open(self):
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options())
        for i in range(800):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        db.close()
        vfs.write_whole("db/999999.ldb", b"orphan")
        db2 = DB.open(vfs, "db", _options())
        assert not vfs.exists("db/999999.ldb")
        db2.close()

    def test_crash_without_close_preserves_flushed_data(self, tmp_path):
        """Simulated crash: handles never closed, nothing flushed from the
        Python buffers except what the engine fsyncs itself.  The manifest
        must be durable on its own, or recovery garbage-collects live
        tables (regression test for exactly that bug)."""
        vfs = LocalVFS(str(tmp_path))
        db = DB.open(vfs, "db", _options(sync_writes=True))
        for i in range(600):
            db.put(f"k{i:05d}".encode(), str(i).encode())
        db.flush()
        db.put(b"wal-only", b"tail")
        # No close(): a second handle opens the same directory while the
        # first still holds its buffered file objects.
        db2 = DB.open(LocalVFS(str(tmp_path)), "db",
                      _options(sync_writes=True))
        assert db2.get(b"k00042") == b"42"
        assert db2.get(b"wal-only") == b"tail"
        assert len(dict(db2.scan())) == 601
        db2.close()

    def test_local_vfs_roundtrip(self, tmp_path):
        vfs = LocalVFS(str(tmp_path))
        db = DB.open(vfs, "db", _options())
        for i in range(300):
            db.put(f"k{i:04d}".encode(), str(i).encode())
        db.close()
        vfs2 = LocalVFS(str(tmp_path))
        db2 = DB.open(vfs2, "db", _options())
        assert db2.get(b"k0042") == b"42"
        assert len(dict(db2.scan())) == 300
        db2.close()


class TestSnapshots:
    def test_snapshot_isolation(self):
        db = DB.open_memory(_options())
        db.put(b"k", b"v1")
        with db.snapshot() as snap:
            db.put(b"k", b"v2")
            db.delete(b"k")
            assert db.get(b"k") is None
            assert db.get(b"k", snap) == b"v1"
        db.close()

    def test_snapshot_scan(self):
        db = DB.open_memory(_options())
        db.put(b"a", b"1")
        snap = db.snapshot()
        db.put(b"b", b"2")
        assert dict(db.scan(snapshot=snap)) == {b"a": b"1"}
        assert dict(db.scan()) == {b"a": b"1", b"b": b"2"}
        snap.release()
        db.close()

    def test_oldest_snapshot_tracking(self):
        db = DB.open_memory(_options())
        db.put(b"a", b"1")
        s1 = db.snapshot()
        db.put(b"b", b"2")
        s2 = db.snapshot()
        assert db._oldest_snapshot_seq() == s1.seq
        s1.release()
        assert db._oldest_snapshot_seq() == s2.seq
        s2.release()
        db.close()


class TestMergeOperator:
    @staticmethod
    def _union(key, operands):
        merged = []
        for operand in operands:
            merged.extend(json.loads(operand))
        return json.dumps(merged).encode()

    def test_merge_visible_through_get_and_scan(self):
        db = DB.open_memory(_options(merge_operator=TestMergeOperator._union))
        db.merge(b"k", b"[1]")
        db.merge(b"k", b"[2]")
        assert json.loads(db.get(b"k")) == [1, 2]
        assert json.loads(dict(db.scan())[b"k"]) == [1, 2]
        db.close()

    def test_merge_onto_value_base(self):
        db = DB.open_memory(_options(merge_operator=TestMergeOperator._union))
        db.put(b"k", b"[0]")
        db.merge(b"k", b"[1]")
        assert json.loads(db.get(b"k")) == [0, 1]
        db.close()

    def test_merge_after_delete_restarts(self):
        db = DB.open_memory(_options(merge_operator=TestMergeOperator._union))
        db.put(b"k", b"[0]")
        db.delete(b"k")
        db.merge(b"k", b"[7]")
        assert json.loads(db.get(b"k")) == [7]
        db.close()

    def test_fragments_report_merge_kind(self):
        db = DB.open_memory(_options(merge_operator=TestMergeOperator._union,
                                     memtable_budget=64 * 1024))
        db.merge(b"k", b"[1]")
        frags = db.fragments_by_level(b"k")
        assert frags[0][1][0][0] == KIND_MERGE
        db.close()


class TestIntrospection:
    def test_approximate_size_grows(self):
        db = DB.open_memory(_options())
        initial = db.approximate_size()
        for i in range(500):
            db.put(f"k{i:05d}".encode(), b"x" * 100)
        db.flush()
        assert db.approximate_size() > initial
        db.close()

    def test_num_nonempty_levels(self):
        db = DB.open_memory(_options())
        assert db.num_nonempty_levels() == 0
        db.put(b"k", b"v")
        assert db.num_nonempty_levels() == 1  # memtable counts
        db.flush()
        assert db.num_nonempty_levels() == 1  # now one disk level
        db.close()

    def test_stats_snapshot(self):
        db = DB.open_memory(_options())
        for i in range(300):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        db.flush()
        for i in range(0, 300, 5):
            db.get(f"k{i:05d}".encode())
        stats = db.stats()
        assert stats["last_sequence"] == 300
        assert stats["memtable_entries"] == 0  # just flushed
        assert len(stats["levels"]) == db.options.max_levels
        assert sum(stats["levels"]) >= 1
        assert stats["compaction"]["flush_count"] >= 1
        assert stats["table_cache"]["open_tables"] >= 1
        assert stats["table_cache"]["hits"] > 0
        assert stats["block_cache"] is None  # off by default
        assert stats["io"]["read_blocks"] > 0
        assert stats["io"]["write_blocks"] > 0
        json.dumps(stats)  # the whole report is JSON-serializable
        db.close()

    def test_stats_reports_block_cache(self):
        db = DB.open_memory(_options(block_cache_size=32 * 1024))
        for i in range(100):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        db.flush()
        db.get(b"k00050")
        db.get(b"k00050")
        cache_stats = db.stats()["block_cache"]
        assert cache_stats is not None
        assert cache_stats["capacity_bytes"] == 32 * 1024
        assert cache_stats["hits"] >= 1
        db.close()

    def test_pipeline_gauges_inline_mode(self):
        db = DB.open_memory(_options())
        for i in range(100):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        db.flush()
        pipe = db.stats()["pipeline"]
        assert pipe["background"] is False
        assert pipe["imm_pending"] == 0  # inline flush never leaves one
        assert pipe["compaction_queue_depth"] >= 0
        # The writer queue, group commit and stall ladder only engage in
        # pipeline mode; inline writes leave every counter at zero.
        assert pipe["stall_events"] == 0
        assert pipe["slowdown_events"] == 0
        assert pipe["write_groups"] == 0
        assert pipe["group_commit_batches"] == 0
        assert pipe["max_group_batches"] == 0
        assert pipe["bg_flushes"] == 0
        assert pipe["bg_error"] is None
        json.dumps(pipe)
        db.close()

    def test_pipeline_gauges_background_mode(self):
        db = DB.open_memory(_options(background_compaction=True))
        for i in range(300):
            db.put(f"k{i:05d}".encode(), b"x" * 60)
        db.flush()
        pipe = db.stats()["pipeline"]
        assert pipe["background"] is True
        assert pipe["imm_pending"] == 0  # flush() drains the handoff
        assert pipe["bg_flushes"] >= 1
        assert pipe["group_commit_ops"] == 300
        assert pipe["mean_group_batches"] >= 1.0
        assert pipe["stall_seconds"] >= 0.0
        assert pipe["bg_error"] is None
        json.dumps(pipe)
        db.close()
