"""The Stand-Alone Composite Index (paper Section 4.2).

AsterixDB/Spanner's strategy: "the composite key is the concatenation of
the secondary and the primary keys, and the value is set to null."  Every
index maintenance operation is a plain key write — no posting lists, no
read-modify-write, no merge operator — so the index table compacts exactly
like a primary table (the same ``22(L-1)`` write amplification as Lazy,
without Lazy's JSON CPU overhead).

LOOKUP is a prefix range scan over the composite keys.  "Unlike in Lazy
Index, LOOKUP needs to traverse all levels to find top-k entries": because
compaction picks files round-robin by key range, composite keys of one
attribute value are *not* time-ordered across levels, so no early
termination is possible — the reason Lazy wins at small K and Composite
wins as K grows (Figure 10).

The composite key uses an order-preserving escape of the attribute
encoding (``0x00`` → ``0x00 0xFF``; terminator ``0x00 0x00``) so that
arbitrary attribute bytes concatenate with arbitrary primary keys without
ambiguity while preserving (attribute, key) lexicographic order.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.base import IndexKind, LookupResult, SecondaryIndex
from repro.core.records import Document, attribute_of, key_to_str
from repro.core.validity import (
    ValidityChecker,
    attribute_equals,
    attribute_in_range,
)
from repro.lsm.db import DB
from repro.lsm.errors import CorruptionError
from repro.lsm.keys import decode_varint, encode_varint
from repro.lsm.zonemap import encode_attribute

_TERMINATOR = b"\x00\x00"


def make_composite_key(encoded_attr: bytes, primary_key: bytes) -> bytes:
    """``escape(attr) || 0x00 0x00 || primary_key``, order-preserving."""
    return encoded_attr.replace(b"\x00", b"\x00\xff") + _TERMINATOR \
        + primary_key


def split_composite_key(composite: bytes) -> tuple[bytes, bytes]:
    """Inverse of :func:`make_composite_key`: ``(encoded_attr, primary_key)``."""
    index = 0
    while True:
        index = composite.find(b"\x00", index)
        if index < 0 or index + 1 >= len(composite):
            raise CorruptionError(
                f"composite key without terminator: {composite!r}")
        if composite[index + 1] == 0x00:
            break
        if composite[index + 1] != 0xFF:
            raise CorruptionError(
                f"bad escape in composite key: {composite!r}")
        index += 2
    escaped_attr = composite[:index]
    primary_key = composite[index + 2:]
    return escaped_attr.replace(b"\x00\xff", b"\x00"), primary_key


def attribute_prefix(encoded_attr: bytes) -> bytes:
    """The scan prefix shared by all composite keys of one attribute value."""
    return encoded_attr.replace(b"\x00", b"\x00\xff") + _TERMINATOR


def prefix_successor(prefix: bytes) -> bytes:
    """The smallest byte string greater than every ``prefix + suffix``.

    A prefix always ends with the ``0x00 0x00`` terminator, so bumping the
    final byte to ``0x01`` is exact: every composite key under the prefix
    shares ``prefix[:-1]`` and continues with ``0x00``.
    """
    return prefix[:-1] + b"\x01"


class CompositeIndex(SecondaryIndex):
    """(secondary + primary) composite keys in a stand-alone index table."""

    kind = IndexKind.COMPOSITE

    def __init__(self, attribute: str, index_db: DB,
                 checker: ValidityChecker) -> None:
        super().__init__(attribute)
        self.index_db = index_db
        self.checker = checker
        #: Composite entries examined by queries before validation.
        self.candidates_scanned = 0

    # -- write hooks --------------------------------------------------------------

    def on_put(self, key: bytes, document: Document, seq: int) -> None:
        attr_value = attribute_of(document, self.attribute)
        if attr_value is None:
            return
        composite = make_composite_key(encode_attribute(attr_value), key)
        self.index_db.put(composite, encode_varint(seq))

    def on_delete(self, key: bytes, old_document: Document | None,
                  seq: int) -> None:
        """DEL "inserts the composite key with a deletion marker": the
        engine's own tombstone plays that role here, and compaction removes
        the dead entry exactly as the paper describes."""
        if old_document is None:
            return
        attr_value = attribute_of(old_document, self.attribute)
        if attr_value is None:
            return
        composite = make_composite_key(encode_attribute(attr_value), key)
        self.index_db.delete(composite)

    # -- queries -------------------------------------------------------------

    def lookup(self, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        """Algorithm 4: full prefix scan, then validate candidates by recency.

        The scan must traverse every level (no early termination is
        possible), but candidates carry their write sequence, so they are
        ranked *before* validation and only the top candidates cost a
        data-table GET — a stale hit simply falls through to the next
        candidate.  A valid candidate's data-table sequence equals its
        posting sequence (a newer version would have re-written the
        composite entry), so the ranking is exact.
        """
        encoded = encode_attribute(value)
        predicate = attribute_equals(self.attribute, value)
        candidates = list(self._prefix_scan(encoded))
        self.candidates_scanned += len(candidates)
        return self._validate_newest_first(
            ((seq, pk) for pk, seq in candidates), predicate, k)

    def _validate_newest_first(self, candidates, predicate,
                               k: int | None) -> list[LookupResult]:
        ordered = sorted(candidates, reverse=True)
        results: list[LookupResult] = []
        seen: set[bytes] = set()
        for _posting_seq, primary_key in ordered:
            if k is not None and len(results) >= k:
                break
            if primary_key in seen:
                continue
            seen.add(primary_key)
            found = self.checker.fetch_valid(primary_key, predicate)
            if found is None:
                continue
            document, seq = found
            results.append(
                LookupResult(key_to_str(primary_key), document, seq))
        results.sort(key=lambda r: -r.seq)
        return results

    def _prefix_scan(self, encoded_attr: bytes
                     ) -> Iterator[tuple[bytes, int]]:
        prefix = attribute_prefix(encoded_attr)
        for composite, payload in self.index_db.scan(
                prefix, prefix_successor(prefix)):
            if not composite.startswith(prefix):
                return
            seq, _pos = decode_varint(payload, 0)
            yield composite[len(prefix):], seq

    def range_lookup(self, low: Any, high: Any, k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        """Algorithm 7: one ordered scan across the whole composite range."""
        low_encoded = encode_attribute(low)
        high_encoded = encode_attribute(high)
        if low_encoded > high_encoded:
            return []
        predicate = attribute_in_range(self.attribute, low, high,
                                       encode_attribute)
        scan_lo = attribute_prefix(low_encoded)
        # Exact upper bound: just past every composite key of the high value.
        scan_hi = prefix_successor(attribute_prefix(high_encoded))
        candidates: list[tuple[int, bytes]] = []
        for composite, payload in self.index_db.scan(scan_lo, scan_hi):
            encoded_attr, primary_key = split_composite_key(composite)
            if encoded_attr > high_encoded:
                break
            self.candidates_scanned += 1
            posting_seq, _pos = decode_varint(payload, 0)
            candidates.append((posting_seq, primary_key))
        return self._validate_newest_first(candidates, predicate, k)

    # -- maintenance ------------------------------------------------------------

    def flush(self) -> None:
        self.index_db.flush()

    def compact(self) -> None:
        self.index_db.compact_range()

    def size_bytes(self) -> int:
        return self.index_db.approximate_size()

    def close(self) -> None:
        self.index_db.close()
