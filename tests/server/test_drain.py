"""Graceful drain: ``Server.close(drain=True)`` and ``repro serve`` SIGTERM.

The drain contract (DESIGN.md §13): stop accepting, half-close every
connection for reading, let each worker finish — and answer — every
request whose last byte arrived, then tear down.  A pipelining client
caught mid-burst therefore gets a response for every request the server
fully received, every one of those acked writes is durable, and a torn
frame at the cut is discarded whole.  Either way the thread census is
exact: ``stats.leaked_threads`` stays zero (satellite b — before the
counter existed, a leaked accept thread was silently abandoned).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.vfs import LocalVFS, MemoryVFS
from repro.server import Client, Server
from repro.server.protocol import (
    ProtocolError,
    encode_frame,
    encode_value,
)


def _open_server():
    db = DB.open(MemoryVFS(), "data", Options(background_compaction=True))
    server = Server(db)
    server.start()
    return server, db


class TestDrainClose:
    def test_idle_close_leaks_nothing(self):
        server, db = _open_server()
        with Client(*server.address) as client:
            client.put(b"k", b"v")
        server.close(drain=True)
        assert server.stats.leaked_threads == 0
        db.close()

    def test_close_with_blocked_accept_leaks_nothing(self):
        # The regression satellite b exists for: a server that never
        # accepted anything has its accept thread parked in accept();
        # close() must wake it (shutdown before close), and the leak
        # counter must prove it did.
        server, db = _open_server()
        server.close()
        assert server.stats.leaked_threads == 0
        db.close()

    @pytest.mark.parametrize("drain", [True, False], ids=["drain", "hard"])
    def test_repeated_close_is_idempotent(self, drain):
        server, db = _open_server()
        server.close(drain=drain)
        server.close(drain=drain)
        assert server.stats.leaked_threads == 0
        db.close()

    def test_drain_answers_every_fully_received_request(self):
        """Drain fires while a pipelined burst is in flight: every
        request the server fully received is executed, acked, and
        durable; the client sees either an ack or a clean cut — never a
        lost ack, never a half-applied batch."""
        server, db = _open_server()
        count = 300
        acked: list[int] = []
        failed = []

        def writer():
            try:
                with Client(*server.address, pool_size=1) as client:
                    with client.pipeline() as pipe:
                        for i in range(count):
                            pipe.put(b"key-%04d" % i, b"value-%04d" % i)
                    acked.extend(pipe.results)
            except (OSError, ProtocolError) as exc:
                failed.append(exc)  # cut mid-drain: legitimate

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.02)  # let part of the burst reach the server
        server.close(drain=True, timeout=10.0)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert server.stats.leaked_threads == 0
        # Whatever was acked is in the engine, exactly once.
        assert sorted(acked) == sorted(set(acked))
        responses = server.stats.responses
        assert responses >= len(acked)
        for seq in acked:
            assert 1 <= seq <= db.versions.last_sequence
        if not failed:
            # The whole burst beat the cut: all 300 acked and durable.
            assert sorted(acked) == list(range(1, count + 1))
        for i in range(count):
            value = db.get(b"key-%04d" % i)
            assert value in (None, b"value-%04d" % i)
        db.close()

    def test_drain_executes_requests_queued_behind_the_cut(self):
        """Requests fully received but not yet executed when drain fires
        are still executed and answered (the SHUT_RD half-close leaves
        already-buffered bytes readable)."""
        server, db = _open_server()
        host, port = server.address
        sock = socket.create_connection((host, port))
        frames = b"".join(
            encode_frame(encode_value([i + 1, "put",
                                       b"key-%02d" % i, b"v"]))
            for i in range(20))
        sock.sendall(frames)
        time.sleep(0.05)  # land the bytes in the server's buffers
        server.close(drain=True, timeout=10.0)
        assert server.stats.leaked_threads == 0
        assert db.versions.last_sequence == 20
        # Every response was written before the teardown.
        received = b""
        sock.settimeout(2.0)
        try:
            while True:
                chunk = sock.recv(1 << 16)
                if not chunk:
                    break
                received += chunk
        except OSError:
            pass
        finally:
            sock.close()
        assert server.stats.responses == 20
        assert len(received) > 0
        db.close()

    def test_hard_close_still_counts_threads(self):
        server, db = _open_server()
        with Client(*server.address) as client:
            client.put(b"k", b"v")
            server.close(drain=False)
        assert server.stats.leaked_threads == 0
        db.close()


class TestServeSigterm:
    def _spawn(self, tmp_path, *extra):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(tmp_path), "db",
             "--port", "0", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        line = process.stdout.readline()
        assert line.startswith("listening on "), \
            (line, process.stderr.read() if process.poll() is not None
             else "")
        host, port = line.strip().rsplit(" ", 1)[-1].rsplit(":", 1)
        return process, host, int(port)

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        process, host, port = self._spawn(tmp_path)
        count = 200
        acked = []
        failed = []
        try:
            client = Client(host, port, pool_size=1)
            pipe = client.pipeline()
            for i in range(count):
                pipe.put(b"key-%04d" % i, b"value-%04d" % i)

            def flush():
                try:
                    pipe.flush()
                    acked.extend(pipe.results)
                except (OSError, ProtocolError) as exc:
                    failed.append(exc)

            thread = threading.Thread(target=flush)
            thread.start()
            time.sleep(0.05)  # burst in flight
            process.send_signal(signal.SIGTERM)
            thread.join(timeout=15)
            assert not thread.is_alive()
            client.close()
        finally:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                raise
        stdout = process.stdout.read()
        process.stdout.close()
        process.stderr.close()
        assert process.returncode == 0, (stdout, process.returncode)
        assert "draining" in stdout
        # Every acked write is on disk: reopen the store directly.
        db = DB.open(LocalVFS(str(tmp_path)), "db", Options())
        try:
            assert db.versions.last_sequence >= len(acked)
            acked_keys = (b"key-%04d" % i for i in range(len(acked)))
            if not failed:
                assert sorted(acked) == list(range(1, count + 1))
                acked_keys = (b"key-%04d" % i for i in range(count))
            for key in acked_keys:
                assert db.get(key) is not None, f"acked {key!r} lost"
        finally:
            db.close()

    def test_sigterm_idle_exits_zero_quickly(self, tmp_path):
        process, host, port = self._spawn(tmp_path)
        with Client(host, port) as client:
            assert client.put(b"k", b"v") == 1
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            raise
        assert process.returncode == 0
        process.stdout.close()
        process.stderr.close()
        db = DB.open(LocalVFS(str(tmp_path)), "db", Options())
        try:
            assert db.get(b"k") == b"v"
        finally:
            db.close()
