"""Options validation and derived quantities."""

import pytest

from repro.lsm.options import Options, json_attribute_extractor


class TestValidation:
    def test_defaults_valid(self):
        Options()  # must not raise

    def test_block_size_positive(self):
        with pytest.raises(ValueError):
            Options(block_size=0)
        with pytest.raises(ValueError):
            Options(block_size=-1)

    def test_sstable_at_least_block(self):
        with pytest.raises(ValueError):
            Options(block_size=4096, sstable_target_size=1024)

    def test_max_levels_minimum(self):
        with pytest.raises(ValueError):
            Options(max_levels=1)
        Options(max_levels=2)

    def test_multiplier_minimum(self):
        with pytest.raises(ValueError):
            Options(level_size_multiplier=1)

    def test_compression_names(self):
        with pytest.raises(ValueError):
            Options(compression="lz4")
        Options(compression="none")
        Options(compression="zlib")

    def test_compaction_styles(self):
        with pytest.raises(ValueError):
            Options(compaction_style="universal")
        Options(compaction_style="leveled")
        Options(compaction_style="full_level")

    def test_stop_trigger_ordering(self):
        with pytest.raises(ValueError):
            Options(l0_compaction_trigger=20, l0_stop_writes_trigger=10)


class TestLevelBudgets:
    def test_geometric_growth(self):
        options = Options(l1_target_size=1000, level_size_multiplier=10)
        assert options.max_bytes_for_level(1) == 1000
        assert options.max_bytes_for_level(2) == 10000
        assert options.max_bytes_for_level(3) == 100000

    def test_level0_unbounded_by_size(self):
        assert Options().max_bytes_for_level(0) == float("inf")


class TestJsonExtractor:
    def test_extracts_object(self):
        assert json_attribute_extractor(b'{"a": 1, "b": "x"}') == \
            {"a": 1, "b": "x"}

    def test_non_json_is_empty(self):
        assert json_attribute_extractor(b"\xff\xfe raw bytes") == {}

    def test_non_object_json_is_empty(self):
        assert json_attribute_extractor(b"[1, 2, 3]") == {}
        assert json_attribute_extractor(b'"just a string"') == {}

    def test_custom_extractor_plumbed_through(self):
        def csv_extractor(value: bytes):
            user, _text = value.decode().split(",", 1)
            return {"user": user}

        from repro.lsm.db import DB

        options = Options(indexed_attributes=("user",),
                          attribute_extractor=csv_extractor,
                          block_size=512, sstable_target_size=1024,
                          memtable_budget=1024)
        db = DB.open_memory(options)
        for i in range(50):
            db.put(f"k{i}".encode(), f"u{i % 3},hello".encode())
        db.flush()
        _level, meta = db.versions.current.all_files()[0]
        assert "user" in meta.secondary_zonemaps
        db.close()
