"""Static and Mixed workload generators (Table 7)."""

import pytest

from repro.workloads.generator import (
    MIXED_RATIOS,
    MixedWorkload,
    StaticWorkload,
)
from repro.workloads.ops import Get, Lookup, Put, RangeLookup
from repro.workloads.tweets import SeedProfile


class TestStaticWorkload:
    def test_load_phase_covers_all_tweets(self):
        workload = StaticWorkload(num_tweets=500, seed=1)
        puts = list(workload.load_phase())
        assert len(puts) == 500
        assert all(isinstance(op, Put) for op in puts)
        assert len({op.key for op in puts}) == 500

    def test_gets_target_existing_keys(self):
        workload = StaticWorkload(num_tweets=100, seed=2)
        keys = {op.key for op in workload.load_phase()}
        for op in workload.gets(50):
            assert isinstance(op, Get)
            assert op.key in keys

    def test_lookups_use_existing_values(self):
        workload = StaticWorkload(num_tweets=200, seed=3)
        users = {doc["UserID"] for _key, doc in workload.tweets}
        for op in workload.lookups(50, "UserID", k=7):
            assert isinstance(op, Lookup)
            assert op.value in users
            assert op.k == 7

    def test_user_range_width(self):
        profile = SeedProfile(num_users=100)
        workload = StaticWorkload(num_tweets=100, profile=profile, seed=4)
        for op in workload.user_range_lookups(20, selectivity_users=10):
            assert isinstance(op, RangeLookup)
            width = int(op.high[1:]) - int(op.low[1:]) + 1
            assert width == 10
            assert 0 <= int(op.low[1:]) and int(op.high[1:]) < 100

    def test_time_range_width(self):
        workload = StaticWorkload(num_tweets=500, seed=5)
        for op in workload.time_range_lookups(10, selectivity_minutes=2):
            assert op.high - op.low == 120
            assert op.attribute == "CreationTime"

    def test_deterministic(self):
        a = StaticWorkload(num_tweets=50, seed=9)
        b = StaticWorkload(num_tweets=50, seed=9)
        assert list(a.lookups(10)) == list(b.lookups(10))


class TestMixedWorkload:
    def test_table7_ratios_present(self):
        assert set(MIXED_RATIOS) == {"write_heavy", "read_heavy",
                                     "update_heavy"}
        for ratios in MIXED_RATIOS.values():
            assert sum(ratios.values()) == pytest.approx(1.0)

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            MixedWorkload(ratios={"put": 0.5, "get": 0.1, "lookup": 0.1,
                                  "update": 0.1})

    def test_operation_mix_approximates_ratios(self):
        workload = MixedWorkload(
            num_operations=5000, ratios=MIXED_RATIOS["read_heavy"], seed=6)
        counts = {"put": 0, "get": 0, "lookup": 0, "update": 0}
        for op in workload.operations():
            if isinstance(op, Put):
                counts["update" if op.is_update else "put"] += 1
            elif isinstance(op, Get):
                counts["get"] += 1
            else:
                counts["lookup"] += 1
        total = sum(counts.values())
        assert total == 5000
        assert counts["get"] / total == pytest.approx(0.70, abs=0.03)
        assert counts["lookup"] / total == pytest.approx(0.10, abs=0.02)
        assert counts["update"] == 0

    def test_update_heavy_produces_updates(self):
        workload = MixedWorkload(
            num_operations=3000, ratios=MIXED_RATIOS["update_heavy"], seed=7)
        inserted = set()
        updates = 0
        for op in workload.operations():
            if isinstance(op, Put):
                if op.is_update:
                    updates += 1
                    assert op.key in inserted  # reuses an existing key
                else:
                    inserted.add(op.key)
        assert updates / 3000 == pytest.approx(0.40, abs=0.03)

    def test_gets_target_inserted_keys(self):
        workload = MixedWorkload(num_operations=1000, seed=8)
        inserted = set()
        for op in workload.operations():
            if isinstance(op, Put) and not op.is_update:
                inserted.add(op.key)
            elif isinstance(op, Get):
                assert op.key in inserted

    def test_deterministic(self):
        a = list(MixedWorkload(num_operations=300, seed=11).operations())
        b = list(MixedWorkload(num_operations=300, seed=11).operations())
        assert a == b


class TestDeleteRatio:
    def test_deletes_target_inserted_keys(self):
        from repro.workloads.ops import Delete

        workload = MixedWorkload(
            num_operations=2000,
            ratios={"put": 0.5, "get": 0.2, "lookup": 0.1, "update": 0.0,
                    "delete": 0.2},
            seed=21)
        inserted = set()
        deletes = 0
        for op in workload.operations():
            if isinstance(op, Put) and not op.is_update:
                inserted.add(op.key)
            elif isinstance(op, Delete):
                deletes += 1
                assert op.key in inserted
        assert deletes / 2000 == pytest.approx(0.2, abs=0.03)

    def test_delete_ratio_runs_against_all_kinds(self):
        from repro.core.base import IndexKind
        from repro.core.database import SecondaryIndexedDB
        from repro.lsm.options import Options
        from repro.workloads.ops import Delete
        from repro.workloads.runner import WorkloadRunner

        options = Options(block_size=1024, sstable_target_size=4 * 1024,
                          memtable_budget=4 * 1024,
                          l1_target_size=16 * 1024)
        for kind in (IndexKind.EAGER, IndexKind.LAZY, IndexKind.COMPOSITE):
            db = SecondaryIndexedDB.open_memory(
                indexes={"UserID": kind}, options=options)
            workload = MixedWorkload(
                num_operations=800,
                ratios={"put": 0.5, "get": 0.2, "lookup": 0.1,
                        "update": 0.0, "delete": 0.2},
                profile=SeedProfile(num_users=20), seed=22)
            live = {}
            for op in workload.operations():
                if isinstance(op, Put):
                    db.put(op.key, op.document)
                    live[op.key] = op.document
                elif isinstance(op, Delete):
                    db.delete(op.key)
                    live.pop(op.key, None)
                elif isinstance(op, Lookup):
                    db.lookup(op.attribute, op.value, op.k)
                else:
                    db.get(op.key)
            for user_index in range(5):
                user = f"u{user_index:05d}"
                got = {r.key for r in db.lookup(
                    "UserID", user, early_termination=False)}
                want = {key for key, doc in live.items()
                        if doc["UserID"] == user}
                assert got == want, (kind, user)
            db.close()
