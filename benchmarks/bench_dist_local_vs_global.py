"""Distributed extension: local vs global secondary indexes (Appendix D).

The paper's related-work section contrasts Riak/Cassandra-style *local*
indexes (per-shard, scatter-gather queries) with DynamoDB-style *global*
indexes (a separate ring partitioned by attribute value).  This benchmark
measures the trade-off the single-node experiments cannot see: query
fan-out vs write fan-out, as the shard count grows.
"""

import time

import pytest

from harness import BENCH_PROFILE, ResultTable, bench_options

from repro.core.base import IndexKind
from repro.dist.cluster import ShardedDB
from repro.workloads.tweets import TweetGenerator

_N = 3000
_SHARD_COUNTS = [2, 8]
_RESULTS: dict = {}

_TABLE = ResultTable(
    "dist_local_vs_global",
    "Distributed — local (scatter-gather) vs global (routed) indexes",
    ["scope", "shards", "us_per_lookup", "data_shards_per_lookup",
     "index_shards_per_lookup", "us_per_put"])


def _build(scope, num_shards):
    if scope == "local":
        cluster = ShardedDB.open_memory(
            num_shards=num_shards,
            local_indexes={"UserID": IndexKind.LAZY},
            options=bench_options())
    else:
        cluster = ShardedDB.open_memory(
            num_shards=num_shards, global_indexes=("UserID",),
            options=bench_options())
    generator = TweetGenerator(BENCH_PROFILE, seed=83)
    started = time.perf_counter()
    for key, doc in generator.tweets(_N):
        cluster.put(key, doc)
    put_us = (time.perf_counter() - started) * 1e6 / _N
    return cluster, put_us


@pytest.mark.parametrize("num_shards", _SHARD_COUNTS)
@pytest.mark.parametrize("scope", ["local", "global"])
def test_dist_local_vs_global(benchmark, scope, num_shards):
    cluster, put_us = _build(scope, num_shards)
    users = [f"u{r:05d}" for r in range(20)]

    cluster.data_shards_contacted = 0
    gsi = cluster.global_indexes.get("UserID")
    if gsi is not None:
        gsi.shards_contacted = 0

    def run_lookups():
        for user in users:
            cluster.lookup("UserID", user, k=5)

    benchmark.pedantic(run_lookups, rounds=2, iterations=1)
    lookup_us = benchmark.stats.stats.mean * 1e6 / len(users)
    data_fan = cluster.data_shards_contacted / (2 * len(users))
    index_fan = 0.0 if gsi is None else \
        gsi.shards_contacted / (2 * len(users))

    _TABLE.add(scope, num_shards, f"{lookup_us:.0f}", f"{data_fan:.1f}",
               f"{index_fan:.1f}", f"{put_us:.0f}")
    _RESULTS[(scope, num_shards)] = {
        "data_fan": data_fan, "index_fan": index_fan, "put_us": put_us}
    cluster.close()
    if len(_RESULTS) == len(_SHARD_COUNTS) * 2:
        _finalize()


def _finalize():
    _TABLE.note("local: every data shard answers each lookup; "
                "global: one index shard + per-result validation GETs")
    _TABLE.write()
    for num_shards in _SHARD_COUNTS:
        local = _RESULTS[("local", num_shards)]
        global_ = _RESULTS[("global", num_shards)]
        # Local scatter-gather touches every data shard per query...
        assert local["data_fan"] == num_shards
        # ...while the global index resolves on exactly one index shard
        # and touches data shards only to validate the K results.
        assert global_["index_fan"] == 1.0
        assert global_["data_fan"] <= 6.0  # ~K validation GETs
    # The query fan-out gap widens with the cluster (the DynamoDB
    # argument for GSIs).
    assert _RESULTS[("local", 8)]["data_fan"] > \
        _RESULTS[("local", 2)]["data_fan"]
