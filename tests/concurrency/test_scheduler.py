"""Tests of the deterministic scheduler itself.

The scheduler is the foundation the rest of this suite stands on: if
same-seed runs diverged, or the DFS explorer missed interleavings, every
property test downstream would be meaningless.  These tests pin down the
scheduler's contract using plain Python tasks (no DB involved).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.lsm.testing import (
    DeterministicScheduler,
    SchedulerDeadlockError,
    explore_interleavings,
)


def _interleaved_pair(sched):
    """Two spawned tasks, two recorded steps each; returns the step order."""
    log = []

    def task(name):
        for i in range(2):
            sched(f"{name}:step{i}")
            log.append((name, i))

    t_a = sched.spawn("a", task, "a")
    t_b = sched.spawn("b", task, "b")
    sched.wait_threads(t_a, t_b)
    sched.shutdown()
    return tuple(log)


def _merges(xs, ys):
    """All order-preserving interleavings of two sequences."""
    if not xs:
        return [tuple(ys)]
    if not ys:
        return [tuple(xs)]
    return ([(xs[0],) + rest for rest in _merges(xs[1:], ys)]
            + [(ys[0],) + rest for rest in _merges(xs, ys[1:])])


def test_same_seed_replays_identically():
    def run(seed):
        sched = DeterministicScheduler(seed=seed)
        order = _interleaved_pair(sched)
        return order, tuple(sched.trace), tuple(sched.decisions)

    for seed in (0, 3, 11):
        assert run(seed) == run(seed)


def test_different_seeds_cover_multiple_orders():
    orders = set()
    for seed in range(16):
        sched = DeterministicScheduler(seed=seed)
        orders.add(_interleaved_pair(sched))
    assert len(orders) > 1


def test_scripted_replay_reproduces_a_random_run():
    sched = DeterministicScheduler(seed=7)
    order = _interleaved_pair(sched)
    replay = DeterministicScheduler(script=list(sched.decisions),
                                    default="first")
    assert _interleaved_pair(replay) == order
    assert replay.trace == sched.trace
    assert replay.decisions == sched.decisions


def test_explore_enumerates_every_order():
    results = explore_interleavings(_interleaved_pair, max_interleavings=500)
    assert len(results) < 500, "choice tree did not converge"
    observed = {order for _decisions, order in results}
    expected = set(_merges([("a", 0), ("a", 1)], [("b", 0), ("b", 1)]))
    assert observed == expected  # all 6 merge orders of 2 steps x 2 tasks


def test_unmanaged_thread_registers_on_first_yield():
    sched = DeterministicScheduler()
    done = []

    def raw():
        sched("raw:step")
        done.append(True)

    thread = threading.Thread(target=raw, name="raw-thread")
    thread.start()
    deadline = time.monotonic() + 5.0
    while not any(name == "raw-thread"
                  for name, _label in sched.parked_tasks()):
        assert time.monotonic() < deadline, sched.parked_tasks()
        time.sleep(0.001)
    # Guarded park: the main task is ineligible until raw has run, so the
    # scheduler must hand the token to the raw thread.
    sched.park_until("main:wait-raw", lambda: bool(done))
    assert done == [True]
    thread.join(5.0)
    sched.shutdown()


def test_deadlock_detection():
    sched = DeterministicScheduler()
    hit = []

    def stuck():
        try:
            sched.park_until("stuck:forever", lambda: False)
        except SchedulerDeadlockError:
            hit.append(True)

    thread = sched.spawn("stuck", stuck)
    with pytest.raises(SchedulerDeadlockError):
        sched.park_until("main:never", lambda: False)
    thread.join(5.0)
    assert hit == [True]
    sched.shutdown()


def test_shutdown_releases_parked_tasks():
    sched = DeterministicScheduler()
    done = []

    def task():
        sched("task:step")
        done.append(True)

    thread = sched.spawn("t", task)
    # The task is parked at task:step and is never granted the token;
    # shutdown must free it so the thread can finish.
    sched.shutdown()
    thread.join(5.0)
    assert done == [True]
