"""The synthetic tweet generator."""

from repro.workloads.tweets import SeedProfile, TweetGenerator, rank_frequency


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = list(TweetGenerator(seed=7).tweets(100))
        b = list(TweetGenerator(seed=7).tweets(100))
        assert a == b

    def test_different_seed_different_stream(self):
        a = list(TweetGenerator(seed=7).tweets(100))
        b = list(TweetGenerator(seed=8).tweets(100))
        assert a != b


class TestShape:
    def test_tweet_ids_monotone_and_unique(self):
        generator = TweetGenerator(seed=1)
        ids = [key for key, _doc in generator.tweets(500)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 500
        assert generator.existing_ids() == 500

    def test_creation_time_is_time_correlated(self):
        """The property zone maps depend on (Section 3)."""
        times = [doc["CreationTime"]
                 for _key, doc in TweetGenerator(seed=2).tweets(2000)]
        assert times == sorted(times)

    def test_rate_matches_profile(self):
        profile = SeedProfile(avg_tweets_per_second=35.0)
        times = [doc["CreationTime"]
                 for _key, doc in TweetGenerator(profile, seed=3).tweets(7000)]
        span = times[-1] - times[0]
        rate = len(times) / max(1, span)
        assert 20 < rate < 55  # ~35/s with uniform-rate noise

    def test_users_within_profile(self):
        profile = SeedProfile(num_users=50)
        users = {doc["UserID"]
                 for _key, doc in TweetGenerator(profile, seed=4).tweets(1000)}
        assert all(0 <= int(user[1:]) < 50 for user in users)

    def test_body_lengths_within_bounds(self):
        profile = SeedProfile(body_length_min=10, body_length_max=20)
        for _key, doc in TweetGenerator(profile, seed=5).tweets(200):
            assert 10 <= len(doc["Body"]) <= 20


class TestZipfDistribution:
    def test_rank_frequency_is_heavy_tailed(self):
        """Figure 7's power-law shape: the top user posts far more than the
        median user."""
        profile = SeedProfile(num_users=500, zipf_exponent=1.0)
        docs = [doc for _key, doc in
                TweetGenerator(profile, seed=6).tweets(20000)]
        rf = rank_frequency(docs)
        top_frequency = rf[0][1]
        median_frequency = rf[len(rf) // 2][1]
        assert top_frequency > 10 * median_frequency

    def test_rank_frequency_sorted(self):
        docs = [doc for _key, doc in TweetGenerator(seed=6).tweets(1000)]
        rf = rank_frequency(docs)
        frequencies = [frequency for _rank, frequency in rf]
        assert frequencies == sorted(frequencies, reverse=True)
        assert [rank for rank, _f in rf] == list(range(1, len(rf) + 1))

    def test_rank_frequency_custom_attribute(self):
        docs = [{"x": "a"}, {"x": "a"}, {"x": "b"}, {"y": 1}]
        assert rank_frequency(docs, "x") == [(1, 2), (2, 1)]
