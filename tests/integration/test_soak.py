"""Soak test: long randomized op streams with mid-stream maintenance.

One continuous scenario per index kind: random PUT/update/DEL/LOOKUP
traffic interleaved with explicit flushes, full compactions, and a
close/reopen cycle — with the dict-and-filter oracle consulted throughout,
not just at the end.
"""

import random

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.checker import verify_integrity
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS

KINDS = [IndexKind.EMBEDDED, IndexKind.EAGER, IndexKind.LAZY,
         IndexKind.COMPOSITE]


def _options():
    return Options(block_size=1024, sstable_target_size=4 * 1024,
                   memtable_budget=4 * 1024, l1_target_size=16 * 1024)


def _check_all_users(db, oracle, num_users):
    for user_index in range(num_users):
        value = f"u{user_index:03d}"
        got = [(r.seq, r.key) for r in db.lookup(
            "UserID", value, early_termination=False)]
        want = sorted(((seq, key) for key, (doc, seq) in oracle.items()
                       if doc["UserID"] == value), reverse=True)
        assert got == want, value


@pytest.mark.parametrize("kind", KINDS, ids=lambda k: k.value)
def test_soak(kind):
    rng = random.Random(hash(kind.value) & 0xFFFF)
    vfs = MemoryVFS()
    db = SecondaryIndexedDB.open(vfs, "data", {"UserID": kind}, _options())
    oracle: dict[str, tuple[dict, int]] = {}
    num_users = 12

    def mutate(count):
        for _ in range(count):
            key = f"t{rng.randrange(250):05d}"
            roll = rng.random()
            if roll < 0.12:
                db.delete(key)
                oracle.pop(key, None)
            else:
                doc = {"UserID": f"u{rng.randrange(num_users):03d}",
                       "Body": "b" * rng.randrange(40)}
                seq = db.put(key, doc)
                oracle[key] = (doc, seq)

    # Phase 1: pure memtable traffic.
    mutate(120)
    _check_all_users(db, oracle, num_users)

    # Phase 2: traffic across several flushes.
    mutate(800)
    db.flush()
    _check_all_users(db, oracle, num_users)

    # Phase 3: full compaction mid-stream.
    mutate(500)
    db.compact_all()
    _check_all_users(db, oracle, num_users)

    # Phase 4: crash/reopen (all state recovered from disk + WAL).
    mutate(300)
    db.close()
    db = SecondaryIndexedDB.open(vfs, "data", {"UserID": kind}, _options())
    _check_all_users(db, oracle, num_users)

    # Phase 5: more traffic on the recovered handle, then a final audit.
    mutate(400)
    _check_all_users(db, oracle, num_users)
    report = verify_integrity(db.primary)
    assert report.ok, report.problems
    db.close()
