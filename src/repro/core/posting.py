"""Posting lists: the value format of the Eager and Lazy index tables.

A posting list maps one secondary-attribute value to the primary keys that
carry it, "similarly to an inverted index in Information Retrieval"
(Section 4.1).  Following the paper, lists are serialized as JSON arrays —
the JSON parsing/merging overhead is part of what the paper measures as the
Lazy index's compaction CPU cost — with each entry carrying the data-table
sequence number ("we attach a sequence number to each entry in the postings
list on every write").

Entry forms::

    [pk, seq]        a live posting
    [pk, seq, 1]     a deletion marker (Lazy DEL writes these; they cancel
                     older postings of pk when fragments merge)

Lists are kept newest-first, at most one entry per primary key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.lsm.errors import CorruptionError


@dataclass(frozen=True)
class PostingEntry:
    """One ``(primary key, seq)`` posting, possibly a deletion marker."""

    key: str
    seq: int
    deleted: bool = False

    def to_json(self) -> list:
        if self.deleted:
            return [self.key, self.seq, 1]
        return [self.key, self.seq]


def encode_posting_list(entries: list[PostingEntry]) -> bytes:
    """Serialize entries (assumed newest-first) as a JSON array."""
    return json.dumps([entry.to_json() for entry in entries],
                      separators=(",", ":")).encode("utf-8")


def decode_posting_list(payload: bytes) -> list[PostingEntry]:
    """Parse a stored posting list; order is preserved."""
    try:
        raw = json.loads(payload)
    except ValueError as exc:
        raise CorruptionError(f"bad posting list: {exc}") from exc
    if not isinstance(raw, list):
        raise CorruptionError("posting list is not a JSON array")
    entries = []
    for item in raw:
        if not isinstance(item, list) or len(item) not in (2, 3):
            raise CorruptionError(f"bad posting entry: {item!r}")
        entries.append(PostingEntry(item[0], item[1], len(item) == 3))
    return entries


def normalize(entries: list[PostingEntry]) -> list[PostingEntry]:
    """Deduplicate by primary key (newest wins) and sort newest-first.

    The key tiebreak makes the form canonical: sequence ties cannot occur
    between real writes, but canonicality keeps the merge operator exactly
    associative on arbitrary inputs.
    """
    newest: dict[str, PostingEntry] = {}
    for entry in entries:
        current = newest.get(entry.key)
        if current is None or entry.seq > current.seq:
            newest[entry.key] = entry
    return sorted(newest.values(), key=lambda e: (-e.seq, e.key))


def merge_fragments(fragments_oldest_first: list[list[PostingEntry]]
                    ) -> list[PostingEntry]:
    """Union posting fragments: per key, the newest posting (or marker) wins.

    Deletion markers survive the merge — a marker must keep cancelling
    postings that may still live in deeper, not-yet-merged fragments, so it
    can only be discarded by a query (or a hypothetical bottommost full
    merge, which the operator cannot detect).
    """
    combined: list[PostingEntry] = []
    for fragment in fragments_oldest_first:
        combined.extend(fragment)
    return normalize(combined)


def posting_merge_operator(key: bytes, operands: list[bytes]) -> bytes:
    """``repro.lsm`` merge operator folding posting fragments (oldest first).

    Associative by construction, which the engine's partial merges require.
    """
    fragments = [decode_posting_list(op) for op in operands]
    return encode_posting_list(merge_fragments(fragments))


def single_posting_fragment(key: str, seq: int, deleted: bool = False) -> bytes:
    """The Lazy index's per-write fragment: ``PUT(a, [k])`` of Example 1."""
    return encode_posting_list([PostingEntry(key, seq, deleted)])
