"""The MemTable attribute B-tree."""

import random

from repro.core.btree import MemTableAttributeIndex
from repro.lsm.zonemap import encode_attribute


def _enc(value):
    return encode_attribute(value)


class TestBasics:
    def test_empty(self):
        tree = MemTableAttributeIndex()
        assert len(tree) == 0
        assert tree.get(_enc("u1")) == []
        assert list(tree.range(_enc("a"), _enc("z"))) == []

    def test_insert_get(self):
        tree = MemTableAttributeIndex()
        tree.insert(_enc("u1"), 1, b"t1")
        tree.insert(_enc("u1"), 5, b"t2")
        tree.insert(_enc("u2"), 3, b"t3")
        assert tree.get(_enc("u1")) == [(5, b"t2"), (1, b"t1")]
        assert tree.get(_enc("u2")) == [(3, b"t3")]
        assert len(tree) == 3

    def test_range_inclusive_sorted(self):
        tree = MemTableAttributeIndex()
        for i, user in enumerate(["u1", "u3", "u5", "u7"]):
            tree.insert(_enc(user), i, f"t{i}".encode())
        got = [key for key, _postings in tree.range(_enc("u3"), _enc("u5"))]
        assert got == [_enc("u3"), _enc("u5")]

    def test_range_spans_everything(self):
        tree = MemTableAttributeIndex()
        users = [f"u{i:03d}" for i in range(50)]
        for i, user in enumerate(users):
            tree.insert(_enc(user), i, b"t")
        got = [key for key, _p in tree.range(_enc("u000"), _enc("u049"))]
        assert got == [_enc(u) for u in users]


class TestExpiry:
    def test_expire_removes_flushed_postings(self):
        tree = MemTableAttributeIndex()
        tree.insert(_enc("u1"), 1, b"t1")
        tree.insert(_enc("u1"), 5, b"t2")
        tree.insert(_enc("u2"), 3, b"t3")
        expired = tree.expire_up_to(3)
        assert expired == 2
        assert tree.get(_enc("u1")) == [(5, b"t2")]
        assert tree.get(_enc("u2")) == []
        assert len(tree) == 1

    def test_expire_everything(self):
        tree = MemTableAttributeIndex()
        for seq in range(10):
            tree.insert(_enc("u"), seq, str(seq).encode())
        assert tree.expire_up_to(100) == 10
        assert len(tree) == 0
        assert tree.get(_enc("u")) == []

    def test_expired_keys_vanish_from_range(self):
        tree = MemTableAttributeIndex()
        tree.insert(_enc("u1"), 1, b"t1")
        tree.insert(_enc("u2"), 9, b"t2")
        tree.expire_up_to(5)
        got = [key for key, _p in tree.range(_enc("u1"), _enc("u2"))]
        assert got == [_enc("u2")]

    def test_expire_noop(self):
        tree = MemTableAttributeIndex()
        tree.insert(_enc("u"), 5, b"t")
        assert tree.expire_up_to(4) == 0
        assert len(tree) == 1


class TestRandomizedAgainstOracle:
    def test_large_tree_with_splits(self):
        """Enough distinct keys to force several node splits (order 32)."""
        rng = random.Random(11)
        tree = MemTableAttributeIndex()
        oracle: dict[bytes, list[tuple[int, bytes]]] = {}
        for seq in range(5000):
            value = rng.randrange(800)
            key = _enc(value)
            pk = f"t{seq}".encode()
            tree.insert(key, seq, pk)
            oracle.setdefault(key, []).append((seq, pk))
        for value in rng.sample(range(800), 100):
            key = _enc(value)
            want = sorted(oracle.get(key, []), key=lambda p: -p[0])
            assert tree.get(key) == want
        # Range queries against the oracle.
        for _ in range(20):
            lo = rng.randrange(700)
            hi = lo + rng.randrange(100)
            got = dict(tree.range(_enc(lo), _enc(hi)))
            want_keys = {k for k in oracle if _enc(lo) <= k <= _enc(hi)}
            assert set(got) == want_keys

    def test_interleaved_expiry(self):
        rng = random.Random(12)
        tree = MemTableAttributeIndex()
        live: list[tuple[int, bytes, bytes]] = []
        seq = 0
        for _round in range(10):
            for _ in range(300):
                value = _enc(rng.randrange(50))
                pk = f"t{seq}".encode()
                tree.insert(value, seq, pk)
                live.append((seq, value, pk))
                seq += 1
            cutoff = seq - 150  # expire all but the newest 150
            tree.expire_up_to(cutoff)
            live = [item for item in live if item[0] > cutoff]
            assert len(tree) == len(live)
        for value in {v for _s, v, _p in live}:
            want = sorted(((s, p) for s, v, p in live if v == value),
                          key=lambda item: -item[0])
            assert tree.get(value) == want
