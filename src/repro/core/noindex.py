"""The no-index baseline: answer secondary queries by scanning everything.

This is the paper's "NoIndex" series (Figures 10-11): LOOKUP and
RANGELOOKUP degrade to a full scan of the primary table with a predicate.
It costs nothing at write time and is the yardstick the Embedded index is
measured against ("zone maps ... almost perform same as no index" for
non-time-correlated range queries).
"""

from __future__ import annotations

from typing import Any

from repro.core.base import IndexKind, LookupResult, SecondaryIndex
from repro.core.records import (
    Document,
    attribute_of,
    decode_document,
    key_to_str,
)
from repro.core.topk import TopKBySeq
from repro.lsm.db import DB
from repro.lsm.zonemap import encode_attribute


class NoIndex(SecondaryIndex):
    """Full-scan fallback: correct for every query, fast for none."""

    kind = IndexKind.NOINDEX

    def __init__(self, attribute: str, primary: DB) -> None:
        super().__init__(attribute)
        self.primary = primary

    def on_put(self, key: bytes, document: Document, seq: int) -> None:
        return None

    def on_delete(self, key: bytes, old_document: Document | None,
                  seq: int) -> None:
        return None

    def lookup(self, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        encoded = encode_attribute(value)
        return self._scan(lambda e: e == encoded, k)

    def range_lookup(self, low: Any, high: Any, k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        low_encoded = encode_attribute(low)
        high_encoded = encode_attribute(high)
        if low_encoded > high_encoded:
            return []
        return self._scan(lambda e: low_encoded <= e <= high_encoded, k)

    def _scan(self, matches, k: int | None) -> list[LookupResult]:
        heap: TopKBySeq[LookupResult] = TopKBySeq(k)
        for key, value, seq in self.primary.scan_with_seq():
            document = decode_document(value)
            attr_value = attribute_of(document, self.attribute)
            if attr_value is None:
                continue
            if matches(encode_attribute(attr_value)):
                heap.add(seq, LookupResult(key_to_str(key), document, seq))
        return heap.results()
