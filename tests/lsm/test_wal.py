"""Write-ahead log: record framing, fragmentation, torn-write recovery."""

import pytest

from repro.lsm.errors import CorruptionError
from repro.lsm.vfs import MemoryVFS
from repro.lsm.wal import BLOCK_SIZE, HEADER_SIZE, LogReader, LogWriter


def _roundtrip(records, vfs=None):
    vfs = vfs or MemoryVFS()
    writer = LogWriter(vfs.create("wal"))
    for record in records:
        writer.add_record(record)
    writer.close()
    return list(LogReader(vfs.open_random("wal"))), vfs


class TestRoundtrip:
    def test_small_records(self):
        records = [b"one", b"two", b"three"]
        got, _vfs = _roundtrip(records)
        assert got == records

    def test_empty_record(self):
        got, _vfs = _roundtrip([b""])
        assert got == [b""]

    def test_record_spanning_blocks(self):
        big = bytes(range(256)) * 600  # ~150 KB, several blocks
        got, _vfs = _roundtrip([big])
        assert got == [big]

    def test_record_exactly_filling_block(self):
        payload = b"x" * (BLOCK_SIZE - HEADER_SIZE)
        got, _vfs = _roundtrip([payload, b"next"])
        assert got == [payload, b"next"]

    def test_header_never_split(self):
        # Leave less than a header's room at a block tail.
        first = b"a" * (BLOCK_SIZE - HEADER_SIZE - 3)
        got, _vfs = _roundtrip([first, b"tail"])
        assert got == [first, b"tail"]

    def test_many_records(self):
        records = [f"record-{i}".encode() * (i % 7 + 1) for i in range(500)]
        got, _vfs = _roundtrip(records)
        assert got == records


class TestRecovery:
    def test_torn_tail_is_silently_dropped(self):
        _got, vfs = _roundtrip([b"complete", b"doomed" * 100])
        data = vfs._files["wal"]
        del data[len(data) - 10:]  # tear the last record
        recovered = list(LogReader(vfs.open_random("wal")))
        assert recovered == [b"complete"]

    def test_corruption_in_middle_raises(self):
        _got, vfs = _roundtrip([b"first", b"second", b"third"])
        data = vfs._files["wal"]
        data[HEADER_SIZE + 1] ^= 0xFF  # flip a payload byte of record one
        with pytest.raises(CorruptionError):
            list(LogReader(vfs.open_random("wal")))

    def test_truncated_header_at_tail(self):
        _got, vfs = _roundtrip([b"keeper"])
        data = vfs._files["wal"]
        data.extend(b"\x01\x02\x03")  # partial header garbage
        recovered = list(LogReader(vfs.open_random("wal")))
        assert recovered == [b"keeper"]

    def test_empty_log(self):
        vfs = MemoryVFS()
        LogWriter(vfs.create("wal")).close()
        assert list(LogReader(vfs.open_random("wal"))) == []

    def test_zero_padding_skipped(self):
        _got, vfs = _roundtrip([b"data"])
        vfs._files["wal"].extend(b"\x00" * 64)
        assert list(LogReader(vfs.open_random("wal"))) == [b"data"]


class TestBlockBoundaryEdges:
    """Fragmentation corner cases around the 32 KiB block grid."""

    def test_record_spanning_many_blocks(self):
        records = [b"a" * (3 * BLOCK_SIZE + 123), b"tail"]
        got, _vfs = _roundtrip(records)
        assert got == records

    def test_fragment_at_exact_header_leftover(self):
        # First record leaves exactly HEADER_SIZE free in the block, so
        # the next record starts with a zero-payload FIRST fragment.
        first = b"x" * (BLOCK_SIZE - 2 * HEADER_SIZE)
        second = b"spans-into-the-next-block"
        got, vfs = _roundtrip([first, second])
        assert got == [first, second]
        assert vfs.file_size("wal") > BLOCK_SIZE  # second really spilled

    def test_empty_record_at_exact_header_leftover(self):
        first = b"x" * (BLOCK_SIZE - 2 * HEADER_SIZE)
        got, vfs = _roundtrip([first, b"", b"after"])
        assert got == [first, b"", b"after"]

    def test_torn_tail_of_multi_block_record(self):
        # FIRST and MIDDLE fragments land, the crash eats the LAST one:
        # the whole record must vanish, the earlier one must survive.
        keeper = b"keeper"
        doomed = b"d" * (2 * BLOCK_SIZE + 500)
        _got, vfs = _roundtrip([keeper, doomed])
        data = vfs._files["wal"]
        del data[2 * BLOCK_SIZE:]  # cut exactly at a block boundary
        assert list(LogReader(vfs.open_random("wal"))) == [keeper]

    def test_fragment_crossing_block_boundary_raises_midfile(self):
        # Corrupt the first fragment's length so it claims to span the
        # block boundary while real data follows: structural corruption.
        big = b"p" * (2 * BLOCK_SIZE + 500)
        _got, vfs = _roundtrip([big])
        data = vfs._files["wal"]
        data[4:6] = (0xFFFF).to_bytes(2, "little")  # length field
        with pytest.raises(CorruptionError):
            list(LogReader(vfs.open_random("wal")))

    def test_fragment_crossing_block_boundary_at_tail_is_torn(self):
        # The same oversized length with nothing after it is a torn tail.
        _got, vfs = _roundtrip([b"keeper", b"short"])
        data = vfs._files["wal"]
        tail = HEADER_SIZE + len(b"keeper")
        data[tail + 4:tail + 6] = (0xFFFF).to_bytes(2, "little")
        assert list(LogReader(vfs.open_random("wal"))) == [b"keeper"]


class TestTornTailKinds:
    """Torn header vs torn payload vs corrupt CRC at the tail."""

    def test_torn_header_stops_silently(self):
        _got, vfs = _roundtrip([b"keeper", b"doomed"])
        data = vfs._files["wal"]
        second_start = HEADER_SIZE + len(b"keeper")
        del data[second_start + 3:]  # 3 bytes of header survive
        assert list(LogReader(vfs.open_random("wal"))) == [b"keeper"]

    def test_torn_payload_stops_silently(self):
        _got, vfs = _roundtrip([b"keeper", b"doomed-payload"])
        data = vfs._files["wal"]
        del data[len(data) - 5:]
        assert list(LogReader(vfs.open_random("wal"))) == [b"keeper"]

    def test_corrupt_crc_of_last_record_stops_silently(self):
        _got, vfs = _roundtrip([b"keeper", b"doomed"])
        data = vfs._files["wal"]
        second_start = HEADER_SIZE + len(b"keeper")
        data[second_start] ^= 0xFF  # flip a CRC byte of the tail record
        assert list(LogReader(vfs.open_random("wal"))) == [b"keeper"]

    def test_corrupt_crc_before_more_records_raises(self):
        _got, vfs = _roundtrip([b"first", b"second", b"third"])
        data = vfs._files["wal"]
        data[0] ^= 0xFF  # CRC byte of record one; records follow
        with pytest.raises(CorruptionError):
            list(LogReader(vfs.open_random("wal")))

    def test_sync_marks_watermark_for_crash_imaging(self):
        from repro.lsm.faults import FaultInjectingVFS

        fvfs = FaultInjectingVFS()
        writer = LogWriter(fvfs.create("wal"))
        writer.add_record(b"durable")
        writer.sync()
        writer.add_record(b"volatile")
        image = fvfs.crash_image("drop")
        assert list(LogReader(image.open_random("wal"))) == [b"durable"]
