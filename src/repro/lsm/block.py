"""SSTable data blocks: prefix-compressed sorted runs of entries.

The format is LevelDB's.  Each entry stores the length of the prefix it
shares with the previous key, the remaining key bytes, and the value::

    shared (varint) | non_shared (varint) | value_len (varint)
    key_delta (non_shared bytes) | value (value_len bytes)

Every ``restart_interval`` entries the full key is written and its offset is
appended to the *restart array* at the block's tail, enabling binary search::

    restart[0] .. restart[n-1] (uint32 LE each) | num_restarts (uint32 LE)

Keys are encoded internal keys; ordering uses the internal-key comparator
(user key ascending, sequence number descending).

Read-side strategy: the first iteration or seek **batch-decodes** every
entry into parallel key/value arrays in one pass over the varint stream
(a tight inline loop rather than one function call per field), and seeks
bisect a lazily built sort-key array.  A :class:`Block` held in the block
cache therefore pays the varint walk once per cache lifetime; repeated
seeks in a hot block are an O(log n) bisect.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from typing import Iterator

from repro.lsm.errors import CorruptionError
from repro.lsm.keys import (
    encode_varint,
    internal_sort_key,
)

_U32 = struct.Struct("<I")
_TRAILER = struct.Struct(">Q")
DEFAULT_RESTART_INTERVAL = 16


class BlockBuilder:
    """Accumulates sorted ``(internal_key, value)`` pairs into a block."""

    def __init__(self, restart_interval: int = DEFAULT_RESTART_INTERVAL) -> None:
        if restart_interval < 1:
            raise ValueError("restart_interval must be >= 1")
        self.restart_interval = restart_interval
        self._buffer = bytearray()
        self._restarts: list[int] = [0]
        self._counter = 0
        self._last_key = b""
        self._last_sort_key: tuple[bytes, int] | None = None
        self._num_entries = 0

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def is_empty(self) -> bool:
        return self._num_entries == 0

    def current_size_estimate(self) -> int:
        return len(self._buffer) + 4 * len(self._restarts) + 4

    def add(self, key: bytes, value: bytes) -> None:
        """Append an entry.  Keys must arrive in strictly increasing order."""
        sort_key = internal_sort_key(key)
        if self._last_sort_key is not None and sort_key <= self._last_sort_key:
            raise ValueError("block keys must be added in increasing order")
        self._last_sort_key = sort_key
        if self._counter < self.restart_interval:
            shared = _shared_prefix_length(self._last_key, key)
        else:
            shared = 0
            self._restarts.append(len(self._buffer))
            self._counter = 0
        non_shared = len(key) - shared
        self._buffer += encode_varint(shared)
        self._buffer += encode_varint(non_shared)
        self._buffer += encode_varint(len(value))
        self._buffer += key[shared:]
        self._buffer += value
        self._last_key = key
        self._counter += 1
        self._num_entries += 1

    def finish(self) -> bytes:
        out = bytes(self._buffer)
        tail = bytearray()
        for restart in self._restarts:
            tail += _U32.pack(restart)
        tail += _U32.pack(len(self._restarts))
        return out + bytes(tail)

    def reset(self) -> None:
        self._buffer.clear()
        self._restarts = [0]
        self._counter = 0
        self._last_key = b""
        self._last_sort_key = None
        self._num_entries = 0


def _shared_prefix_length(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class Block:
    """Read-side view of a finished block."""

    __slots__ = ("_data", "_restarts", "_entries_end",
                 "_keys", "_values", "_sort_keys")

    def __init__(self, data: bytes) -> None:
        if len(data) < 4:
            raise CorruptionError("block too small for restart count")
        self._data = data
        num_restarts = _U32.unpack_from(data, len(data) - 4)[0]
        restart_end = len(data) - 4
        restart_start = restart_end - 4 * num_restarts
        if restart_start < 0:
            raise CorruptionError("restart array overflows block")
        self._restarts = struct.unpack_from(f"<{num_restarts}I", data,
                                            restart_start)
        self._entries_end = restart_start
        self._keys: list[bytes] | None = None
        self._values: list[bytes] | None = None
        self._sort_keys: list[tuple[bytes, int]] | None = None

    @property
    def data(self) -> bytes:
        """The block's raw (uncompressed) payload, restart array included.

        ``Block(block.data)`` reconstructs an equivalent block; the shared
        block cache ships these bytes across process boundaries.
        """
        return self._data

    def _parse_all(self) -> list[bytes]:
        """Decode every entry into ``self._keys``/``self._values`` (once).

        One pass, varints decoded inline: on a typical block this replaces
        three ``decode_varint`` calls plus a ``_decode_entry`` frame per
        entry with straight-line bytecode, and the result is memoized for
        the lifetime of the Block object.
        """
        if self._keys is not None:
            return self._keys
        data = self._data
        end = self._entries_end
        keys: list[bytes] = []
        values: list[bytes] = []
        append_key = keys.append
        append_value = values.append
        previous = b""
        pos = 0
        try:
            while pos < end:
                # varint: shared prefix length
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    shared = byte
                else:
                    shared = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        shared |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                # varint: non-shared key bytes
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    non_shared = byte
                else:
                    non_shared = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        non_shared |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                # varint: value length
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    value_len = byte
                else:
                    value_len = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        value_len |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                key_end = pos + non_shared
                value_end = key_end + value_len
                if value_end > end:
                    raise CorruptionError("block entry overflows entry region")
                if shared:
                    if shared > len(previous):
                        raise CorruptionError(
                            "block entry shares more than previous key")
                    previous = previous[:shared] + data[pos:key_end]
                else:
                    previous = data[pos:key_end]
                append_key(previous)
                append_value(data[key_end:value_end])
                pos = value_end
        except IndexError as exc:
            raise CorruptionError(
                "bad block entry header: truncated varint") from exc
        self._keys = keys
        self._values = values
        return keys

    def _materialize_sort_keys(self) -> list[tuple[bytes, int]]:
        sort_keys = self._sort_keys
        if sort_keys is None:
            keys = self._parse_all()
            # internal_sort_key, inlined into the listcomp: one C-level
            # loop, no per-entry Python frame.
            unpack_from = _TRAILER.unpack_from
            try:
                sort_keys = self._sort_keys = [
                    (key[:-8], -unpack_from(key, len(key) - 8)[0])
                    for key in keys]
            except struct.error as exc:
                # A decoded key shorter than its 8-byte trailer: garbage
                # that slipped past a skipped CRC (paranoid_checks off).
                raise CorruptionError(
                    "block entry key shorter than trailer") from exc
        return sort_keys

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        keys = self._parse_all()
        return iter(zip(keys, self._values))

    def sorted_items(self) -> Iterator[tuple[tuple[bytes, int], bytes]]:
        """``(sort_key, value)`` pairs for every entry, in order.

        The scan pipeline consumes this form: the merge heap and version
        resolution both work on sort keys directly, so handing them out
        pre-computed avoids allocating an :class:`InternalKey` per entry.
        """
        sort_keys = self._materialize_sort_keys()
        return iter(zip(sort_keys, self._values))

    def sorted_seek(self, target: bytes
                    ) -> Iterator[tuple[tuple[bytes, int], bytes]]:
        """``(sort_key, value)`` pairs with internal key >= ``target``."""
        sort_keys = self._materialize_sort_keys()
        values = self._values
        for index in range(bisect_left(sort_keys, internal_sort_key(target)),
                           len(sort_keys)):
            yield sort_keys[index], values[index]

    def seek(self, target: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate entries with internal key >= ``target``.

        Two regimes, chosen by whether the block's entries are already
        materialized:

        * materialized (the block was iterated before, e.g. it sits in the
          block cache): bisect the memoized sort-key array — O(log n) with
          C-speed tuple compares;
        * fresh (the common point-lookup case with the block cache off):
          LevelDB's strategy — binary-search the restart array, then decode
          forward from the chosen restart point.  At most
          ``restart_interval`` entries are decoded before the target, and
          nothing is memoized, so a one-shot seek never pays for the whole
          block.
        """
        if self._keys is not None:
            keys = self._keys
            sort_keys = self._materialize_sort_keys()
            values = self._values
            for index in range(
                    bisect_left(sort_keys, internal_sort_key(target)),
                    len(keys)):
                yield keys[index], values[index]
            return

        data = self._data
        end = self._entries_end
        restarts = self._restarts
        target_sort_key = internal_sort_key(target)
        lo, hi = 0, len(restarts) - 1
        while lo < hi:
            mid = (lo + hi + 1) >> 1
            if self._restart_sort_key(mid) < target_sort_key:
                lo = mid
            else:
                hi = mid - 1
        pos = restarts[lo] if restarts else 0
        previous = b""
        skipping = True
        unpack_trailer = _TRAILER.unpack_from
        try:
            while pos < end:
                # varint: shared prefix length
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    shared = byte
                else:
                    shared = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        shared |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                # varint: non-shared key bytes
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    non_shared = byte
                else:
                    non_shared = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        non_shared |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                # varint: value length
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    value_len = byte
                else:
                    value_len = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        value_len |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                key_end = pos + non_shared
                value_end = key_end + value_len
                if value_end > end:
                    raise CorruptionError("block entry overflows entry region")
                if shared:
                    if shared > len(previous):
                        raise CorruptionError(
                            "block entry shares more than previous key")
                    previous = previous[:shared] + data[pos:key_end]
                else:
                    previous = data[pos:key_end]
                if skipping:
                    if (previous[:-8],
                            -unpack_trailer(previous,
                                            len(previous) - 8)[0]) \
                            >= target_sort_key:
                        skipping = False
                        yield previous, data[key_end:value_end]
                else:
                    yield previous, data[key_end:value_end]
                pos = value_end
        except IndexError as exc:
            raise CorruptionError(
                "bad block entry header: truncated varint") from exc
        except struct.error as exc:
            raise CorruptionError(
                "block entry key shorter than trailer") from exc

    def _restart_sort_key(self, restart_index: int) -> tuple[bytes, int]:
        """Sort key of the full key stored at restart ``restart_index``."""
        data = self._data
        pos = self._restarts[restart_index]
        try:
            # At a restart point the shared length is zero by construction;
            # decode all three header varints, then slice out the key.
            lengths = []
            for _ in range(3):
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    lengths.append(byte)
                    continue
                value = byte & 0x7F
                shift = 7
                while True:
                    byte = data[pos]
                    pos += 1
                    value |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                lengths.append(value)
            return internal_sort_key(data[pos:pos + lengths[1]])
        except IndexError as exc:
            raise CorruptionError(
                "bad block restart entry: truncated varint") from exc
        except struct.error as exc:
            raise CorruptionError(
                "block restart key shorter than trailer") from exc
