"""Fault injection and crash simulation on top of the metered VFS.

The paper's experiments assume an engine that survives month-long runs on
real disks, so the WAL/manifest recovery paths must hold up under power
loss, not just clean shutdowns.  :class:`FaultInjectingVFS` makes crashes a
first-class, deterministic test input:

* **Scheduled faults** — :meth:`~FaultInjectingVFS.schedule_write_error`
  makes the *N*-th mutating operation fail with
  :class:`~repro.lsm.errors.FaultInjectedError` (the ``EIO`` case);
  :meth:`~FaultInjectingVFS.schedule_crash` instead raises
  :class:`~repro.lsm.errors.SimulatedCrashError` and freezes the
  filesystem: every later operation fails the same way, so in-flight work
  unwinds exactly as on a kernel panic.

* **Durability tracking** — every file records how many of its bytes have
  been ``sync()``\\ ed.  :meth:`~FaultInjectingVFS.crash_image` snapshots
  what a post-crash disk would hold: synced prefixes always survive;
  un-synced appends are dropped (``unsynced="drop"``), kept up to a 4 KiB
  device-page boundary (``unsynced="torn"``, the half-written tail the
  WAL's per-fragment CRCs exist to detect), or kept whole
  (``unsynced="keep"``, the lucky case where the page cache drained first).
  Metadata operations (create/delete/rename) model a journaling filesystem:
  they are durable as soon as they are applied.

* **Read faults and bit rot** — reads get the same treatment writes got in
  PR 1.  :meth:`~FaultInjectingVFS.schedule_read_error` makes the *N*-th
  read operation (``open_random`` or ``read_at``) raise a transient
  :class:`~repro.lsm.errors.ReadFaultError` (``EIO``); the engine is
  expected to retry.  :meth:`~FaultInjectingVFS.flip_bit` and
  :meth:`~FaultInjectingVFS.garble` silently damage stored bytes (flipping
  the same bit twice heals it — handy for cache-poisoning drills), while
  :meth:`~FaultInjectingVFS.corrupt_reads` corrupts data *in flight* for
  the next reads matching a file-name substring and/or I/O
  :class:`~repro.lsm.vfs.Category`, leaving the stored bytes intact.

* **Disk-full** — :meth:`~FaultInjectingVFS.schedule_enospc` makes every
  space-consuming operation (create/append/sync) from mutating op *N*
  onward fail with :class:`~repro.lsm.errors.OutOfSpaceError`, while
  deletes, renames and reads keep working — the classic full-disk regime a
  database must degrade into read-only mode under, not crash-loop.

* **Crash-point enumeration** — :func:`count_mutations` runs a workload
  once to learn its deterministic operation schedule; iterating
  :func:`crash_points` and calling :func:`run_until_crash` then replays the
  workload, crashing before each operation in turn, for exhaustive
  recovery drills (see ``tests/property/test_crash_consistency.py``).

The wrapper is a complete :class:`~repro.lsm.vfs.VFS`, so a whole
:class:`~repro.lsm.db.DB` stack runs on it unmodified and I/O metering
keeps working.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.lsm.errors import (
    FaultInjectedError,
    NotFoundError,
    OutOfSpaceError,
    ReadFaultError,
    SimulatedCrashError,
)
from repro.lsm.vfs import (
    DEVICE_BLOCK_SIZE,
    Category,
    MemoryVFS,
    RandomAccessFile,
    VFS,
    WritableFile,
)

#: Modes for what happens to un-synced appended bytes at a crash.
UNSYNCED_MODES = ("drop", "torn", "keep")

#: Mutating operations that consume device space; the ones ENOSPC fails.
#: Deletes and renames only touch metadata and still succeed on a full disk.
_SPACE_CONSUMING = frozenset({"create", "append", "sync"})

#: In-flight read corruption flavours.
CORRUPT_MODES = ("bitflip", "garble")

Workload = Callable[[VFS], None]


def _garble_pattern(length: int, seed: int = 0) -> bytes:
    """Deterministic junk bytes (an LCG) — reproducible page garbling."""
    state = (seed * 2654435761 + 97) & 0xFFFFFFFF
    out = bytearray(length)
    for i in range(length):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        out[i] = (state >> 16) & 0xFF
    return bytes(out)


class _ReadCorruption:
    """One armed in-flight corruption rule (see ``corrupt_reads``)."""

    __slots__ = ("count", "name_substring", "category", "mode")

    def __init__(self, count: int, name_substring: str | None,
                 category: Category | None, mode: str) -> None:
        self.count = count
        self.name_substring = name_substring
        self.category = category
        self.mode = mode

    def matches(self, name: str, category: Category) -> bool:
        if self.count <= 0:
            return False
        if self.name_substring is not None \
                and self.name_substring not in name:
            return False
        if self.category is not None and category is not self.category:
            return False
        return True

    def apply(self, data: bytes) -> bytes:
        if not data:
            return data
        if self.mode == "garble":
            return _garble_pattern(len(data), seed=len(data))
        # Single-bit flip in the middle of the returned slice: the smallest
        # possible silent damage, exactly what block CRCs exist to catch.
        damaged = bytearray(data)
        damaged[len(damaged) // 2] ^= 0x01
        return bytes(damaged)


class _FaultedFile:
    """Backing store for one file: its bytes plus the synced watermark."""

    __slots__ = ("data", "durable")

    def __init__(self) -> None:
        self.data = bytearray()
        self.durable = 0

    def surviving_length(self, unsynced: str) -> int:
        if unsynced == "keep":
            return len(self.data)
        if unsynced == "torn":
            # Whole 4 KiB device pages of the un-synced tail may have hit
            # the platter before power died; partial pages never survive.
            page_aligned = (len(self.data) // DEVICE_BLOCK_SIZE) \
                * DEVICE_BLOCK_SIZE
            return max(self.durable, min(page_aligned, len(self.data)))
        if unsynced == "drop":
            return self.durable
        raise ValueError(f"unknown unsynced mode: {unsynced!r}")


class FaultInjectingVFS(VFS):
    """In-memory VFS that can fail writes on schedule and simulate crashes.

    Mutating operations (create, append, sync, delete, rename) are counted;
    reads are free.  ``op_count`` after a fault-free run is therefore the
    number of enumerable crash points of a workload.
    """

    def __init__(self) -> None:
        super().__init__()
        self._files: dict[str, _FaultedFile] = {}
        self.op_count = 0
        #: One ``(kind, name)`` entry per counted mutating op — crash-point
        #: drills use it to find the ops that touch a particular file
        #: (``op_log[i]`` describes 1-based mutating op ``i + 1``).
        self.op_log: list[tuple[str, str]] = []
        self.crashed = False
        self._fail_at: int | None = None
        self._fail_mode = "crash"
        self.read_op_count = 0
        self._read_fail_at: int | None = None
        self._read_fail_count = 0
        self._enospc_at: int | None = None
        self._read_corruptions: list[_ReadCorruption] = []

    # -- fault scheduling ----------------------------------------------------

    def schedule_crash(self, at_op: int) -> None:
        """Crash the machine just before mutating operation ``at_op`` (1-based)."""
        if at_op < 1:
            raise ValueError("at_op is 1-based")
        self._fail_at = at_op
        self._fail_mode = "crash"

    def schedule_write_error(self, at_op: int) -> None:
        """Fail mutating operation ``at_op`` once; later operations succeed."""
        if at_op < 1:
            raise ValueError("at_op is 1-based")
        self._fail_at = at_op
        self._fail_mode = "error"

    def schedule_read_error(self, at_read: int, count: int = 1) -> None:
        """Fail ``count`` read operations starting at read op ``at_read``.

        Read operations (``open_random`` and ``read_at``) are counted
        separately from mutating ops in ``read_op_count``.  Failures raise
        :class:`~repro.lsm.errors.ReadFaultError` — a *transient* ``EIO``:
        retrying the read is a new read op, so after ``count`` failures the
        same read succeeds.  Models the retryable media errors the engine's
        bounded read-retry loop exists for.
        """
        if at_read < 1:
            raise ValueError("at_read is 1-based")
        if count < 1:
            raise ValueError("count must be >= 1")
        self._read_fail_at = at_read
        self._read_fail_count = count

    def schedule_enospc(self, at_op: int = 1) -> None:
        """Run out of disk space at mutating operation ``at_op`` (1-based).

        From that op onward every space-consuming operation (create, append,
        sync) raises :class:`~repro.lsm.errors.OutOfSpaceError`; deletes,
        renames and all reads keep working.  Persistent until
        :meth:`clear_enospc` — a full disk stays full.
        """
        if at_op < 1:
            raise ValueError("at_op is 1-based")
        self._enospc_at = at_op

    def clear_enospc(self) -> None:
        """Free up space: space-consuming operations succeed again."""
        self._enospc_at = None

    # -- stored-byte damage (bit rot) ----------------------------------------

    def flip_bit(self, name: str, byte_offset: int, bit: int = 0) -> None:
        """Silently flip one stored bit of ``name`` (XOR — flipping the same
        bit again heals the file, which cache-poisoning drills rely on)."""
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        data = self._files[name].data
        if not 0 <= byte_offset < len(data):
            raise ValueError(
                f"byte_offset {byte_offset} outside {name} "
                f"({len(data)} bytes)")
        if not 0 <= bit < 8:
            raise ValueError("bit must be in [0, 8)")
        data[byte_offset] ^= 1 << bit

    def garble(self, name: str, offset: int = 0,
               length: int = DEVICE_BLOCK_SIZE) -> bytes:
        """Overwrite a stored byte range with deterministic junk (a whole
        device page by default).  Returns the original bytes so a drill can
        restore them."""
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        data = self._files[name].data
        if not 0 <= offset < len(data):
            raise ValueError(
                f"offset {offset} outside {name} ({len(data)} bytes)")
        end = min(offset + length, len(data))
        original = bytes(data[offset:end])
        data[offset:end] = _garble_pattern(end - offset, seed=offset)
        return original

    def corrupt_reads(self, count: int = 1, *,
                      name_substring: str | None = None,
                      category: Category | None = None,
                      mode: str = "bitflip") -> None:
        """Corrupt the next ``count`` reads matching the given target, in
        flight: the stored bytes stay intact, only the returned copy is
        damaged (a flaky controller / cable, not bit rot).

        ``name_substring`` matches against the file name; ``category``
        against the read's I/O :class:`~repro.lsm.vfs.Category` (DATA,
        INDEX, FILTER, WAL, MANIFEST, ...).  Both ``None`` means every
        read matches.  ``mode`` is ``"bitflip"`` (single-bit) or
        ``"garble"`` (whole-slice junk).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if mode not in CORRUPT_MODES:
            raise ValueError(f"mode must be one of {CORRUPT_MODES}")
        self._read_corruptions.append(
            _ReadCorruption(count, name_substring, category, mode))

    def _mutate(self, kind: str = "write", name: str = "") -> None:
        """Gate every mutating operation: count it, maybe fault, maybe crash."""
        if self.crashed:
            raise SimulatedCrashError("filesystem is down (simulated crash)")
        self.op_count += 1
        self.op_log.append((kind, name))
        if self._fail_at is not None and self.op_count == self._fail_at:
            self._fail_at = None
            if self._fail_mode == "crash":
                self.crashed = True
                raise SimulatedCrashError(
                    f"simulated crash at mutating op {self.op_count}")
            raise FaultInjectedError(
                f"injected write failure at mutating op {self.op_count}")
        if self._enospc_at is not None and self.op_count >= self._enospc_at \
                and kind in _SPACE_CONSUMING:
            raise OutOfSpaceError(
                f"simulated ENOSPC at mutating op {self.op_count} ({kind})")

    def _check_up(self) -> None:
        if self.crashed:
            raise SimulatedCrashError("filesystem is down (simulated crash)")

    def _read_op(self) -> None:
        """Gate every read operation: count it, maybe raise transient EIO."""
        self._check_up()
        self.read_op_count += 1
        if self._read_fail_at is not None:
            end = self._read_fail_at + self._read_fail_count
            if self._read_fail_at <= self.read_op_count < end:
                raise ReadFaultError(
                    f"injected read failure at read op {self.read_op_count}")
            if self.read_op_count >= end:
                self._read_fail_at = None

    def _maybe_corrupt(self, name: str, category: Category,
                       data: bytes) -> bytes:
        if not self._read_corruptions:
            return data
        for rule in self._read_corruptions:
            if rule.matches(name, category):
                rule.count -= 1
                if rule.count <= 0:
                    self._read_corruptions.remove(rule)
                return rule.apply(data)
        return data

    # -- crash imaging -------------------------------------------------------

    def crash_image(self, unsynced: str = "drop") -> MemoryVFS:
        """A fresh :class:`MemoryVFS` holding what survives power loss.

        ``unsynced`` picks the fate of appended-but-never-synced bytes:
        ``"drop"`` loses them all, ``"torn"`` keeps whole 4 KiB pages of the
        tail (a torn write), ``"keep"`` keeps everything.  Synced bytes and
        applied metadata operations always survive.
        """
        image = MemoryVFS()
        for name, file in self._files.items():
            image._files[name] = bytearray(
                file.data[:file.surviving_length(unsynced)])
        return image

    def reboot(self, unsynced: str = "drop") -> None:
        """Apply :meth:`crash_image` semantics in place and come back up."""
        for file in self._files.values():
            del file.data[file.surviving_length(unsynced):]
            file.durable = len(file.data)
        self.crashed = False
        self._fail_at = None
        # Transient read faults (in-flight EIO / controller corruption) do
        # not survive a reboot; stored bit rot and a full disk do.
        self._read_fail_at = None
        self._read_corruptions.clear()

    def durable_size(self, name: str) -> int:
        """Bytes of ``name`` guaranteed to survive a crash right now."""
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        return self._files[name].durable

    # -- VFS interface -------------------------------------------------------

    def create(self, name: str) -> WritableFile:
        self._mutate("create", name)
        file = _FaultedFile()
        self._files[name] = file
        return _FaultedWritable(self, name, file)

    def open_random(self, name: str) -> RandomAccessFile:
        self._read_op()
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        return _FaultedRandomAccess(self, name, self._files[name])

    def exists(self, name: str) -> bool:
        self._check_up()
        return name in self._files

    def delete(self, name: str) -> None:
        self._check_up()
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        self._mutate("delete", name)
        del self._files[name]

    def rename(self, old: str, new: str) -> None:
        self._check_up()
        if old not in self._files:
            raise NotFoundError(f"no such file: {old}")
        self._mutate("rename", new)
        self._files[new] = self._files.pop(old)

    def list_dir(self, prefix: str = "") -> list[str]:
        self._check_up()
        return sorted(name for name in self._files if name.startswith(prefix))

    def file_size(self, name: str) -> int:
        self._check_up()
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        return len(self._files[name].data)


class _FaultedWritable(WritableFile):
    def __init__(self, vfs: FaultInjectingVFS, name: str,
                 file: _FaultedFile) -> None:
        self._vfs = vfs
        self._name = name
        self._file = file
        self._closed = False

    def append(self, data: bytes, category: Category = Category.OTHER) -> None:
        if self._closed:
            raise ValueError(f"file already closed: {self._name}")
        self._vfs._mutate("append", self._name)
        self._file.data.extend(data)
        self._vfs.stats.record_write(len(data), category)

    def flush(self) -> None:
        return None  # library-buffer flush: no device visibility

    def sync(self) -> None:
        self._vfs._mutate("sync", self._name)
        self._file.durable = len(self._file.data)

    def close(self) -> None:
        # Closing is always safe (even post-crash): it promises no
        # durability, exactly like POSIX close(2) without fsync.
        self._closed = True

    @property
    def size(self) -> int:
        return len(self._file.data)


class _FaultedRandomAccess(RandomAccessFile):
    def __init__(self, vfs: FaultInjectingVFS, name: str,
                 file: _FaultedFile) -> None:
        self._vfs = vfs
        self._name = name
        self._file = file

    def read_at(self, offset: int, length: int,
                category: Category = Category.DATA,
                charge: bool = True) -> bytes:
        self._vfs._read_op()
        data = bytes(self._file.data[offset:offset + length])
        data = self._vfs._maybe_corrupt(self._name, category, data)
        if charge:
            self._vfs.stats.record_read(len(data), category)
        return data

    def close(self) -> None:
        return None

    @property
    def size(self) -> int:
        return len(self._file.data)


# -- crash-point enumeration -----------------------------------------------


def count_mutations(workload: Workload) -> int:
    """Run ``workload`` once, fault-free, and count its mutating operations.

    The engine is deterministic, so this count is stable across runs and
    defines the crash-point schedule for :func:`run_until_crash`.
    """
    vfs = FaultInjectingVFS()
    workload(vfs)
    return vfs.op_count


def crash_points(workload: Workload) -> range:
    """Every crash point of ``workload``: 1-based mutating-op indices."""
    return range(1, count_mutations(workload) + 1)


def run_until_crash(workload: Workload, at_op: int) -> FaultInjectingVFS:
    """Replay ``workload`` on a fresh VFS, crashing before op ``at_op``.

    Returns the crashed (or, if ``at_op`` lies beyond the workload's
    schedule, completed) filesystem; recover from
    :meth:`FaultInjectingVFS.crash_image`.
    """
    vfs = FaultInjectingVFS()
    vfs.schedule_crash(at_op)
    try:
        workload(vfs)
    except SimulatedCrashError:
        pass
    return vfs


# -- worker-process fault plumbing -------------------------------------------


@dataclass
class FaultPlan:
    """A predetermined fault schedule small enough to ship to a worker.

    :class:`FaultInjectingVFS` is interactive — tests arm it call by call —
    but a compaction worker process only ever receives one serialized job,
    so its faults must be decided up front.  Counters count *mutating*
    operations (appends, deletes, renames) against the wrapped VFS:

    ``fail_write_at``
        the N-th mutating op raises :class:`FaultInjectedError` (EIO).
    ``enospc_at``
        from the N-th mutating op onward, space-consuming ops raise
        :class:`OutOfSpaceError`.
    ``exit_at``
        the worker dies with ``os._exit(1)`` at the N-th mutating op — no
        exception propagation, no cleanup handlers: the SIGKILL-equivalent
        the coordinator's crash handling must absorb.
    """

    fail_write_at: int | None = None
    enospc_at: int | None = None
    exit_at: int | None = None

    def to_json(self) -> dict:
        return {"fail_write_at": self.fail_write_at,
                "enospc_at": self.enospc_at,
                "exit_at": self.exit_at}

    @classmethod
    def from_json(cls, doc: dict) -> "FaultPlan":
        return cls(fail_write_at=doc.get("fail_write_at"),
                   enospc_at=doc.get("enospc_at"),
                   exit_at=doc.get("exit_at"))


class PlannedFaultVFS(VFS):
    """Wrap any VFS and execute a :class:`FaultPlan` against it.

    Unlike :class:`FaultInjectingVFS` (a self-contained memory filesystem
    with crash imaging), this is a thin pass-through: it exists so worker
    processes can run real :class:`~repro.lsm.vfs.LocalVFS` I/O with
    deterministic faults injected mid-compaction.  Reads are never faulted
    here — read-fault drills stay in the coordinator where the containment
    machinery lives.
    """

    def __init__(self, base: VFS, plan: FaultPlan) -> None:
        super().__init__()
        self.base = base
        self.stats = base.stats
        self.plan = plan
        self.mutations = 0

    def _mutate(self, space_consuming: bool) -> None:
        self.mutations += 1
        plan = self.plan
        if plan.exit_at is not None and self.mutations >= plan.exit_at:
            os._exit(1)
        if plan.fail_write_at is not None \
                and self.mutations == plan.fail_write_at:
            raise FaultInjectedError(
                f"planned write fault at mutating op {self.mutations}")
        if plan.enospc_at is not None and space_consuming \
                and self.mutations >= plan.enospc_at:
            raise OutOfSpaceError(
                f"planned disk-full at mutating op {self.mutations}")

    def create(self, name: str) -> WritableFile:
        self._mutate(space_consuming=True)
        return _PlannedWritable(self, self.base.create(name))

    def open_random(self, name: str) -> RandomAccessFile:
        return self.base.open_random(name)

    def exists(self, name: str) -> bool:
        return self.base.exists(name)

    def delete(self, name: str) -> None:
        self._mutate(space_consuming=False)
        self.base.delete(name)

    def rename(self, old: str, new: str) -> None:
        self._mutate(space_consuming=False)
        self.base.rename(old, new)

    def list_dir(self, prefix: str = "") -> list[str]:
        return self.base.list_dir(prefix)

    def file_size(self, name: str) -> int:
        return self.base.file_size(name)


class _PlannedWritable(WritableFile):
    def __init__(self, vfs: PlannedFaultVFS, base: WritableFile) -> None:
        self._vfs = vfs
        self._base = base

    def append(self, data: bytes, category: Category = Category.OTHER) -> None:
        self._vfs._mutate(space_consuming=True)
        self._base.append(data, category)

    def flush(self) -> None:
        self._base.flush()

    def sync(self) -> None:
        self._vfs._mutate(space_consuming=True)
        self._base.sync()

    def close(self) -> None:
        self._base.close()

    @property
    def size(self) -> int:
        return self._base.size
