"""Posting-list codec and the Lazy index's merge operator."""

import pytest

from repro.core.posting import (
    PostingEntry,
    decode_posting_list,
    encode_posting_list,
    merge_fragments,
    normalize,
    posting_merge_operator,
    single_posting_fragment,
)
from repro.lsm.errors import CorruptionError


class TestCodec:
    def test_roundtrip(self):
        entries = [PostingEntry("t2", 9), PostingEntry("t1", 3),
                   PostingEntry("t0", 1, deleted=True)]
        assert decode_posting_list(encode_posting_list(entries)) == entries

    def test_empty_list(self):
        assert decode_posting_list(encode_posting_list([])) == []

    def test_single_fragment_helper(self):
        fragment = decode_posting_list(single_posting_fragment("t7", 42))
        assert fragment == [PostingEntry("t7", 42)]
        marker = decode_posting_list(
            single_posting_fragment("t7", 43, deleted=True))
        assert marker == [PostingEntry("t7", 43, deleted=True)]

    def test_bad_json(self):
        with pytest.raises(CorruptionError):
            decode_posting_list(b"{not json")

    def test_wrong_shape(self):
        with pytest.raises(CorruptionError):
            decode_posting_list(b'{"a": 1}')
        with pytest.raises(CorruptionError):
            decode_posting_list(b"[[1]]")


class TestNormalize:
    def test_dedup_newest_wins(self):
        entries = [PostingEntry("t1", 5), PostingEntry("t1", 9),
                   PostingEntry("t2", 1)]
        assert normalize(entries) == [PostingEntry("t1", 9),
                                      PostingEntry("t2", 1)]

    def test_marker_can_win(self):
        entries = [PostingEntry("t1", 5),
                   PostingEntry("t1", 9, deleted=True)]
        assert normalize(entries) == [PostingEntry("t1", 9, deleted=True)]

    def test_sorted_newest_first(self):
        entries = [PostingEntry("a", 1), PostingEntry("b", 9),
                   PostingEntry("c", 5)]
        assert [e.seq for e in normalize(entries)] == [9, 5, 1]


class TestMergeFragments:
    def test_union(self):
        merged = merge_fragments([
            [PostingEntry("t1", 1)],
            [PostingEntry("t2", 2)],
        ])
        assert merged == [PostingEntry("t2", 2), PostingEntry("t1", 1)]

    def test_marker_cancels_older_posting(self):
        merged = merge_fragments([
            [PostingEntry("t1", 1)],
            [PostingEntry("t1", 5, deleted=True)],
        ])
        assert merged == [PostingEntry("t1", 5, deleted=True)]

    def test_reinsert_after_marker(self):
        merged = merge_fragments([
            [PostingEntry("t1", 5, deleted=True)],
            [PostingEntry("t1", 9)],
        ])
        assert merged == [PostingEntry("t1", 9)]


class TestMergeOperator:
    def test_operator_folds_fragments(self):
        fragments = [single_posting_fragment("t1", 1),
                     single_posting_fragment("t2", 2),
                     single_posting_fragment("t1", 7)]
        merged = decode_posting_list(
            posting_merge_operator(b"u1", fragments))
        assert merged == [PostingEntry("t1", 7), PostingEntry("t2", 2)]

    def test_associativity(self):
        """Partial merges require (a . b) . c == a . (b . c)."""
        a = single_posting_fragment("x", 1)
        b = single_posting_fragment("y", 2, deleted=True)
        c = single_posting_fragment("x", 3)
        left = posting_merge_operator(
            b"k", [posting_merge_operator(b"k", [a, b]), c])
        right = posting_merge_operator(
            b"k", [a, posting_merge_operator(b"k", [b, c])])
        assert left == right
