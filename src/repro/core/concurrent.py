"""Thread safety: a synchronized wrapper around the facade.

The engine is deliberately single-threaded — the paper chose LevelDB
*because* "it is a single-threaded pure single-node key value store, so we
can easily isolate and explain the performance differences".  Flushes and
compactions run inline in the writing thread, and nothing in
:mod:`repro.lsm` takes locks.

Applications that want to share one database across threads wrap it in
:class:`ThreadSafeDB`: a re-entrant mutex serialises every operation, so
the single-threaded invariants hold while callers get a thread-safe
surface (coarse-grained, like SQLite's default mode — correctness first,
parallelism never).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.base import LookupResult
from repro.core.database import SecondaryIndexedDB
from repro.core.records import Document


class ThreadSafeDB:
    """Mutex-serialised view of a :class:`SecondaryIndexedDB`.

    Every public operation holds one re-entrant lock for its full
    duration, including any inline flush/compaction it triggers.  The
    wrapped database must not be used directly while the wrapper lives.
    """

    def __init__(self, inner: SecondaryIndexedDB) -> None:
        self._inner = inner
        self._lock = threading.RLock()

    # -- base operations ---------------------------------------------------------

    def put(self, key: str | bytes, document: Document) -> int:
        with self._lock:
            return self._inner.put(key, document)

    def get(self, key: str | bytes) -> Document | None:
        with self._lock:
            return self._inner.get(key)

    def delete(self, key: str | bytes) -> None:
        with self._lock:
            self._inner.delete(key)

    # -- secondary queries ---------------------------------------------------------

    def lookup(self, attribute: str, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        with self._lock:
            return self._inner.lookup(attribute, value, k,
                                      early_termination)

    def range_lookup(self, attribute: str, low: Any, high: Any,
                     k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        with self._lock:
            return self._inner.range_lookup(attribute, low, high, k,
                                            early_termination)

    # -- maintenance ----------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            self._inner.flush()

    def compact_all(self) -> None:
        with self._lock:
            self._inner.compact_all()

    def size_breakdown(self) -> dict[str, int]:
        with self._lock:
            return self._inner.size_breakdown()

    def total_size(self) -> int:
        with self._lock:
            return self._inner.total_size()

    def io_stats(self) -> dict[str, Any]:
        with self._lock:
            return self._inner.io_stats()

    def close(self) -> None:
        with self._lock:
            self._inner.close()

    def __enter__(self) -> "ThreadSafeDB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def inner(self) -> SecondaryIndexedDB:
        """The wrapped facade — for single-threaded inspection only."""
        return self._inner
