"""N-way shard replication with deterministic sequence replay.

A :class:`ReplicaSet` is one logical shard realised as ``replication_factor``
full copies of a :class:`~repro.core.database.SecondaryIndexedDB`.  Writes
fan out synchronously: the first live replica (the *leader* for that
operation) executes the write while a :class:`SequenceChannel` records the
sequence numbers it drew from the cluster oracle; every follower then
replays the same operation against the *recorded* allocation log, so all
replicas stamp the write with byte-identical sequence numbers.  The
follower's returned sequence is compared against the leader's — any drift
is a hard :class:`ReplicaDivergenceError`, not a silent fork.

Reads are served by the first live replica and fail over past downed ones.
A replica that was down while writes were acked comes back ``stale``;
read-repair reseeds it from the leader via the checkpoint machinery
(:meth:`SecondaryIndexedDB.checkpoint` copies immutable SSTables plus a
fresh self-contained manifest) before it serves again.

The same channel log powers migration (:mod:`repro.dist.migration`): a
journaled write carries its leader's allocation log, so replaying the WAL
tail onto a destination shard reproduces the exact sequence numbers the
source assigned — cross-shard top-K merges stay exact through a split.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Any, Callable, Iterable, Mapping

from repro.core.base import IndexKind, LookupResult
from repro.core.database import SecondaryIndexedDB
from repro.core.records import Document
from repro.lsm.errors import InvalidArgumentError, LSMError
from repro.lsm.options import Options
from repro.lsm.vfs import VFS

#: Replica lifecycle states.
UP = "up"
DOWN = "down"
STALE = "stale"


class ReplicationError(LSMError):
    """Base class for replication failures."""


class NoReplicaError(ReplicationError):
    """Every replica of a shard is down; the operation cannot be acked."""


class ReplicaDivergenceError(ReplicationError):
    """A replica produced a different sequence than its leader recorded."""


class SequenceChannel:
    """Record/replay virtualisation of the cluster sequence oracle.

    Each replica group owns one channel wired in as its databases'
    ``Options.sequence_oracle``.  In *record* mode allocations pass through
    to the real oracle and are logged as ``(count, first)`` pairs; in
    *replay* mode allocations are answered from a previously recorded log
    without touching the oracle at all.  Outside both modes the channel is
    a transparent pass-through, so a ``replication_factor=1`` group
    allocates exactly like the pre-replication cluster did.
    """

    def __init__(self, base_allocate: Callable[[int], int]) -> None:
        self._base = base_allocate
        self._recording: list[tuple[int, int]] | None = None
        self._replaying: deque[tuple[int, int]] | None = None

    def allocate(self, count: int) -> int:
        if self._replaying is not None:
            if not self._replaying:
                raise ReplicaDivergenceError(
                    "replica drew more sequence allocations than its "
                    "leader recorded")
            logged_count, first = self._replaying.popleft()
            if logged_count != count:
                raise ReplicaDivergenceError(
                    f"replica asked for {count} sequences where its leader "
                    f"recorded {logged_count}")
            return first
        first = self._base(count)
        if self._recording is not None:
            self._recording.append((count, first))
        return first

    def start_record(self) -> None:
        self._recording = []

    def finish_record(self) -> tuple[tuple[int, int], ...]:
        log = tuple(self._recording or ())
        self._recording = None
        return log

    def start_replay(self, log: Iterable[tuple[int, int]]) -> None:
        self._replaying = deque(log)

    def finish_replay(self) -> None:
        leftover = self._replaying
        self._replaying = None
        if leftover:
            raise ReplicaDivergenceError(
                f"replica drew {len(leftover)} fewer sequence allocations "
                f"than its leader recorded")

    def abandon(self) -> None:
        """Drop any in-progress record/replay (error-path cleanup)."""
        self._recording = None
        self._replaying = None


class Replica:
    """One physical copy of a shard: a database plus its lifecycle state."""

    __slots__ = ("replica_id", "vfs", "db", "state", "applied")

    def __init__(self, replica_id: int, vfs: VFS | None,
                 db: SecondaryIndexedDB) -> None:
        self.replica_id = replica_id
        #: The replica's private filesystem (``None`` for the legacy
        #: RF=1 in-memory layout, which cannot be killed and revived).
        self.vfs = vfs
        self.db = db
        self.state = UP
        #: Group operations this replica has applied (staleness bookkeeping).
        self.applied = 0


class ReplicaSet:
    """``replication_factor`` synchronous copies of one logical shard.

    Duck-types the slice of :class:`SecondaryIndexedDB` the cluster facade
    uses (put/get/delete/lookup/range_lookup/scan/heal_indexes/...), so
    ``ShardedDB`` routes to replica groups exactly as it used to route to
    bare shards.
    """

    def __init__(self, shard_id: int, name: str, replicas: list[Replica],
                 channel: SequenceChannel, indexes: Mapping[str, IndexKind],
                 options: Options,
                 step_hook: Callable[[str], None] | None = None) -> None:
        self.shard_id = shard_id
        self.name = name
        self.replicas = replicas
        self.channel = channel
        self.indexes = dict(indexes)
        self.options = options
        self.step_hook = step_hook
        #: Group write operations acked so far.
        self.ops_applied = 0
        #: Reads that had to route past a downed first replica.
        self.failover_reads = 0
        #: Stale replicas reseeded on the read path.
        self.read_repairs = 0
        #: Allocation log of the most recent acked write (for journaling).
        self.last_alloc_log: tuple[tuple[int, int], ...] = ()

    # -- construction ------------------------------------------------------

    @classmethod
    def open_legacy(cls, shard_id: int, indexes: Mapping[str, IndexKind],
                    options: Options, channel: SequenceChannel,
                    step_hook: Callable[[str], None] | None = None
                    ) -> "ReplicaSet":
        """The pre-replication layout: one in-memory replica whose index
        tables each sit on their own metered VFS (the paper's per-table
        I/O accounting).  Behaviour-identical to the old static ring."""
        name = f"shard-{shard_id}"
        db = SecondaryIndexedDB.open_memory(indexes=indexes, options=options,
                                            name=name)
        return cls(shard_id, name, [Replica(0, None, db)], channel,
                   indexes, options, step_hook)

    @classmethod
    def open_replicated(cls, shard_id: int, vfs_list: list[VFS],
                        indexes: Mapping[str, IndexKind], options: Options,
                        channel: SequenceChannel,
                        step_hook: Callable[[str], None] | None = None,
                        name: str | None = None) -> "ReplicaSet":
        """Open one replica per VFS (shared by that replica's tables so the
        whole copy can be checkpoint-reseeded and reopened).  A VFS that
        already holds a checkpoint recovers it — migration uses this to
        open destination replicas over shipped SSTables."""
        name = name or f"shard-{shard_id}"
        replicas = []
        for replica_id, vfs in enumerate(vfs_list):
            db = SecondaryIndexedDB.open(vfs, name, indexes, options)
            replicas.append(Replica(replica_id, vfs, db))
        return cls(shard_id, name, replicas, channel, indexes, options,
                   step_hook)

    # -- scheduling --------------------------------------------------------

    def _hook(self, label: str) -> None:
        if self.step_hook is not None:
            self.step_hook(label)

    # -- replica selection -------------------------------------------------

    def _replica(self, replica_id: int) -> Replica:
        for replica in self.replicas:
            if replica.replica_id == replica_id:
                return replica
        raise InvalidArgumentError(
            f"shard {self.shard_id} has no replica {replica_id}")

    def _serving(self) -> Replica:
        for replica in self.replicas:
            if replica.state == UP:
                if replica is not self.replicas[0]:
                    self.failover_reads += 1
                return replica
        raise NoReplicaError(
            f"shard {self.shard_id}: no live replica to serve reads")

    def _read_replica(self) -> Replica:
        for replica in self.replicas:
            if replica.state == STALE:
                self.reseed(replica)
                self.read_repairs += 1
        return self._serving()

    @property
    def primary(self):
        """The serving replica's primary table (GSI rebuild + validation)."""
        return self._serving().db.primary

    @property
    def checker(self):
        return self._serving().db.checker

    # -- write fan-out -----------------------------------------------------

    def put(self, key: bytes, document: Document,
            on_commit: Callable[[int, tuple[tuple[int, int], ...]], None]
            | None = None) -> int:
        return self._apply("put", key, document, hooked=True,
                           on_commit=on_commit)

    def delete(self, key: bytes,
               on_commit: Callable[[int, tuple[tuple[int, int], ...]], None]
               | None = None) -> int:
        return self._apply("delete", key, None, hooked=True,
                           on_commit=on_commit)

    def apply_local(self, op: str, key: bytes,
                    document: Document | None) -> int:
        """Internal write (migration cleanup): fan out without yield
        points, so a whole batch stays one atomic step under the
        deterministic scheduler."""
        return self._apply(op, key, document, hooked=False)

    def _invoke(self, replica: Replica, op: str, key: bytes,
                document: Document | None) -> int:
        if op == "put":
            return replica.db.put(key, document)
        if op == "delete":
            return replica.db.delete(key)
        raise InvalidArgumentError(f"unknown replicated op {op!r}")

    def _apply(self, op: str, key: bytes, document: Document | None,
               hooked: bool,
               on_commit: Callable[[int, tuple[tuple[int, int], ...]], None]
               | None = None) -> int:
        result: int | None = None
        log: tuple[tuple[int, int], ...] | None = None
        try:
            for replica in self.replicas:
                if replica.state != UP:
                    continue
                if hooked:
                    self._hook(f"repl:{op}:s{self.shard_id}:r"
                               f"{replica.replica_id}")
                    if replica.state != UP:
                        continue  # killed at the yield point just above
                if log is None:
                    self.channel.start_record()
                    result = self._invoke(replica, op, key, document)
                    log = self.channel.finish_record()
                else:
                    self.channel.start_replay(log)
                    echoed = self._invoke(replica, op, key, document)
                    self.channel.finish_replay()
                    if echoed != result:
                        raise ReplicaDivergenceError(
                            f"shard {self.shard_id} replica "
                            f"{replica.replica_id}: {op} returned seq "
                            f"{echoed}, leader recorded {result}")
                replica.applied += 1
        except BaseException:
            self.channel.abandon()
            raise
        if log is None:
            raise NoReplicaError(
                f"shard {self.shard_id}: no live replica; {op} not acked")
        self.ops_applied += 1
        self.last_alloc_log = log
        if on_commit is not None:
            # Runs inside the commit's atomic chunk, *before* the ack
            # yield point: a migration journaling this write can never
            # observe a committed-but-unjournaled gap.
            on_commit(result, log)
        if hooked:
            self._hook(f"repl:ack:s{self.shard_id}")
        return result  # type: ignore[return-value]

    def apply_replayed(self, op: str, key: bytes,
                       document: Document | None,
                       alloc_log: tuple[tuple[int, int], ...],
                       expected_seq: int) -> int:
        """Replay a journaled write (migration WAL tail) on every live
        replica against the originating leader's allocation log."""
        applied = False
        try:
            for replica in self.replicas:
                if replica.state != UP:
                    continue
                self.channel.start_replay(alloc_log)
                seq = self._invoke(replica, op, key, document)
                self.channel.finish_replay()
                if seq != expected_seq:
                    raise ReplicaDivergenceError(
                        f"shard {self.shard_id} replica "
                        f"{replica.replica_id}: replayed {op} returned seq "
                        f"{seq}, journal recorded {expected_seq}")
                replica.applied += 1
                applied = True
        except BaseException:
            self.channel.abandon()
            raise
        if not applied:
            raise NoReplicaError(
                f"shard {self.shard_id}: no live replica for replay")
        self.ops_applied += 1
        return expected_seq

    # -- reads -------------------------------------------------------------

    def get(self, key: bytes) -> Document | None:
        return self._read_replica().db.get(key)

    def get_with_seq(self, key: bytes) -> tuple[bytes, int] | None:
        return self._read_replica().db.primary.get_with_seq(key)

    def lookup(self, attribute: str, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        return self._read_replica().db.lookup(attribute, value, k,
                                              early_termination)

    def range_lookup(self, attribute: str, low: Any, high: Any,
                     k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        return self._read_replica().db.range_lookup(attribute, low, high, k,
                                                    early_termination)

    def scan(self, low=None, high=None):
        return self._read_replica().db.scan(low, high)

    # -- failure & repair --------------------------------------------------

    def kill(self, replica_id: int) -> None:
        """Simulate abrupt replica loss: the process dies, its filesystem
        (when it has one) keeps whatever was durably applied."""
        replica = self._replica(replica_id)
        if replica.state == DOWN:
            raise InvalidArgumentError(
                f"shard {self.shard_id} replica {replica_id} already down")
        replica.state = DOWN
        try:
            replica.db.close()
        except Exception:  # noqa: BLE001 - dying replicas close best-effort
            pass

    def revive(self, replica_id: int) -> str:
        """Restart a downed replica from its surviving files (WAL replay
        runs inside ``open``).  Returns the resulting state: ``up`` when
        it missed nothing, ``stale`` when writes were acked without it —
        a stale replica is reseeded before it serves (read repair) and
        never votes in a write fan-out."""
        replica = self._replica(replica_id)
        if replica.state != DOWN:
            raise InvalidArgumentError(
                f"shard {self.shard_id} replica {replica_id} is not down")
        if replica.vfs is None:
            raise InvalidArgumentError(
                f"shard {self.shard_id} replica {replica_id} has no "
                f"durable filesystem to revive from")
        replica.db = SecondaryIndexedDB.open(replica.vfs, self.name,
                                             self.indexes, self.options)
        replica.state = UP if replica.applied == self.ops_applied else STALE
        return replica.state

    def reseed(self, replica: Replica) -> None:
        """Rebuild one replica as a byte-faithful copy of the leader.

        The leader's checkpoint ships its immutable SSTables plus a fresh
        manifest; internal sequence numbers are preserved exactly, so the
        reseeded replica answers every query identically to the leader and
        rejoins the write fan-out with the group's applied count."""
        source = None
        for candidate in self.replicas:
            if candidate is not replica and candidate.state == UP:
                source = candidate
                break
        if source is None:
            raise NoReplicaError(
                f"shard {self.shard_id}: no live replica to reseed "
                f"replica {replica.replica_id} from")
        if replica.vfs is None:
            raise InvalidArgumentError(
                f"shard {self.shard_id} replica {replica.replica_id} has "
                f"no durable filesystem to reseed")
        if replica.state != DOWN:
            try:
                replica.db.close()
            except Exception:  # noqa: BLE001 - superseded copy
                pass
        for name in list(replica.vfs.list_dir(self.name + "/")):
            replica.vfs.delete_if_exists(name)
        source.db.checkpoint(replica.vfs, self.name)
        replica.db = SecondaryIndexedDB.open(replica.vfs, self.name,
                                             self.indexes, self.options)
        replica.state = UP
        replica.applied = self.ops_applied

    def repair(self) -> list[int]:
        """Reseed every stale (revived-but-behind) replica; returns the
        replica ids repaired."""
        repaired = []
        for replica in self.replicas:
            if replica.state == STALE:
                self.reseed(replica)
                repaired.append(replica.replica_id)
        return repaired

    # -- anti-entropy ------------------------------------------------------

    def content_digest(self, replica: Replica) -> str:
        """Order-sensitive digest of the replica's live records + seqs."""
        hasher = hashlib.blake2b(digest_size=16)
        for key, value, seq in replica.db.primary.scan_with_seq():
            hasher.update(len(key).to_bytes(4, "big"))
            hasher.update(key)
            hasher.update(len(value).to_bytes(4, "big"))
            hasher.update(value)
            hasher.update(seq.to_bytes(8, "big"))
        return hasher.hexdigest()

    def replica_digests(self) -> dict[int, str]:
        return {replica.replica_id: self.content_digest(replica)
                for replica in self.replicas if replica.state != DOWN}

    def anti_entropy(self, block_budget: int | None = None) -> dict:
        """Scrub every live replica, then reseed any copy that diverged.

        The write-fan-out leader (first UP replica) is authoritative: its
        checkpoint overwrites any replica whose scrub found problems or
        whose content digest disagrees.  Returns a summary dict."""
        summary: dict[str, Any] = {"scrub_problems": [], "reseeded": []}
        for replica in self.replicas:
            if replica.state != UP:
                continue
            reports = self.scrub_replica(replica, block_budget)
            for table, report in reports.items():
                for problem in report.problems:
                    summary["scrub_problems"].append(
                        f"r{replica.replica_id}:{table}: {problem}")
        leader = self._serving()
        leader_digest = self.content_digest(leader)
        for replica in self.replicas:
            if replica is leader or replica.state == DOWN:
                continue
            if (replica.state == STALE
                    or replica.db.primary.quarantined_tables()
                    or self.content_digest(replica) != leader_digest):
                self.reseed(replica)
                summary["reseeded"].append(replica.replica_id)
        return summary

    def scrub_replica(self, replica: Replica,
                      block_budget: int | None = None) -> dict:
        """Run the PR 4 scrubber over one replica's tables."""
        reports = {"primary": replica.db.primary.scrub(block_budget)}
        for attribute, index in replica.db.indexes.items():
            index_db = getattr(index, "index_db", None)
            if index_db is not None:
                reports[f"index:{attribute}"] = index_db.scrub(block_budget)
        return reports

    # -- maintenance plumbing (cluster facade surface) ---------------------

    def heal_indexes(self) -> dict[str, int]:
        healed: dict[str, int] = {}
        for replica in self.replicas:
            if replica.state != UP:
                continue
            for attribute, replayed in replica.db.heal_indexes().items():
                healed[attribute] = max(healed.get(attribute, 0), replayed)
        return healed

    def flush(self) -> None:
        for replica in self.replicas:
            if replica.state == UP:
                replica.db.flush()

    def verify_integrity(self) -> dict[str, Any]:
        """Integrity reports for every live replica's tables."""
        reports: dict[str, Any] = {}
        for replica in self.replicas:
            if replica.state == DOWN:
                continue
            for table, report in replica.db.verify_integrity().items():
                reports[f"r{replica.replica_id}:{table}"] = report
        return reports

    def total_size(self) -> int:
        return self._serving().db.total_size()

    def status(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "replicas": [{"replica_id": replica.replica_id,
                          "state": replica.state,
                          "applied": replica.applied}
                         for replica in self.replicas],
            "ops_applied": self.ops_applied,
            "failover_reads": self.failover_reads,
            "read_repairs": self.read_repairs,
        }

    def close(self) -> None:
        for replica in self.replicas:
            if replica.state == DOWN:
                continue
            try:
                replica.db.close()
            except Exception:  # noqa: BLE001 - closing a faulted replica
                pass
