"""SSTables: build/read roundtrips, pruning metadata, corruption handling."""

import json

import pytest

from repro.lsm.bloom import bloom_may_contain
from repro.lsm.compression import NoCompression, ZlibCompression
from repro.lsm.errors import CorruptionError
from repro.lsm.keys import (
    KIND_DELETE,
    KIND_VALUE,
    MAX_SEQUENCE,
    pack_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import SSTable, TableBuilder
from repro.lsm.vfs import Category, MemoryVFS
from repro.lsm.zonemap import encode_attribute


def _build_table(entries, options=None, vfs=None, name="t.ldb"):
    """entries: list of (user_key, seq, kind, value_bytes)."""
    options = options or Options(block_size=512, compression="none")
    vfs = vfs or MemoryVFS()
    out = vfs.create(name)
    builder = TableBuilder(options, out, NoCompression()
                           if options.compression == "none"
                           else ZlibCompression())
    for user_key, seq, kind, value in entries:
        builder.add(pack_internal_key(user_key, seq, kind), value)
    props = builder.finish()
    out.close()
    table = SSTable(options, vfs.open_random(name))
    return table, props, vfs


def _tweet(user, pad=40):
    return json.dumps({"UserID": user, "Body": "x" * pad}).encode()


class TestRoundtrip:
    def test_iterate_all(self):
        entries = [(f"k{i:04d}".encode(), i + 1, KIND_VALUE,
                    f"v{i}".encode()) for i in range(200)]
        table, props, _vfs = _build_table(entries)
        got = [(ik.user_key, ik.seq, ik.kind, v) for ik, v in table]
        assert got == entries
        assert props.num_entries == 200
        assert props.num_data_blocks == table.num_data_blocks > 1

    def test_properties(self):
        entries = [(b"aaa", 7, KIND_VALUE, b"1"), (b"zzz", 3, KIND_VALUE, b"2")]
        _table, props, _vfs = _build_table(entries)
        assert props.min_seq == 3 and props.max_seq == 7
        assert props.smallest == pack_internal_key(b"aaa", 7, KIND_VALUE)
        assert props.largest == pack_internal_key(b"zzz", 3, KIND_VALUE)
        assert props.file_size > 0

    def test_compressed_roundtrip(self):
        options = Options(block_size=512, compression="zlib")
        entries = [(f"k{i:04d}".encode(), i + 1, KIND_VALUE, b"v" * 50)
                   for i in range(100)]
        table, _props, _vfs = _build_table(entries, options)
        assert [(ik.user_key, v) for ik, v in table] == \
            [(k, v) for k, _s, _kd, v in entries]

    def test_compression_shrinks_file(self):
        entries = [(f"k{i:04d}".encode(), i + 1, KIND_VALUE, b"abab" * 40)
                   for i in range(100)]
        _t1, props_raw, _ = _build_table(
            entries, Options(block_size=512, compression="none"))
        _t2, props_zip, _ = _build_table(
            entries, Options(block_size=512, compression="zlib"))
        assert props_zip.file_size < props_raw.file_size


class TestVersionLookups:
    def test_versions_newest_first(self):
        entries = [(b"k", 9, KIND_VALUE, b"new"),
                   (b"k", 4, KIND_VALUE, b"old")]
        table, _props, _vfs = _build_table(entries)
        got = list(table.versions(b"k", MAX_SEQUENCE))
        assert [(ik.seq, v) for ik, v in got] == [(9, b"new"), (4, b"old")]

    def test_versions_snapshot_bound(self):
        entries = [(b"k", 9, KIND_VALUE, b"new"),
                   (b"k", 4, KIND_VALUE, b"old")]
        table, _props, _vfs = _build_table(entries)
        got = list(table.versions(b"k", max_seq=5))
        assert [(ik.seq, v) for ik, v in got] == [(4, b"old")]

    def test_versions_absent_key_no_io(self):
        entries = [(f"k{i:03d}".encode(), i + 1, KIND_VALUE, b"v" * 30)
                   for i in range(300)]
        table, _props, vfs = _build_table(entries)
        before = vfs.stats.read_blocks
        assert list(table.versions(b"k050x", MAX_SEQUENCE)) == []
        # Bloom filters answer from memory; no data block should be read.
        assert vfs.stats.read_blocks == before

    def test_versions_spanning_blocks(self):
        # Many versions of one key straddle multiple 512-byte blocks.
        entries = [(b"hot", seq, KIND_VALUE, b"v" * 60)
                   for seq in range(120, 0, -1)]
        table, _props, _vfs = _build_table(entries)
        assert table.num_data_blocks > 1
        got = list(table.versions(b"hot", MAX_SEQUENCE))
        assert [ik.seq for ik, _v in got] == list(range(120, 0, -1))

    def test_tombstones_visible(self):
        entries = [(b"k", 5, KIND_DELETE, b""), (b"k", 2, KIND_VALUE, b"v")]
        table, _props, _vfs = _build_table(entries)
        got = list(table.versions(b"k", MAX_SEQUENCE))
        assert got[0][0].kind == KIND_DELETE

    def test_iterate_from(self):
        entries = [(f"k{i:03d}".encode(), 1, KIND_VALUE, b"") for i in range(50)]
        table, _props, _vfs = _build_table(entries)
        start = pack_internal_key(b"k025", MAX_SEQUENCE, KIND_VALUE)
        got = [ik.user_key for ik, _v in table.iterate_from(start)]
        assert got == [f"k{i:03d}".encode() for i in range(25, 50)]

    def test_may_contain_user_key(self):
        entries = [(f"k{i:03d}".encode(), 1, KIND_VALUE, b"x" * 30)
                   for i in range(200)]
        table, _props, vfs = _build_table(entries)
        before = vfs.stats.read_blocks
        assert table.may_contain_user_key(b"k100")
        hits = sum(1 for i in range(1000)
                   if table.may_contain_user_key(f"zz{i}".encode()))
        assert hits <= 20  # bloom false positives only
        assert vfs.stats.read_blocks == before  # purely in-memory


class TestEmbeddedMetadata:
    """The paper's Figure 3: secondary filters + zone maps per block."""

    def _indexed_table(self):
        options = Options(block_size=512, compression="none",
                          indexed_attributes=("UserID",))
        entries = [(f"t{i:04d}".encode(), i + 1, KIND_VALUE,
                    _tweet(f"u{i % 10}")) for i in range(150)]
        return _build_table(entries, options)

    def test_secondary_filters_built_per_block(self):
        table, _props, _vfs = self._indexed_table()
        assert len(table.secondary_filters["UserID"]) == table.num_data_blocks
        assert len(table.secondary_zonemaps["UserID"]) == table.num_data_blocks

    def test_secondary_bloom_finds_present_values(self):
        table, _props, _vfs = self._indexed_table()
        encoded = encode_attribute("u3")
        positives = sum(
            1 for blob in table.secondary_filters["UserID"]
            if bloom_may_contain(blob, encoded))
        assert positives > 0

    def test_secondary_bloom_prunes_absent_values(self):
        table, _props, _vfs = self._indexed_table()
        encoded = encode_attribute("nobody")
        positives = sum(
            1 for blob in table.secondary_filters["UserID"]
            if bloom_may_contain(blob, encoded))
        assert positives == 0  # 100 bits/key: fp essentially impossible

    def test_file_level_zonemap(self):
        _table, props, _vfs = self._indexed_table()
        zone = props.secondary_zonemaps["UserID"]
        assert zone.contains(encode_attribute("u0"))
        assert zone.contains(encode_attribute("u9"))
        assert not zone.contains(encode_attribute("zz"))

    def test_tombstones_not_indexed(self):
        options = Options(block_size=512, compression="none",
                          indexed_attributes=("UserID",))
        entries = [(b"t1", 2, KIND_DELETE, b""),
                   (b"t2", 1, KIND_VALUE, _tweet("u1"))]
        _table, props, _vfs = _build_table(entries, options)
        zone = props.secondary_zonemaps["UserID"]
        assert zone.contains(encode_attribute("u1"))

    def test_non_json_values_skip_extraction(self):
        options = Options(block_size=512, compression="none",
                          indexed_attributes=("UserID",))
        entries = [(b"t1", 1, KIND_VALUE, b"\xff\xfe not json")]
        _table, props, _vfs = _build_table(entries, options)
        assert props.secondary_zonemaps["UserID"].is_empty


class TestCorruption:
    def test_bad_footer(self):
        vfs = MemoryVFS()
        vfs.write_whole("bad.ldb", b"\x00" * 100)
        with pytest.raises(CorruptionError):
            SSTable(Options(), vfs.open_random("bad.ldb"))

    def test_flipped_data_block_detected_with_paranoid_checks(self):
        options = Options(block_size=512, compression="none",
                          paranoid_checks=True)
        entries = [(f"k{i:03d}".encode(), 1, KIND_VALUE, b"v" * 40)
                   for i in range(50)]
        vfs = MemoryVFS()
        out = vfs.create("t.ldb")
        builder = TableBuilder(options, out, NoCompression())
        for user_key, seq, kind, value in entries:
            builder.add(pack_internal_key(user_key, seq, kind), value)
        builder.finish()
        out.close()
        vfs._files["t.ldb"][10] ^= 0xFF  # corrupt first data block
        table = SSTable(options, vfs.open_random("t.ldb"))
        with pytest.raises(CorruptionError):
            table.read_data_block(0, Category.DATA)

    def test_builder_finish_twice(self):
        options = Options(block_size=512, compression="none")
        vfs = MemoryVFS()
        out = vfs.create("t.ldb")
        builder = TableBuilder(options, out, NoCompression())
        builder.add(pack_internal_key(b"k", 1, KIND_VALUE), b"v")
        builder.finish()
        with pytest.raises(ValueError):
            builder.finish()
        with pytest.raises(ValueError):
            builder.add(pack_internal_key(b"z", 2, KIND_VALUE), b"v")
