"""Leveled vs full-level (AsterixDB-style) compaction."""

import random

import pytest

from repro.lsm.db import DB
from repro.lsm.options import Options


def _options(style, **overrides):
    base = dict(block_size=512, sstable_target_size=2 * 1024,
                memtable_budget=2 * 1024, l1_target_size=8 * 1024,
                compression="none", compaction_style=style)
    base.update(overrides)
    return Options(**base)


def _load(db, count, seed=1):
    rng = random.Random(seed)
    model = {}
    for _ in range(count):
        key = f"k{rng.randrange(count // 2):05d}".encode()
        value = (f"v{rng.randrange(10)}" * 15).encode()
        db.put(key, value)
        model[key] = value
    return model


class TestFullLevelCorrectness:
    def test_matches_dict_model(self):
        db = DB.open_memory(_options("full_level"))
        model = _load(db, 1500)
        assert dict(db.scan()) == model
        for key, value in list(model.items())[:100]:
            assert db.get(key) == value
        db.close()

    def test_deletes_and_overwrites(self):
        db = DB.open_memory(_options("full_level"))
        model = _load(db, 800)
        for key in list(model)[::3]:
            db.delete(key)
            del model[key]
        assert dict(db.scan()) == model
        db.compact_range()
        assert dict(db.scan()) == model
        db.close()

    def test_recovery(self):
        from repro.lsm.vfs import MemoryVFS

        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options("full_level"))
        model = _load(db, 1000)
        db.close()
        db2 = DB.open(vfs, "db", _options("full_level"))
        assert dict(db2.scan()) == model
        db2.close()

    def test_both_styles_agree(self):
        leveled = DB.open_memory(_options("leveled"))
        full = DB.open_memory(_options("full_level"))
        model_a = _load(leveled, 1200, seed=4)
        model_b = _load(full, 1200, seed=4)
        assert model_a == model_b
        assert dict(leveled.scan()) == dict(full.scan())
        leveled.close()
        full.close()


class TestFullLevelShape:
    def test_whole_level_merges(self):
        """Full-level compactions consume every file of the input level."""
        db = DB.open_memory(_options("full_level"))
        _load(db, 2000)
        # After any compaction cascade settles, no level both exceeds its
        # budget and retains files (leveled mode can leave a level half
        # compacted between rounds; full-level cannot).
        version = db.versions.current
        for level in range(1, db.options.max_levels - 1):
            size = version.level_size(level)
            assert size <= db.options.max_bytes_for_level(level)
        db.close()

    def test_full_level_merges_are_fewer_and_larger(self):
        """The styles differ in granularity: whole-level merges are rarer
        but move more bytes each (the LevelDB-vs-AsterixDB contrast of the
        paper's Section 1)."""
        leveled = DB.open_memory(_options("leveled"))
        full = DB.open_memory(_options("full_level"))
        _load(leveled, 2500, seed=9)
        _load(full, 2500, seed=9)
        leveled_stats = leveled.compactor.stats
        full_stats = full.compactor.stats
        assert full_stats.compaction_count < leveled_stats.compaction_count
        leveled_avg = leveled_stats.bytes_compacted_in \
            / max(1, leveled_stats.compaction_count)
        full_avg = full_stats.bytes_compacted_in \
            / max(1, full_stats.compaction_count)
        assert full_avg > leveled_avg
        leveled.close()
        full.close()

    def test_invalid_style_rejected(self):
        with pytest.raises(ValueError):
            Options(compaction_style="tiered")
