"""Quickstart: a key-value store with secondary indexes in ten lines.

Run with::

    python examples/quickstart.py
"""

from repro import IndexKind, SecondaryIndexedDB


def main() -> None:
    # Open an in-memory database with two secondary indexes: a Lazy
    # (Cassandra-style) index on user_id and an Embedded (bloom filter +
    # zone map) index on created_at.
    db = SecondaryIndexedDB.open_memory(indexes={
        "user_id": IndexKind.LAZY,
        "created_at": IndexKind.EMBEDDED,
    })

    # PUT: documents are plain dicts; secondary attributes live inside.
    db.put("tweet-1", {"user_id": "alice", "created_at": 100,
                       "text": "hello world"})
    db.put("tweet-2", {"user_id": "bob", "created_at": 105,
                       "text": "hi alice"})
    db.put("tweet-3", {"user_id": "alice", "created_at": 110,
                       "text": "hi bob"})

    # GET on the primary key.
    print("GET tweet-2:", db.get("tweet-2"))

    # LOOKUP on a secondary attribute: K most recent matches.
    print("\nalice's tweets, newest first:")
    for result in db.lookup("user_id", "alice", k=10):
        print(f"  {result.key}: {result.document['text']}")

    # RANGELOOKUP on a secondary attribute.
    print("\ntweets created in [100, 106]:")
    for result in db.range_lookup("created_at", 100, 106):
        print(f"  {result.key} @ {result.document['created_at']}")

    # Updates keep every index consistent: alice hands tweet-1 to carol.
    db.put("tweet-1", {"user_id": "carol", "created_at": 100,
                       "text": "hello world"})
    print("\nafter the update, alice has:",
          [r.key for r in db.lookup("user_id", "alice")])
    print("and carol has:", [r.key for r in db.lookup("user_id", "carol")])

    # DELETE removes the record and its index entries.
    db.delete("tweet-3")
    print("after deleting tweet-3, alice has:",
          [r.key for r in db.lookup("user_id", "alice")])

    # Storage accounting per table.
    db.flush()
    print("\nsize breakdown (bytes):", db.size_breakdown())
    db.close()


if __name__ == "__main__":
    main()
