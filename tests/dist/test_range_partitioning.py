"""Range-partitioned global secondary indexes."""

import pytest

from repro.dist.cluster import ShardedDB
from repro.dist.partitioner import HashPartitioner, RangePartitioner
from repro.lsm.errors import InvalidArgumentError
from repro.lsm.options import Options
from repro.lsm.zonemap import encode_attribute


def _options():
    return Options(block_size=1024, sstable_target_size=4 * 1024,
                   memtable_budget=4 * 1024, l1_target_size=16 * 1024)


class TestRangePartitioner:
    def test_shard_boundaries(self):
        splits = [encode_attribute(value) for value in ("g", "p")]
        partitioner = RangePartitioner(splits)
        assert partitioner.num_shards == 3
        assert partitioner.shard_of(encode_attribute("a")) == 0
        assert partitioner.shard_of(encode_attribute("g")) == 1  # inclusive
        assert partitioner.shard_of(encode_attribute("m")) == 1
        assert partitioner.shard_of(encode_attribute("z")) == 2

    def test_overlapping_shards(self):
        splits = [encode_attribute(value) for value in ("g", "p")]
        partitioner = RangePartitioner(splits)
        overlap = partitioner.shards_overlapping(
            encode_attribute("a"), encode_attribute("f"))
        assert overlap == [0]
        overlap = partitioner.shards_overlapping(
            encode_attribute("h"), encode_attribute("z"))
        assert overlap == [1, 2]
        assert partitioner.shards_overlapping(
            encode_attribute("z"), encode_attribute("a")) == []

    def test_hash_partitioner_ranges_scatter(self):
        partitioner = HashPartitioner(4)
        assert partitioner.shards_overlapping(b"a", b"b") == [0, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            RangePartitioner([b"b", b"a"])
        with pytest.raises(ValueError):
            RangePartitioner([b"a", b"a"])


class TestRangePartitionedGSI:
    def _cluster(self):
        return ShardedDB.open_memory(
            num_shards=3, global_indexes=("UserID",),
            global_split_points={"UserID": ["u010", "u020"]},
            options=_options())

    def _load(self, cluster, count=200):
        state = {}
        for i in range(count):
            doc = {"UserID": f"u{i % 30:03d}"}
            key = f"t{i:05d}"
            cluster.put(key, doc)
            state[key] = doc
        return state

    def test_lookup_correct(self):
        cluster = self._cluster()
        state = self._load(cluster)
        for user_index in (0, 10, 15, 25):
            value = f"u{user_index:03d}"
            got = {r.key for r in cluster.lookup(
                "UserID", value, early_termination=False)}
            want = {key for key, doc in state.items()
                    if doc["UserID"] == value}
            assert got == want
        cluster.close()

    def test_range_contacts_only_overlapping_shards(self):
        cluster = self._cluster()
        state = self._load(cluster)
        gsi = cluster.global_indexes["UserID"]
        gsi.shards_contacted = 0
        got = {r.key for r in cluster.range_lookup(
            "UserID", "u000", "u005", early_termination=False)}
        want = {key for key, doc in state.items()
                if "u000" <= doc["UserID"] <= "u005"}
        assert got == want
        assert gsi.shards_contacted == 1  # only the first interval
        gsi.shards_contacted = 0
        cluster.range_lookup("UserID", "u012", "u025",
                             early_termination=False)
        assert gsi.shards_contacted == 2  # middle + last intervals
        cluster.close()

    def test_split_points_for_unknown_attribute_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ShardedDB.open_memory(
                num_shards=2, global_indexes=("UserID",),
                global_split_points={"Other": ["x"]},
                options=_options())

    def test_skewed_values_land_on_one_shard(self):
        """The known range-partitioning hazard, observable via sizes."""
        cluster = self._cluster()
        for i in range(120):
            cluster.put(f"t{i:05d}", {"UserID": "u005"})  # all < u010
        for index in cluster.global_indexes.values():
            for lazy in index.shards:
                lazy.flush()
        gsi = cluster.global_indexes["UserID"]
        sizes = [shard.size_bytes() for shard in gsi.shards]
        # Shard 0 holds every posting; the others carry only the fixed
        # metadata footprint (manifest/CURRENT/empty WAL).
        assert sizes[0] > 5 * sizes[1]
        assert sizes[1] == sizes[2]
        cluster.close()
