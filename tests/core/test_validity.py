"""Validity checking: GET-based candidate filtering and GetLite."""

from repro.core.records import encode_document
from repro.core.validity import (
    ValidityChecker,
    attribute_equals,
    attribute_in_range,
)
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.zonemap import encode_attribute


def _open(**overrides):
    base = dict(block_size=1024, sstable_target_size=4 * 1024,
                memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    base.update(overrides)
    return DB.open_memory(Options(**base))


class TestFetchValid:
    def test_live_matching_record(self):
        db = _open()
        db.put(b"t1", encode_document({"UserID": "u1"}))
        checker = ValidityChecker(db)
        found = checker.fetch_valid(b"t1", attribute_equals("UserID", "u1"))
        assert found is not None
        document, seq = found
        assert document["UserID"] == "u1"
        assert seq == db.versions.last_sequence
        assert checker.validation_gets == 1
        db.close()

    def test_missing_record(self):
        db = _open()
        checker = ValidityChecker(db)
        assert checker.fetch_valid(
            b"gone", attribute_equals("UserID", "u1")) is None
        db.close()

    def test_stale_attribute_rejected(self):
        db = _open()
        db.put(b"t1", encode_document({"UserID": "u1"}))
        db.put(b"t1", encode_document({"UserID": "u2"}))
        checker = ValidityChecker(db)
        assert checker.fetch_valid(
            b"t1", attribute_equals("UserID", "u1")) is None
        db.close()

    def test_deleted_record_rejected(self):
        db = _open()
        db.put(b"t1", encode_document({"UserID": "u1"}))
        db.delete(b"t1")
        checker = ValidityChecker(db)
        assert checker.fetch_valid(
            b"t1", attribute_equals("UserID", "u1")) is None
        db.close()


class TestPredicates:
    def test_attribute_equals(self):
        check = attribute_equals("UserID", "u1")
        assert check({"UserID": "u1"})
        assert not check({"UserID": "u2"})
        assert not check({})

    def test_attribute_in_range(self):
        check = attribute_in_range("CreationTime", 10, 20, encode_attribute)
        assert check({"CreationTime": 10})
        assert check({"CreationTime": 20})
        assert check({"CreationTime": 15})
        assert not check({"CreationTime": 9})
        assert not check({"CreationTime": 21})
        assert not check({})


class TestGetLite:
    def test_newest_version_in_memtable_invalidates(self):
        db = _open()
        db.put(b"t1", encode_document({"UserID": "u1"}))
        db.flush()
        _value, old_seq = db.get_with_seq(b"t1")
        db.put(b"t1", encode_document({"UserID": "u2"}))  # memtable
        checker = ValidityChecker(db)
        assert not checker.is_newest_version(b"t1", old_seq, level=0)
        db.close()

    def test_unique_version_validates_in_memory(self):
        db = _open()
        for i in range(200):
            db.put(f"k{i:04d}".encode(), encode_document({"UserID": "u1"}))
        db.flush()
        _value, seq = db.get_with_seq(b"k0100")
        checker = ValidityChecker(db)
        level = db.versions.current.deepest_nonempty_level()
        reads_before = db.vfs.stats.read_blocks
        assert checker.is_newest_version(b"k0100", seq, level)
        assert checker.getlite_memory_only == 1
        assert db.vfs.stats.read_blocks == reads_before
        db.close()

    def test_newer_version_in_upper_level_invalidates(self):
        db = _open()
        db.put(b"t1", encode_document({"UserID": "u1"}))
        _value, old_seq = db.get_with_seq(b"t1")
        # Push the old version deep, then write a newer one and flush it to L0.
        for i in range(600):
            db.put(f"fill{i:05d}".encode(),
                   encode_document({"UserID": "ux"}))
        db.compact_range()
        deep_level = db.versions.current.deepest_nonempty_level()
        db.put(b"t1", encode_document({"UserID": "u2"}))
        db.flush()
        checker = ValidityChecker(db)
        assert not checker.is_newest_version(b"t1", old_seq, deep_level)
        db.close()
