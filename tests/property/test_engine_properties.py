"""More hypothesis properties: WAL, blocks, SSTables, compaction styles."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lsm.block import Block, BlockBuilder
from repro.lsm.compression import NoCompression
from repro.lsm.keys import (
    KIND_VALUE,
    MAX_SEQUENCE,
    internal_sort_key,
    pack_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import SSTable, TableBuilder
from repro.lsm.vfs import MemoryVFS
from repro.lsm.wal import LogReader, LogWriter

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestWALProperties:
    @given(st.lists(st.binary(max_size=2000), max_size=40))
    @_SETTINGS
    def test_roundtrip_any_payloads(self, records):
        vfs = MemoryVFS()
        writer = LogWriter(vfs.create("wal"))
        for record in records:
            writer.add_record(record)
        writer.close()
        assert list(LogReader(vfs.open_random("wal"))) == records

    @given(st.lists(st.binary(min_size=1, max_size=500), min_size=1,
                    max_size=10),
           st.integers(min_value=1, max_value=100))
    @_SETTINGS
    def test_any_truncation_never_yields_garbage(self, records, cut):
        """Chopping bytes off the tail loses at most the torn suffix of
        records — every record that IS returned is byte-identical to one
        that was written, in order."""
        vfs = MemoryVFS()
        writer = LogWriter(vfs.create("wal"))
        for record in records:
            writer.add_record(record)
        writer.close()
        data = vfs._files["wal"]
        del data[max(0, len(data) - cut):]
        recovered = list(LogReader(vfs.open_random("wal")))
        assert recovered == records[:len(recovered)]


def _sorted_entries(keys_values):
    entries = [(pack_internal_key(key, seq, KIND_VALUE), value)
               for (key, seq), value in keys_values.items()]
    entries.sort(key=lambda e: internal_sort_key(e[0]))
    return entries


_entry_maps = st.dictionaries(
    st.tuples(st.binary(max_size=20),
              st.integers(min_value=0, max_value=10**6)),
    st.binary(max_size=60), max_size=120)


class TestBlockProperties:
    @given(_entry_maps, st.integers(min_value=1, max_value=20))
    @_SETTINGS
    def test_roundtrip(self, keys_values, restart_interval):
        entries = _sorted_entries(keys_values)
        builder = BlockBuilder(restart_interval)
        for key, value in entries:
            builder.add(key, value)
        assert list(Block(builder.finish())) == entries

    @given(_entry_maps, st.binary(max_size=20))
    @_SETTINGS
    def test_seek_equals_filtered_iteration(self, keys_values, seek_key):
        entries = _sorted_entries(keys_values)
        builder = BlockBuilder(4)
        for key, value in entries:
            builder.add(key, value)
        block = Block(builder.finish())
        target = pack_internal_key(seek_key, MAX_SEQUENCE, KIND_VALUE)
        got = list(block.seek(target))
        want = [e for e in entries
                if internal_sort_key(e[0]) >= internal_sort_key(target)]
        assert got == want


class TestSSTableProperties:
    @given(_entry_maps)
    @_SETTINGS
    def test_roundtrip_through_file(self, keys_values):
        entries = _sorted_entries(keys_values)
        options = Options(block_size=512, sstable_target_size=512,
                          compression="none")
        vfs = MemoryVFS()
        out = vfs.create("t.ldb")
        builder = TableBuilder(options, out, NoCompression())
        for key, value in entries:
            builder.add(key, value)
        builder.finish()
        out.close()
        table = SSTable(options, vfs.open_random("t.ldb"))
        got = [(ikey.encode(), value) for ikey, value in table]
        assert got == entries

    @given(_entry_maps)
    @_SETTINGS
    def test_versions_complete_per_user_key(self, keys_values):
        entries = _sorted_entries(keys_values)
        if not entries:
            return
        options = Options(block_size=512, sstable_target_size=512,
                          compression="none")
        vfs = MemoryVFS()
        out = vfs.create("t.ldb")
        builder = TableBuilder(options, out, NoCompression())
        for key, value in entries:
            builder.add(key, value)
        builder.finish()
        out.close()
        table = SSTable(options, vfs.open_random("t.ldb"))
        user_keys = {key for (key, _seq) in keys_values}
        for user_key in user_keys:
            want = sorted((seq for (key, seq) in keys_values
                           if key == user_key), reverse=True)
            got = [ikey.seq for ikey, _v in table.versions(user_key,
                                                           MAX_SEQUENCE)]
            assert got == want
