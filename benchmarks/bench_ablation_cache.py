"""Ablation: OS buffer-cache size vs charged read I/O (Figure 12's jumps).

The paper attributes the inflection points in its Mixed-workload curves to
the database outgrowing RAM: "the inflection point occurs at [...] about
6GB of data which is the RAM size."  Running a read-heavy mix behind the
:class:`~repro.lsm.cache.BufferCacheSimulator` at several capacities
reproduces that cliff: once the working set exceeds the page cache,
charged reads jump.
"""

import pytest

from harness import BENCH_PROFILE, ResultTable, bench_options

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.cache import BufferCacheSimulator
from repro.lsm.vfs import MemoryVFS
from repro.workloads.generator import MIXED_RATIOS, MixedWorkload
from repro.workloads.runner import WorkloadRunner

_CAPACITIES = {
    "8KiB (tiny)": 8 * 1024,
    "64KiB (partial)": 64 * 1024,
    "2MiB (fits everything)": 2 * 1024 * 1024,
}
_NUM_OPS = 5000
_RESULTS: dict = {}

_TABLE = ResultTable(
    "ablation_cache",
    "Ablation — simulated OS page-cache size, read-heavy Mixed workload",
    ["capacity", "charged_read_blocks", "cache_hit_rate"])


def _run(capacity):
    cache = BufferCacheSimulator(MemoryVFS(), capacity)
    db = SecondaryIndexedDB.open(cache, "data",
                                 {"UserID": IndexKind.COMPOSITE},
                                 bench_options())
    workload = MixedWorkload(
        num_operations=_NUM_OPS, ratios=MIXED_RATIOS["read_heavy"],
        profile=BENCH_PROFILE, seed=71)
    WorkloadRunner(db, sample_every=_NUM_OPS).run(workload.operations())
    charged = cache.stats.read_blocks
    hit_rate = cache.hits / max(1, cache.hits + cache.misses)
    db.close()
    return charged, hit_rate


@pytest.mark.parametrize("label", list(_CAPACITIES))
def test_ablation_cache(benchmark, label):
    charged, hit_rate = benchmark.pedantic(
        _run, args=(_CAPACITIES[label],), rounds=1, iterations=1)
    _TABLE.add(label, charged, f"{hit_rate:.2%}")
    _RESULTS[label] = charged
    if len(_RESULTS) == len(_CAPACITIES):
        _TABLE.write()
        ordered = [_RESULTS[label] for label in _CAPACITIES]
        # Bigger page cache, (weakly) fewer charged device reads — with a
        # real cliff between "tiny" and "ample".
        assert ordered[0] >= ordered[1] >= ordered[2]
        assert ordered[0] > 2 * ordered[2]
