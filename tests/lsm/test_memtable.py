"""MemTable: versioned buffer semantics."""

import pytest

from repro.lsm.keys import KIND_DELETE, KIND_MERGE, KIND_VALUE
from repro.lsm.memtable import MemTable


class TestBasics:
    def test_empty(self):
        mem = MemTable()
        assert mem.is_empty()
        assert len(mem) == 0
        assert mem.get(b"k") is None
        assert mem.min_seq is None and mem.max_seq is None

    def test_add_get(self):
        mem = MemTable()
        mem.add(1, KIND_VALUE, b"k", b"v")
        entry = mem.get(b"k")
        assert entry is not None
        assert (entry.user_key, entry.seq, entry.kind, entry.value) == \
            (b"k", 1, KIND_VALUE, b"v")

    def test_newest_version_wins(self):
        mem = MemTable()
        mem.add(1, KIND_VALUE, b"k", b"old")
        mem.add(2, KIND_VALUE, b"k", b"new")
        assert mem.get(b"k").value == b"new"

    def test_tombstone_visible(self):
        mem = MemTable()
        mem.add(1, KIND_VALUE, b"k", b"v")
        mem.add(2, KIND_DELETE, b"k", b"")
        assert mem.get(b"k").kind == KIND_DELETE

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            MemTable().add(1, 7, b"k", b"")

    def test_seq_bounds_tracked(self):
        mem = MemTable()
        mem.add(5, KIND_VALUE, b"a", b"")
        mem.add(3, KIND_VALUE, b"b", b"")
        mem.add(9, KIND_VALUE, b"c", b"")
        assert mem.min_seq == 3
        assert mem.max_seq == 9

    def test_memory_accounting_grows(self):
        mem = MemTable()
        before = mem.approximate_memory_usage
        mem.add(1, KIND_VALUE, b"key", b"v" * 1000)
        assert mem.approximate_memory_usage >= before + 1000


class TestVersions:
    def test_versions_newest_first(self):
        mem = MemTable()
        for seq in (1, 5, 3):
            mem.add(seq, KIND_VALUE, b"k", str(seq).encode())
        assert [e.seq for e in mem.versions(b"k")] == [5, 3, 1]

    def test_versions_respect_max_seq(self):
        mem = MemTable()
        for seq in (1, 3, 5):
            mem.add(seq, KIND_VALUE, b"k", b"")
        assert [e.seq for e in mem.versions(b"k", max_seq=3)] == [3, 1]
        assert mem.get(b"k", max_seq=2).seq == 1
        assert mem.get(b"k", max_seq=0) is None

    def test_versions_isolated_per_key(self):
        mem = MemTable()
        mem.add(1, KIND_VALUE, b"a", b"")
        mem.add(2, KIND_VALUE, b"ab", b"")
        assert [e.seq for e in mem.versions(b"a")] == [1]

    def test_merge_entries_preserved(self):
        mem = MemTable()
        mem.add(1, KIND_VALUE, b"k", b"base")
        mem.add(2, KIND_MERGE, b"k", b"op1")
        mem.add(3, KIND_MERGE, b"k", b"op2")
        kinds = [e.kind for e in mem.versions(b"k")]
        assert kinds == [KIND_MERGE, KIND_MERGE, KIND_VALUE]


class TestIteration:
    def test_internal_key_order(self):
        mem = MemTable()
        mem.add(1, KIND_VALUE, b"b", b"")
        mem.add(2, KIND_VALUE, b"a", b"")
        mem.add(3, KIND_VALUE, b"b", b"")
        order = [(e.user_key, e.seq) for e in mem]
        assert order == [(b"a", 2), (b"b", 3), (b"b", 1)]
