"""``RepairDB``: rebuild a consistent database from whatever survives.

LevelDB ships a repair tool for the worst case — a manifest that no
longer describes the files on disk, tables with rotten blocks, a WAL
with a mangled middle.  :func:`repair_db` reproduces that salvage
strategy:

* The manifest and ``CURRENT`` are **ignored as authority**: the
  directory listing is the ground truth, exactly as in LevelDB's
  ``RepairDB`` ("we abandon the contents of the descriptor").
* Every table file is audited block by block.  Clean tables are kept
  as-is (their metadata recomputed from the actual bytes); tables with
  some bad blocks are *salvaged* — the cleanly decoding entries are
  rewritten into a fresh table, dropping **only the provably-bad
  blocks**; tables whose footer or index is unreadable are dropped
  whole.
* Every WAL file is salvaged with a fragment-skipping reader: a bad
  fragment loses at most the rest of its 32 KiB block, and every intact
  record is replayed into a new level-0 table (LevelDB likewise
  "convert[s] logs to tables").
* A fresh manifest is written with **everything at level 0** and a
  ``log_number`` above every existing WAL, so the next open replays
  nothing twice (a WAL whose contents were salvaged into a table must
  never be replayed on top of it — merge operands would fold twice).
  Level-0 placement is always safe: per-entry sequence numbers order
  overlapping tables, and ordinary compaction will re-sort the tree.
  Repair deliberately does **not** compact — it does the minimum to
  make the database openable and consistent.

``dry_run=True`` performs the full audit and reports what *would*
happen without writing or deleting a single byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsm.block import Block
from repro.lsm.errors import CorruptionError
from repro.lsm.keys import KIND_VALUE, unpack_internal_key
from repro.lsm.manifest import (
    ManifestWriter,
    current_tmp_file_name,
    table_file_name,
)
from repro.lsm.memtable import MemTable
from repro.lsm.options import Options, resolve_attribute_path
from repro.lsm.sstable import SSTable, TableBuilder, _read_physical_block
from repro.lsm.version import FileMetaData, VersionEdit
from repro.lsm.vfs import VFS, Category
from repro.lsm.wal import BLOCK_SIZE, HEADER_SIZE, _HEADER
from repro.lsm.zonemap import ZoneMapBuilder, encode_attribute
import zlib


@dataclass
class RepairReport:
    """What :func:`repair_db` found and (unless ``dry_run``) did."""

    dry_run: bool = False
    tables_kept: int = 0
    tables_salvaged: int = 0
    tables_dropped: int = 0
    blocks_dropped: int = 0
    entries_salvaged: int = 0
    wal_records_salvaged: int = 0
    last_sequence: int = 0
    problems: list[str] = field(default_factory=list)
    actions: list[str] = field(default_factory=list)

    def action(self, text: str) -> None:
        self.actions.append(text)


def _parse_file_number(base: str) -> int | None:
    stem = base.split(".")[0]
    return int(stem) if stem.isdigit() else None


def _salvage_wal_payloads(data: bytes, report: RepairReport, name: str):
    """Yield intact WAL records, skipping damaged fragments.

    Unlike :class:`~repro.lsm.wal.LogReader` (which treats mid-file
    damage as fatal), a bad fragment here abandons the rest of its
    32 KiB block and resumes at the next one — LevelDB's
    ``ReportCorruption``-and-continue salvage mode.  A record whose
    FIRST/MIDDLE/LAST chain is broken is dropped in its entirety.
    """
    offset = 0
    end = len(data)
    pending: bytearray | None = None

    def skip_block() -> int:
        nonlocal pending
        pending = None
        return offset + (BLOCK_SIZE - offset % BLOCK_SIZE)

    while offset < end:
        block_left = BLOCK_SIZE - (offset % BLOCK_SIZE)
        if block_left < HEADER_SIZE:
            offset += block_left
            continue
        if offset + HEADER_SIZE > end:
            break  # torn header at tail
        crc, length, record_type = _HEADER.unpack_from(data, offset)
        if record_type == 0 and length == 0 and crc == 0:
            offset += block_left
            continue
        frag_start = offset + HEADER_SIZE
        frag_end = frag_start + length
        if HEADER_SIZE + length > block_left or frag_end > end \
                or record_type > 4:
            report.problems.append(
                f"WAL {name}: bad fragment at offset {offset}, skipping "
                f"to next block")
            offset = skip_block()
            continue
        fragment = data[frag_start:frag_end]
        actual = zlib.crc32(bytes([record_type]) + fragment) & 0xFFFFFFFF
        if actual != crc:
            report.problems.append(
                f"WAL {name}: checksum mismatch at offset {offset}, "
                f"skipping to next block")
            offset = skip_block()
            continue
        offset = frag_end
        if record_type == 1:  # FULL
            pending = None
            yield bytes(fragment)
        elif record_type == 2:  # FIRST
            pending = bytearray(fragment)
        elif record_type == 3:  # MIDDLE
            if pending is not None:
                pending += fragment
        elif record_type == 4:  # LAST
            if pending is not None:
                pending += fragment
                yield bytes(pending)
            pending = None


class _Repairer:
    def __init__(self, vfs: VFS, name: str, options: Options,
                 dry_run: bool) -> None:
        self.vfs = vfs
        self.name = name
        self.options = options
        self.report = RepairReport(dry_run=dry_run)
        self.dry_run = dry_run
        self.tables: list[FileMetaData] = []
        self.max_seq = 0
        # Inputs, classified from the directory listing.
        self.table_numbers: list[int] = []
        self.log_numbers: list[int] = []
        self.manifest_names: list[str] = []
        self.max_file_number = 0
        self._next_number = 0

    # -- plumbing -----------------------------------------------------------

    def new_file_number(self) -> int:
        self._next_number += 1
        return self._next_number

    def _scan_dir(self) -> None:
        for full in self.vfs.list_dir(self.name + "/"):
            base = full.rsplit("/", 1)[-1]
            if base.endswith(".ldb"):
                number = _parse_file_number(base)
                if number is not None:
                    self.table_numbers.append(number)
                    self.max_file_number = max(self.max_file_number, number)
            elif base.endswith(".log"):
                number = _parse_file_number(base)
                if number is not None:
                    self.log_numbers.append(number)
                    self.max_file_number = max(self.max_file_number, number)
            elif base.startswith("MANIFEST-"):
                self.manifest_names.append(full)
                suffix = base.split("-", 1)[1]
                if suffix.isdigit():
                    self.max_file_number = max(self.max_file_number,
                                               int(suffix))
        self.table_numbers.sort()
        self.log_numbers.sort()
        self._next_number = self.max_file_number

    # -- tables -------------------------------------------------------------

    def _audit_table(self, file_number: int) -> None:
        report = self.report
        name = table_file_name(self.name, file_number)
        try:
            handle = self.vfs.open_random(name)
            table = SSTable(self.options, handle, file_number)
        except (CorruptionError, OSError) as exc:
            report.tables_dropped += 1
            report.problems.append(
                f"table {file_number}: unreadable ({exc})")
            report.action(f"drop table {file_number} (unreadable)")
            if not self.dry_run:
                self.vfs.delete_if_exists(name)
            return
        good: list[tuple[bytes, bytes]] = []
        bad_blocks = 0
        for block_index in range(table.num_data_blocks):
            block_handle = table._index_entries[block_index][1]
            try:
                payload = _read_physical_block(
                    table.file, block_handle, Category.OTHER,
                    verify_crc=True, options=self.options)
                entries = list(Block(payload))
            except CorruptionError as exc:
                bad_blocks += 1
                report.problems.append(
                    f"table {file_number} block {block_index}: {exc}")
                continue
            good.extend(entries)
        degraded = bool(table.degraded_filters)
        table.file.close()
        report.blocks_dropped += bad_blocks
        if bad_blocks == 0 and not degraded:
            meta = self._recompute_meta(file_number, good,
                                        self.vfs.file_size(name))
            self.tables.append(meta)
            report.tables_kept += 1
            report.action(f"keep table {file_number} "
                          f"({meta.num_entries} entries)")
            return
        # Partly bad (or its advisory meta blocks are rotten): rewrite the
        # surviving entries into a fresh, fully consistent table.
        if not good:
            report.tables_dropped += 1
            report.action(
                f"drop table {file_number} (no salvageable entries)")
            if not self.dry_run:
                self.vfs.delete_if_exists(name)
            return
        report.tables_salvaged += 1
        report.entries_salvaged += len(good)
        if self.dry_run:
            report.action(
                f"would salvage {len(good)} entries of table "
                f"{file_number} (dropping {bad_blocks} bad blocks)")
            return
        meta = self._build_table(good)
        if meta is not None:
            self.tables.append(meta)
            report.action(
                f"salvaged table {file_number} -> {meta.file_number} "
                f"({len(good)} entries, {bad_blocks} blocks dropped)")
        self.vfs.delete_if_exists(name)

    def _recompute_meta(self, file_number: int,
                        entries: list[tuple[bytes, bytes]],
                        file_size: int) -> FileMetaData:
        """Manifest metadata from the actual bytes, trusting nothing stored."""
        options = self.options
        zonemap_builders = {attr: ZoneMapBuilder()
                            for attr in options.indexed_attributes}
        min_seq = max_seq = None
        for ikey_bytes, value in entries:
            ikey = unpack_internal_key(ikey_bytes)
            min_seq = ikey.seq if min_seq is None else min(min_seq, ikey.seq)
            max_seq = ikey.seq if max_seq is None else max(max_seq, ikey.seq)
            if options.indexed_attributes and ikey.kind == KIND_VALUE:
                attrs = options.attribute_extractor(value)
                for attr in options.indexed_attributes:
                    attr_value = resolve_attribute_path(attrs, attr)
                    if attr_value is not None:
                        zonemap_builders[attr].add(
                            encode_attribute(attr_value))
        self.max_seq = max(self.max_seq, max_seq or 0)
        return FileMetaData(
            file_number=file_number,
            file_size=file_size,
            smallest=entries[0][0],
            largest=entries[-1][0],
            min_seq=min_seq or 0,
            max_seq=max_seq or 0,
            num_entries=len(entries),
            secondary_zonemaps={attr: builder.finish()
                                for attr, builder in
                                zonemap_builders.items()},
        )

    def _build_table(self, entries: list[tuple[bytes, bytes]]
                     ) -> FileMetaData | None:
        """Write ``entries`` (already in internal-key order) as a new table."""
        from repro.lsm.compression import compressor_for

        file_number = self.new_file_number()
        name = table_file_name(self.name, file_number)
        out = self.vfs.create(name)
        builder = TableBuilder(self.options, out,
                               compressor_for(self.options.compression),
                               Category.OTHER)
        for ikey_bytes, value in entries:
            builder.add(ikey_bytes, value)
        props = builder.finish()
        out.sync()
        out.close()
        self.max_seq = max(self.max_seq, props.max_seq)
        return FileMetaData(
            file_number=file_number,
            file_size=props.file_size,
            smallest=props.smallest,
            largest=props.largest,
            min_seq=props.min_seq,
            max_seq=props.max_seq,
            num_entries=props.num_entries,
            secondary_zonemaps=props.secondary_zonemaps,
        )

    # -- WAL ----------------------------------------------------------------

    def _salvage_logs(self) -> None:
        report = self.report
        memtable = MemTable()
        from repro.lsm.db import WriteBatch
        from repro.lsm.manifest import log_file_name

        for number in self.log_numbers:
            name = log_file_name(self.name, number)
            try:
                handle = self.vfs.open_random(name)
                data = handle.read_at(0, handle.size, Category.WAL)
                handle.close()
            except OSError as exc:
                report.problems.append(f"WAL {name}: unreadable ({exc})")
                continue
            for payload in _salvage_wal_payloads(data, report, name):
                try:
                    batch, start_seq = WriteBatch.decode(payload)
                except Exception:  # noqa: BLE001 - salvage must not die
                    report.problems.append(
                        f"WAL {name}: undecodable record, dropped")
                    continue
                for offset, (kind, key, value) in enumerate(batch.ops):
                    memtable.add(start_seq + offset, kind, key, value)
                report.wal_records_salvaged += 1
                self.max_seq = max(self.max_seq,
                                   start_seq + len(batch.ops) - 1)
        if memtable.is_empty():
            return
        if self.dry_run:
            report.action(
                f"would write {len(memtable)} WAL entries to a new "
                f"level-0 table")
            return
        from repro.lsm.keys import pack_internal_key

        entries = [(pack_internal_key(e.user_key, e.seq, e.kind), e.value)
                   for e in memtable]
        meta = self._build_table(entries)
        if meta is not None:
            self.tables.append(meta)
            report.action(
                f"wrote {meta.num_entries} salvaged WAL entries to table "
                f"{meta.file_number}")

    # -- manifest -----------------------------------------------------------

    def _install_manifest(self) -> None:
        report = self.report
        # A log_number above every existing WAL: their surviving records
        # now live in tables, so no log may ever be replayed again.
        new_log_number = self.new_file_number()
        manifest_number = self.new_file_number()
        if self.dry_run:
            report.action(
                f"would write manifest MANIFEST-{manifest_number:06d} with "
                f"{len(self.tables)} tables at level 0, "
                f"log_number={new_log_number}")
            return
        edit = VersionEdit(
            log_number=new_log_number,
            next_file_number=self._next_number + 1,
            last_sequence=self.max_seq)
        for meta in sorted(self.tables, key=lambda m: m.file_number):
            edit.add_file(0, meta)
        manifest = ManifestWriter(self.vfs, self.name, manifest_number)
        manifest.log_edit(edit)
        manifest.install_as_current()
        manifest.close()
        for name in self.manifest_names:
            self.vfs.delete_if_exists(name)
        self.vfs.delete_if_exists(current_tmp_file_name(self.name))
        # The WALs' content (whatever was salvageable) now lives in level-0
        # tables; leaving the files behind would only confuse the next
        # repair.  Recovery would ignore them (log_number is higher) and
        # delete them anyway.
        from repro.lsm.manifest import log_file_name

        for number in self.log_numbers:
            self.vfs.delete_if_exists(log_file_name(self.name, number))
        report.action(
            f"installed MANIFEST-{manifest_number:06d}: "
            f"{len(self.tables)} tables at level 0, "
            f"last_sequence={self.max_seq}")

    # -- driver -------------------------------------------------------------

    def run(self) -> RepairReport:
        self._scan_dir()
        for file_number in self.table_numbers:
            self._audit_table(file_number)
        self._salvage_logs()
        self._install_manifest()
        self.report.last_sequence = self.max_seq
        return self.report


def repair_db(vfs: VFS, name: str, options: Options | None = None,
              dry_run: bool = False) -> RepairReport:
    """Salvage-rebuild the database ``name`` on ``vfs``; see module docs.

    The database must be closed.  Returns a :class:`RepairReport`;
    with ``dry_run=True`` nothing on disk is created, modified or
    deleted.
    """
    return _Repairer(vfs, name, options or Options(), dry_run).run()
