"""A wireless sensor network's local store — the paper's Embedded-index case.

Section 1 names the target application directly: "wireless sensor networks
where a sensor generates data of the form (measurement_id, temperature,
humidity) and needs support for secondary attribute queries".  On such a
device:

* space is scarce (no room for separate index tables),
* the workload is overwhelmingly writes (continuous measurements),
* queries are range scans over measurement time — a *time-correlated*
  attribute, where zone maps prune almost every block.

That is the Embedded index's sweet spot on all three axes of Figure 2.

Run with::

    python examples/sensor_network.py
"""

import random

from repro import IndexKind, IndexSelector, SecondaryIndexedDB, WorkloadProfile
from repro.lsm.options import Options


def main() -> None:
    profile = WorkloadProfile(
        put_fraction=0.90, get_fraction=0.06, lookup_fraction=0.01,
        range_lookup_fraction=0.03, time_correlated=True,
        space_constrained=True)
    recommendation = IndexSelector().recommend(profile)
    print(f"selector recommends: {recommendation.kind.value}")
    for reason in recommendation.reasons:
        print(f"  because {reason}")
    assert recommendation.kind == IndexKind.EMBEDDED

    options = Options(block_size=2048, sstable_target_size=16 * 1024,
                      memtable_budget=16 * 1024, l1_target_size=64 * 1024)
    db = SecondaryIndexedDB.open_memory(
        indexes={"timestamp": IndexKind.EMBEDDED,
                 "temperature": IndexKind.EMBEDDED},
        options=options)

    # Continuous measurements: one reading per second, mild temperature walk.
    rng = random.Random(4)
    temperature = 21.0
    print("\nrecording 6000 measurements...")
    for second in range(6000):
        temperature += rng.uniform(-0.1, 0.1)
        db.put(f"m{second:08d}", {
            "timestamp": 1_700_000_000 + second,
            "temperature": round(temperature, 2),
            "humidity": round(rng.uniform(30, 60), 1),
        })
    db.flush()

    # Space: the embedded filters live inside the data files — no index
    # tables at all.
    breakdown = db.size_breakdown()
    print(f"storage: {breakdown['primary']:,} bytes, "
          f"index tables: {breakdown['index:timestamp'] + breakdown['index:temperature']} bytes")

    # Time-window query: "what happened between t+1000 and t+1030?"
    index = db.indexes["timestamp"]
    index.blocks_read = 0
    index.files_pruned = 0
    window = db.range_lookup("timestamp",
                             1_700_000_000 + 1000, 1_700_000_000 + 1030)
    print(f"\n30-second window query: {len(window)} readings, "
          f"{index.blocks_read} blocks read, "
          f"{index.files_pruned} whole files pruned by zone maps")
    newest = window[0].document
    print(f"  newest in window: {newest['temperature']}°C, "
          f"{newest['humidity']}% humidity")

    # Point query on a non-time-correlated attribute still works — bloom
    # filters answer it, just with more block probes.
    hot = db.range_lookup("temperature", temperature + 0.5,
                          temperature + 99, k=5)
    print(f"readings more than 0.5°C above the current temperature: "
          f"{len(hot)}")
    db.close()


if __name__ == "__main__":
    main()
