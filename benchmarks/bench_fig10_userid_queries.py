"""Figure 10: LOOKUP/RANGELOOKUP on the non-time-correlated UserID index.

The paper varies top-K (1 / 10 / no-limit) and range selectivity, and
finds: Lazy best at small K (level-at-a-time early termination), Composite
best at no-limit K, and the Embedded index no better than NoIndex for
range queries because zone maps cannot prune a shuffled attribute.
Eager is excluded, as in the paper ("unusable for high write
amplification").
"""

import pytest

from harness import ResultTable, SURVIVOR_KINDS, quartiles, timed_queries

from repro.core.base import IndexKind

_TOP_KS = [1, 10, None]
_USER_SELECTIVITIES = [5, 20]
_LOOKUPS_PER_CONFIG = 25
_RESULTS: dict = {}

_LOOKUP_TABLE = ResultTable(
    "fig10a_lookup",
    "Figure 10a — UserID LOOKUP latency (box quartiles) and I/O vs top-K",
    ["variant", "top_k", "p25_us", "median_us", "p75_us",
     "read_blocks_per_lookup", "validation_gets_per_lookup"])
_RANGE_TABLE = ResultTable(
    "fig10bc_rangelookup",
    "Figure 10b/c — UserID RANGELOOKUP latency (box quartiles) and I/O "
    "vs selectivity/top-K",
    ["variant", "selectivity_users", "top_k", "p25_us", "median_us",
     "p75_us", "read_blocks_per_query"])


def _total_reads(db):
    total = db.primary.vfs.stats.read_blocks
    seen = {id(db.primary.vfs)}
    for index in db.indexes.values():
        index_db = getattr(index, "index_db", None)
        if index_db is not None and id(index_db.vfs) not in seen:
            seen.add(id(index_db.vfs))
            total += index_db.vfs.stats.read_blocks
    return total




@pytest.mark.parametrize("kind", SURVIVOR_KINDS, ids=lambda k: k.value)
def test_fig10_userid_queries(benchmark, static_cache, kind):
    db, workload = static_cache.get(kind)
    lookups = list(workload.lookups(_LOOKUPS_PER_CONFIG, "UserID"))

    measurements = {}
    for top_k in _TOP_KS:
        queries = [
            (lambda op=op, k=top_k: db.lookup("UserID", op.value, k))
            for op in lookups]
        reads_before = _total_reads(db)
        gets_before = db.checker.validation_gets
        latencies, seconds = timed_queries(queries)
        p25, median, p75 = quartiles(latencies)
        measurements[("lookup", top_k)] = {
            "us": seconds * 1e6 / len(queries),
            "median_us": median,
            "reads": (_total_reads(db) - reads_before) / len(queries),
            "gets": (db.checker.validation_gets - gets_before) / len(queries),
        }
        _LOOKUP_TABLE.add(
            kind.value, "all" if top_k is None else top_k,
            f"{p25:.0f}", f"{median:.0f}", f"{p75:.0f}",
            f"{measurements[('lookup', top_k)]['reads']:.1f}",
            f"{measurements[('lookup', top_k)]['gets']:.1f}")

    for selectivity in _USER_SELECTIVITIES:
        ranges = list(workload.user_range_lookups(
            _LOOKUPS_PER_CONFIG, selectivity))
        for top_k in _TOP_KS:
            queries = [
                (lambda op=op, k=top_k:
                 db.range_lookup("UserID", op.low, op.high, k))
                for op in ranges]
            reads_before = _total_reads(db)
            latencies, seconds = timed_queries(queries)
            p25, median, p75 = quartiles(latencies)
            measurements[("range", selectivity, top_k)] = {
                "us": seconds * 1e6 / len(queries),
                "median_us": median,
                "reads": (_total_reads(db) - reads_before) / len(queries),
            }
            _RANGE_TABLE.add(
                kind.value, selectivity, "all" if top_k is None else top_k,
                f"{p25:.0f}", f"{median:.0f}", f"{p75:.0f}",
                f"{measurements[('range', selectivity, top_k)]['reads']:.1f}")

    # pytest-benchmark row: the K=10 lookup batch.
    benchmark.pedantic(
        lambda: [db.lookup("UserID", op.value, 10) for op in lookups],
        rounds=2, iterations=1)

    _RESULTS[kind] = measurements
    if len(_RESULTS) == len(SURVIVOR_KINDS):
        _finalize()


def _finalize():
    _LOOKUP_TABLE.write()
    _RANGE_TABLE.write()
    res = _RESULTS
    lazy = res[IndexKind.LAZY]
    composite = res[IndexKind.COMPOSITE]
    embedded = res[IndexKind.EMBEDDED]
    noindex = res[IndexKind.NOINDEX]

    # Small-K LOOKUP: Lazy reads fewer blocks than Composite (early
    # termination vs full-level traversal).
    assert lazy[("lookup", 1)]["reads"] <= composite[("lookup", 1)]["reads"]
    # Stand-alone indexes beat NoIndex's full scan by a wide margin.
    for kind_res in (lazy, composite):
        assert kind_res[("lookup", 10)]["us"] < \
            noindex[("lookup", 10)]["us"] / 5
    # Embedded range queries on a non-time-correlated attribute read about
    # as much as a full scan (within 2x of NoIndex's block count).
    assert embedded[("range", 20, None)]["reads"] > \
        noindex[("range", 20, None)]["reads"] / 2
    # Stand-alone range queries beat Embedded on this attribute.
    assert composite[("range", 20, 10)]["reads"] < \
        embedded[("range", 20, 10)]["reads"]
    assert lazy[("range", 20, 10)]["reads"] < \
        embedded[("range", 20, 10)]["reads"]
