"""Zone maps: per-block and per-file min/max filters on attribute values.

A zone map stores the minimum and maximum value of an attribute within a
zone (here: one SSTable data block, or one whole SSTable file).  A query for
value ``a`` (or range ``[a, b]``) can skip every zone whose ``[min, max]``
interval does not intersect the query — which, as the paper shows, prunes
almost everything when the attribute is *time-correlated* and almost nothing
otherwise (Section 3, Figures 10-11).

Attribute values in the paper's data model are JSON scalars.  To make zone
maps (and the Composite index's key order) well defined across types, values
are mapped to an *order-preserving byte encoding*: integers order among
themselves, strings among themselves, and all integers sort before all
strings.  Floats are folded into the integer family via IEEE-754 total
ordering so mixed numeric columns behave sensibly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

from repro.lsm.keys import decode_length_prefixed, encode_length_prefixed

_TAG_NUMBER = b"n"
_TAG_STRING = b"s"

_F64 = struct.Struct(">d")
_I64 = struct.Struct(">q")
_U64 = struct.Struct(">Q")


def encode_attribute(value: Any) -> bytes:
    """Order-preserving byte encoding of a secondary attribute value.

    * ``int``/``float`` -> ``b"n"`` + 8 bytes (sign-flipped IEEE-754, so
      byte order equals numeric order, including negatives).
    * ``str`` -> ``b"s"`` + UTF-8 (byte order equals code-point order).
    * ``bytes`` are passed through under the string tag.
    """
    if isinstance(value, bool):
        # bool is an int subclass; keep it in the numeric family explicitly.
        value = int(value)
    if isinstance(value, (int, float)):
        bits = _U64.unpack(_F64.pack(float(value)))[0]
        if bits & (1 << 63):
            bits ^= 0xFFFFFFFFFFFFFFFF  # negative: flip all bits
        else:
            bits ^= 1 << 63  # non-negative: flip sign bit
        return _TAG_NUMBER + _U64.pack(bits)
    if isinstance(value, str):
        return _TAG_STRING + value.encode("utf-8")
    if isinstance(value, bytes):
        return _TAG_STRING + value
    raise TypeError(
        f"secondary attribute values must be int, float, str or bytes; "
        f"got {type(value).__name__}")


def decode_attribute(encoded: bytes) -> Any:
    """Inverse of :func:`encode_attribute` (numbers decode as ``float``)."""
    if not encoded:
        raise ValueError("empty encoded attribute")
    tag, payload = encoded[:1], encoded[1:]
    if tag == _TAG_NUMBER:
        bits = _U64.unpack(payload)[0]
        if bits & (1 << 63):
            bits ^= 1 << 63
        else:
            bits ^= 0xFFFFFFFFFFFFFFFF
        return _F64.unpack(_U64.pack(bits))[0]
    if tag == _TAG_STRING:
        return payload.decode("utf-8")
    raise ValueError(f"unknown attribute tag: {tag!r}")


@dataclass(frozen=True)
class ZoneMap:
    """Closed interval ``[min_value, max_value]`` of encoded attribute values.

    An *empty* zone map (both bounds ``None``) matches nothing: it arises
    for blocks in which no entry carries the attribute.
    """

    min_value: bytes | None = None
    max_value: bytes | None = None

    @property
    def is_empty(self) -> bool:
        return self.min_value is None

    def contains(self, encoded: bytes) -> bool:
        """Might a value equal to ``encoded`` lie in this zone?"""
        if self.is_empty:
            return False
        assert self.min_value is not None and self.max_value is not None
        return self.min_value <= encoded <= self.max_value

    def overlaps(self, low: bytes, high: bytes) -> bool:
        """Might any value in ``[low, high]`` lie in this zone?"""
        if self.is_empty:
            return False
        assert self.min_value is not None and self.max_value is not None
        return self.min_value <= high and low <= self.max_value

    def encode(self) -> bytes:
        if self.is_empty:
            return b"\x00"
        assert self.min_value is not None and self.max_value is not None
        return (b"\x01"
                + encode_length_prefixed(self.min_value)
                + encode_length_prefixed(self.max_value))

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["ZoneMap", int]:
        if offset >= len(data):
            raise ValueError("truncated zone map")
        marker = data[offset]
        offset += 1
        if marker == 0:
            return cls(), offset
        min_value, offset = decode_length_prefixed(data, offset)
        max_value, offset = decode_length_prefixed(data, offset)
        return cls(min_value, max_value), offset


class ZoneMapBuilder:
    """Accumulates encoded attribute values and emits a :class:`ZoneMap`."""

    def __init__(self) -> None:
        self._min: bytes | None = None
        self._max: bytes | None = None

    def add(self, encoded: bytes) -> None:
        if self._min is None or encoded < self._min:
            self._min = encoded
        if self._max is None or encoded > self._max:
            self._max = encoded

    def merge(self, other: ZoneMap) -> None:
        if other.is_empty:
            return
        assert other.min_value is not None and other.max_value is not None
        self.add(other.min_value)
        self.add(other.max_value)

    @property
    def is_empty(self) -> bool:
        return self._min is None

    def finish(self) -> ZoneMap:
        if self._min is None:
            return ZoneMap()
        return ZoneMap(self._min, self._max)
