"""The Figure 2 index-selection strategy."""

import pytest

from repro.core.base import IndexKind
from repro.core.selector import (
    IndexSelector,
    LOOKUP_RATIO_THRESHOLD,
    Recommendation,
    WRITE_RATIO_THRESHOLD,
    WorkloadProfile,
)


def _profile(**overrides):
    base = dict(put_fraction=0.3, get_fraction=0.5, lookup_fraction=0.2)
    base.update(overrides)
    return WorkloadProfile(**base)


class TestProfileValidation:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadProfile(put_fraction=0.5, get_fraction=0.5,
                            lookup_fraction=0.5)

    def test_secondary_query_fraction(self):
        profile = WorkloadProfile(put_fraction=0.5, get_fraction=0.3,
                                  lookup_fraction=0.1,
                                  range_lookup_fraction=0.1)
        assert profile.secondary_query_fraction == pytest.approx(0.2)


class TestEmbeddedBranches:
    def test_space_constrained_picks_embedded(self):
        rec = IndexSelector().recommend(_profile(space_constrained=True))
        assert rec.kind == IndexKind.EMBEDDED

    def test_time_correlated_picks_embedded(self):
        rec = IndexSelector().recommend(_profile(time_correlated=True))
        assert rec.kind == IndexKind.EMBEDDED

    def test_write_heavy_few_lookups_picks_embedded(self):
        profile = WorkloadProfile(put_fraction=0.8, get_fraction=0.18,
                                  lookup_fraction=0.02)
        rec = IndexSelector().recommend(profile)
        assert rec.kind == IndexKind.EMBEDDED

    def test_thresholds_are_strict(self):
        # Exactly at the boundary: not "write heavy enough" — stand-alone.
        profile = WorkloadProfile(
            put_fraction=WRITE_RATIO_THRESHOLD,
            get_fraction=1 - WRITE_RATIO_THRESHOLD - LOOKUP_RATIO_THRESHOLD,
            lookup_fraction=LOOKUP_RATIO_THRESHOLD)
        rec = IndexSelector().recommend(profile)
        assert rec.kind != IndexKind.EMBEDDED


class TestStandAloneBranches:
    def test_small_top_k_picks_lazy(self):
        rec = IndexSelector().recommend(_profile(typical_top_k=10))
        assert rec.kind == IndexKind.LAZY

    def test_unbounded_top_k_picks_composite(self):
        rec = IndexSelector().recommend(_profile(typical_top_k=None))
        assert rec.kind == IndexKind.COMPOSITE

    def test_huge_top_k_picks_composite(self):
        rec = IndexSelector().recommend(_profile(typical_top_k=10**6))
        assert rec.kind == IndexKind.COMPOSITE

    def test_eager_is_never_recommended(self):
        profiles = [
            _profile(),
            _profile(typical_top_k=None),
            _profile(time_correlated=True),
            WorkloadProfile(put_fraction=0.01, get_fraction=0.01,
                            lookup_fraction=0.98),
        ]
        for profile in profiles:
            assert IndexSelector().recommend(profile).kind != IndexKind.EAGER


class TestReasons:
    def test_recommendation_carries_reasoning(self):
        rec = IndexSelector().recommend(_profile(space_constrained=True))
        assert isinstance(rec, Recommendation)
        assert rec.reasons
        assert "space" in rec.reasons[0]
