"""Figure 7: rank-frequency distribution of the UserID attribute.

The paper plots the seed dataset's user rank vs tweet count on log-log
axes: a power law with the busiest user posting orders of magnitude more
than the tail.  The synthetic generator must preserve that shape, because
posting-list length variance is what stresses the Eager index.
"""

import math

from harness import BENCH_PROFILE, ResultTable

from repro.workloads.tweets import TweetGenerator, rank_frequency


def _generate(num_tweets: int):
    generator = TweetGenerator(BENCH_PROFILE, seed=7)
    return [doc for _key, doc in generator.tweets(num_tweets)]


def test_fig07_user_rank_frequency(benchmark):
    documents = benchmark.pedantic(_generate, args=(20000,),
                                   rounds=1, iterations=1)
    series = rank_frequency(documents)

    table = ResultTable(
        "fig07_distribution",
        "Figure 7 — UserID rank-frequency (log-log power law)",
        ["rank", "frequency", "log10(rank)", "log10(freq)"])
    picked = [1, 2, 3, 5, 10, 20, 50, 100, 150, len(series)]
    for rank in picked:
        frequency = series[rank - 1][1]
        table.add(rank, frequency, f"{math.log10(rank):.2f}",
                  f"{math.log10(frequency):.2f}")

    # Power-law shape check: log-log slope between head and tail ~ -1.
    head_rank, head_freq = series[0]
    tail_rank, tail_freq = series[len(series) // 2]
    slope = (math.log10(tail_freq) - math.log10(head_freq)) / \
        (math.log10(tail_rank) - math.log10(head_rank))
    table.note(f"log-log slope head->median: {slope:.2f} "
               f"(paper's seed set is ~ -1)")
    table.note(f"avg tweets/user: {20000 / len(series):.1f} "
               f"(paper seed: 30)")
    table.write()

    assert -1.6 < slope < -0.5
    assert series[0][1] > 10 * series[len(series) // 2][1]
