"""End-to-end serving tests: ops, pipelining, errors, robustness."""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS
from repro.server import Client, RemoteError, Server
from repro.server.protocol import encode_frame, encode_value, read_frame


@pytest.fixture()
def kv_server():
    db = DB.open(MemoryVFS(), "data", Options(background_compaction=True))
    server = Server(db)
    server.start()
    yield server, db
    server.close()
    db.close()


@pytest.fixture()
def doc_server():
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY})
    server = Server(db)
    server.start()
    yield server, db
    server.close()
    db.close()


def connect(server: Server, **kwargs) -> Client:
    host, port = server.address
    return Client(host, port, **kwargs)


# -- basic operations --------------------------------------------------------

def test_kv_round_trip(kv_server):
    server, db = kv_server
    with connect(server) as client:
        seq1 = client.put(b"alpha", b"1")
        seq2 = client.put(b"beta", b"2")
        assert seq2 == seq1 + 1
        assert client.get(b"alpha") == b"1"
        assert client.get(b"missing") is None
        assert client.delete(b"alpha") == seq2 + 1
        assert client.get(b"alpha") is None
        # Acked writes are in the engine, not a server-side cache.
        assert db.get(b"beta") == b"2"


def test_kv_scan_pages_and_limits(kv_server):
    server, _db = kv_server
    with connect(server) as client:
        for i in range(20):
            client.put(b"k%02d" % i, b"v%d" % i)
        page = client.scan(b"k05", b"k15", limit=5)
        assert page == [[b"k%02d" % i, b"v%d" % i] for i in range(5, 10)]
        everything = client.scan()
        assert len(everything) == 20


def test_doc_mode_lookup_and_range(doc_server):
    server, _db = doc_server
    with connect(server) as client:
        client.put("t1", {"UserID": "u1", "n": 1})
        client.put("t2", {"UserID": "u2", "n": 2})
        client.put("t3", {"UserID": "u1", "n": 3})
        hits = client.lookup("UserID", "u1")
        assert [key for key, _doc, _seq in hits] == ["t3", "t1"]
        assert hits[0][1] == {"UserID": "u1", "n": 3}
        ranged = client.range_lookup("UserID", "u1", "u2")
        assert {key for key, _doc, _seq in ranged} == {"t1", "t2", "t3"}
        client.delete("t1")
        assert client.get("t1") is None
        assert [key for key, _d, _s in client.lookup("UserID", "u1")] \
            == ["t3"]


def test_stats_exposes_engine_and_server(kv_server):
    server, _db = kv_server
    with connect(server) as client:
        client.put(b"a", b"1")
        stats = client.stats()
    assert stats["db"]["pipeline"]["group_commit_ops"] >= 1
    assert stats["server"]["connections_accepted"] == 1
    assert stats["server"]["requests"] >= 2
    assert stats["active_connections"] == 1


# -- pipelining --------------------------------------------------------------

def test_pipeline_results_in_request_order(kv_server):
    server, db = kv_server
    with connect(server) as client:
        with client.pipeline() as p:
            for i in range(100):
                p.put(b"p%03d" % i, b"%d" % i)
        seqs = p.results
        assert len(seqs) == 100
        # In-order responses: sequence numbers ascend with request order.
        assert seqs == sorted(seqs)
        assert db.get(b"p099") == b"99"
    # The run was coalesced: fewer write groups than operations.
    pipeline = db.stats()["pipeline"]
    assert pipeline["write_groups"] < 100
    assert server.stats.coalesced_ops > 0


def test_pipeline_mixes_reads_and_writes(kv_server):
    server, _db = kv_server
    with connect(server) as client:
        client.put(b"seed", b"s")
        with client.pipeline() as p:
            p.put(b"w1", b"1")
            p.get(b"seed")
            p.put(b"w2", b"2")
            p.get(b"w1")
        w1_seq, seed_val, w2_seq, w1_val = p.results
        assert seed_val == b"s"
        assert w1_val == b"1"
        assert w2_seq > w1_seq


def test_pipeline_error_does_not_desync(kv_server):
    server, _db = kv_server
    with connect(server) as client:
        with client.pipeline() as p:
            p.put(b"good1", b"1")
            p.put(b"bad", "not-bytes")  # type: ignore[arg-type]
            p.put(b"good2", b"2")
            with pytest.raises(RemoteError):
                p.flush()
        results = p.results
        assert isinstance(results[1], RemoteError)
        assert isinstance(results[0], int)
        assert isinstance(results[2], int)
        # Connection still usable after the error.
        assert client.get(b"good2") == b"2"


def test_backpressure_bounds_inflight(kv_server):
    server, db = kv_server
    server.max_inflight = 2  # shrink before the connection is made
    with connect(server) as client:
        with client.pipeline() as p:
            for i in range(60):
                p.put(b"bp%03d" % i, b"x")
        assert len(p.results) == 60
        assert db.get(b"bp059") == b"x"
    assert server.stats.backpressure_waits > 0


# -- error handling ----------------------------------------------------------

def test_unknown_op_is_reported_not_fatal(kv_server):
    server, _db = kv_server
    with connect(server) as client:
        with pytest.raises(RemoteError, match="unknown op"):
            client._call("frobnicate", [])
        assert client.put(b"after", b"ok") > 0


def test_lookup_rejected_in_kv_mode(kv_server):
    server, _db = kv_server
    with connect(server) as client:
        with pytest.raises(RemoteError, match="LOOKUP"):
            client.lookup("UserID", "u1")


def test_malformed_request_payload_keeps_connection(kv_server):
    server, _db = kv_server
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=5)
    try:
        sock.sendall(encode_frame(b"\x7f\x00garbage"))
        response = read_frame(sock)
        assert response is not None  # an error response, not a hangup
        # Framing stayed in sync: a well-formed request still works.
        sock.sendall(encode_frame(encode_value([1, "put", b"k", b"v"])))
        assert read_frame(sock) is not None
    finally:
        sock.close()
    assert server.stats.errors >= 1


def test_oversized_frame_rejected_and_connection_dropped():
    db = DB.open(MemoryVFS(), "data", Options(background_compaction=True))
    server = Server(db, max_frame_bytes=1024)
    host, port = server.start()
    try:
        sock = socket.create_connection((host, port), timeout=5)
        try:
            sock.sendall(struct.pack(">I", 1 << 20))
            response = read_frame(sock)
            assert response is not None  # error response before the close
            assert read_frame(sock) is None  # then EOF
        finally:
            sock.close()
        deadline = time.time() + 5
        while server.stats.frames_rejected == 0 and time.time() < deadline:
            time.sleep(0.01)
        assert server.stats.frames_rejected == 1
        # The server survives and serves new connections.
        with Client(host, port) as client:
            assert client.put(b"k", b"v") > 0
    finally:
        server.close()
        db.close()


# -- disconnects -------------------------------------------------------------

def test_torn_frame_discards_only_the_torn_request(kv_server):
    """Disconnect mid-pipelined-batch: complete frames apply, the torn
    one never half-applies."""
    server, db = kv_server
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=5)
    complete = (encode_frame(encode_value([1, "put", b"whole-1", b"a"]))
                + encode_frame(encode_value([2, "put", b"whole-2", b"b"])))
    torn = encode_frame(encode_value([3, "put", b"torn", b"c"]))
    sock.sendall(complete + torn[:len(torn) // 2])
    sock.close()  # vanish mid-frame, responses unread
    deadline = time.time() + 5
    while server.stats.torn_frames == 0 and time.time() < deadline:
        time.sleep(0.01)
    assert server.stats.torn_frames == 1
    deadline = time.time() + 5
    while db.get(b"whole-2") is None and time.time() < deadline:
        time.sleep(0.01)
    assert db.get(b"whole-1") == b"a"
    assert db.get(b"whole-2") == b"b"
    assert db.get(b"torn") is None  # never half-applied


def test_client_disconnect_with_responses_in_flight(kv_server):
    """A peer that vanishes without reading responses must not wedge or
    kill the server."""
    server, db = kv_server
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=5)
    frames = b"".join(
        encode_frame(encode_value([i, "put", b"d%03d" % i, b"x"]))
        for i in range(50))
    sock.sendall(frames)
    sock.close()
    deadline = time.time() + 5
    while server.active_connections() > 0 and time.time() < deadline:
        time.sleep(0.01)
    # Server is alive and consistent afterwards.
    with connect(server) as client:
        assert client.put(b"after-disconnect", b"ok") > 0
    assert db.get(b"after-disconnect") == b"ok"


def test_many_clients_interleave(kv_server):
    server, db = kv_server
    clients = [connect(server) for _ in range(5)]
    try:
        for round_no in range(10):
            for cid, client in enumerate(clients):
                client.put(b"c%d-%02d" % (cid, round_no), b"v")
        for cid in range(5):
            for round_no in range(10):
                assert db.get(b"c%d-%02d" % (cid, round_no)) == b"v"
    finally:
        for client in clients:
            client.close()
