"""Exception hierarchy for the LSM engine.

Mirrors LevelDB's ``Status`` codes: rather than returning status objects the
engine raises a small, well-defined family of exceptions.  All engine errors
derive from :class:`LSMError` so callers can catch storage failures with a
single ``except`` clause.
"""

import errno as _errno


class LSMError(Exception):
    """Base class for every error raised by the storage engine."""


class CorruptionError(LSMError):
    """Persistent data failed an integrity check (CRC, magic number, bounds).

    Raised while decoding WAL records, SSTable blocks, footers or manifest
    edits whose stored checksums or framing do not match their contents.
    """


class NotFoundError(LSMError, KeyError):
    """A required file or key was not found.

    Subclasses :class:`KeyError` as well so that dictionary-style access
    idioms (``except KeyError``) keep working for key lookups.
    """


class InvalidArgumentError(LSMError, ValueError):
    """A caller-supplied argument is malformed or out of range."""


class DBClosedError(LSMError):
    """An operation was attempted on a database handle after ``close()``."""


class ReadOnlyError(LSMError):
    """A mutation was attempted on a database opened in read-only mode."""


class WriteStallError(LSMError):
    """Writes were rejected because level-0 reached its hard file limit.

    LevelDB slows and eventually stalls writers when compaction cannot keep
    up.  The synchronous engine compacts inline, so in practice this error
    signals a configuration problem (for example a zero-size level budget).
    """


class FaultInjectedError(LSMError, IOError):
    """A write failed because the fault-injection harness said so.

    Raised by :class:`~repro.lsm.faults.FaultInjectingVFS` in place of the
    ``EIO`` a real disk would return.  Subclasses :class:`IOError` so code
    written against the OS error taxonomy behaves identically under test.
    """


class ReadFaultError(FaultInjectedError):
    """A read failed because the fault-injection harness said so.

    Models a *transient* ``EIO`` from the device (a retryable media error),
    as opposed to :class:`CorruptionError`, which means the bytes came back
    but failed their integrity check.  The read path retries these with
    bounded backoff (``Options.read_retries``) before giving up.
    """


class OutOfSpaceError(FaultInjectedError):
    """A write failed because the simulated device is full (``ENOSPC``).

    Unlike a crash, the machine is still up and all existing data is
    readable; the engine responds by parking background maintenance and
    flipping the database into read-only mode rather than crash-looping.
    """

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.errno = _errno.ENOSPC


class SimulatedCrashError(FaultInjectedError):
    """The simulated machine has crashed; all further I/O fails.

    Once raised, the originating :class:`~repro.lsm.faults.FaultInjectingVFS`
    refuses every subsequent operation with the same error, so in-flight
    work unwinds exactly as it would on a kernel panic.  Recovery proceeds
    from :meth:`~repro.lsm.faults.FaultInjectingVFS.crash_image`.
    """


class CompactionWorkerError(LSMError):
    """A compaction worker process failed and the job was abandoned.

    Raised by the coordinator when a worker dies past its retry budget or
    reports an exception that does not map onto a known engine error.  By
    then every partially written output file has been deleted and no
    version edit was installed: the compaction simply did not happen, and
    its inputs remain live — the same externally visible state as an
    inline compaction that failed before its manifest edit.
    """
