"""Static and Mixed operation workloads (paper Section 5.1, Table 7).

*Static* workloads "first do all the insertions, build the indexes and then
perform queries on the static data", isolating the cost of each operation
type.  *Mixed* workloads interleave "continuous data arrivals ... with
queries on primary and secondary attributes simulating real workloads",
with the operation-frequency ratios of Table 7(b)::

    write heavy:   80% PUT   15% GET   5% LOOKUP    0% update
    read heavy:    20% PUT   70% GET  10% LOOKUP    0% update
    update heavy:  40% PUT   15% GET   5% LOOKUP   40% update

(an *update* is a PUT that reuses an existing primary key).

Query parameters follow the data distribution: LOOKUP values are drawn from
the same Zipf user distribution the tweets were generated with, and
RANGELOOKUP ranges are expressed in the paper's units — a width in *users*
for the UserID index and in *minutes* for the CreationTime index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.records import Document
from repro.workloads.ops import (
    Delete,
    Get,
    Lookup,
    Operation,
    Put,
    RangeLookup,
)
from repro.workloads.tweets import SeedProfile, TweetGenerator

#: Table 7(b): operation-frequency ratios of the three Mixed workloads.
MIXED_RATIOS: dict[str, dict[str, float]] = {
    "write_heavy": {"put": 0.80, "get": 0.15, "lookup": 0.05, "update": 0.00},
    "read_heavy": {"put": 0.20, "get": 0.70, "lookup": 0.10, "update": 0.00},
    "update_heavy": {"put": 0.40, "get": 0.15, "lookup": 0.05, "update": 0.40},
}


@dataclass
class StaticWorkload:
    """Build-then-query workload over a fixed synthetic tweet set."""

    num_tweets: int = 10_000
    profile: SeedProfile = field(default_factory=SeedProfile)
    seed: int = 2018

    def __post_init__(self) -> None:
        generator = TweetGenerator(self.profile, self.seed)
        self.tweets: list[tuple[str, Document]] = list(
            generator.tweets(self.num_tweets))
        self._rng = random.Random(self.seed ^ 0xC0FFEE)
        self._times = [doc["CreationTime"] for _key, doc in self.tweets]

    # -- load phase --------------------------------------------------------------

    def load_phase(self) -> Iterator[Put]:
        """All insertions, in arrival order."""
        for key, document in self.tweets:
            yield Put(key, document)

    # -- query phases ---------------------------------------------------------

    def gets(self, count: int) -> Iterator[Get]:
        """GETs on uniformly sampled existing primary keys."""
        for _ in range(count):
            key, _document = self._rng.choice(self.tweets)
            yield Get(key)

    def lookups(self, count: int, attribute: str = "UserID",
                k: int | None = 10) -> Iterator[Lookup]:
        """LOOKUPs whose values follow the dataset's value distribution.

        Sampling a random tweet's attribute value weights each value by its
        frequency, exactly as querying "based on the distribution of values
        in the input tweets dataset" prescribes.
        """
        for _ in range(count):
            _key, document = self._rng.choice(self.tweets)
            yield Lookup(attribute, document[attribute], k)

    def user_range_lookups(self, count: int, selectivity_users: int,
                           k: int | None = 10) -> Iterator[RangeLookup]:
        """UserID ranges covering ``selectivity_users`` adjacent user ids."""
        max_start = max(0, self.profile.num_users - selectivity_users)
        for _ in range(count):
            start = self._rng.randint(0, max_start)
            low = f"u{start:05d}"
            high = f"u{start + selectivity_users - 1:05d}"
            yield RangeLookup("UserID", low, high, k)

    def time_range_lookups(self, count: int, selectivity_minutes: float,
                           k: int | None = 10) -> Iterator[RangeLookup]:
        """CreationTime windows ``selectivity_minutes`` long."""
        window = int(selectivity_minutes * 60)
        lo_bound = min(self._times)
        hi_bound = max(self._times)
        max_start = max(lo_bound, hi_bound - window)
        for _ in range(count):
            start = self._rng.randint(lo_bound, max_start)
            yield RangeLookup("CreationTime", start, start + window, k)


@dataclass
class MixedWorkload:
    """Interleaved stream of PUT/GET/LOOKUP/update (and optional DEL) ops.

    A ``delete`` ratio adds Table 1's DEL operations (targeting existing
    keys); the paper's Table 7(b) mixes use none, but DELs exercise the
    stand-alone indexes' read-before-delete maintenance path.
    """

    num_operations: int = 10_000
    ratios: dict[str, float] = field(
        default_factory=lambda: dict(MIXED_RATIOS["write_heavy"]))
    lookup_attribute: str = "UserID"
    lookup_k: int | None = 5
    profile: SeedProfile = field(default_factory=SeedProfile)
    seed: int = 2018

    def __post_init__(self) -> None:
        total = sum(self.ratios.get(name, 0.0)
                    for name in ("put", "get", "lookup", "update",
                                 "delete"))
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"ratios must sum to 1, got {total:.3f}")

    def operations(self) -> Iterator[Operation]:
        """The operation stream, deterministically seeded.

        GETs and updates target keys inserted earlier in the same stream;
        LOOKUP values are drawn from the generator's user distribution so
        hot users are queried proportionally more often, as in the paper.
        """
        generator = TweetGenerator(self.profile, self.seed)
        rng = random.Random(self.seed ^ 0xBEEF)
        inserted: list[str] = []
        seen_values: list[object] = []

        def remember(document: Document) -> None:
            value = document.get(self.lookup_attribute)
            if value is not None:
                seen_values.append(value)

        # Prime the store with a handful of tweets so early GETs/updates
        # have targets.
        for _ in range(min(16, self.num_operations)):
            key, document = generator.next_tweet()
            inserted.append(key)
            remember(document)
            yield Put(key, document)
        put_cut = self.ratios.get("put", 0.0)
        get_cut = put_cut + self.ratios.get("get", 0.0)
        lookup_cut = get_cut + self.ratios.get("lookup", 0.0)
        update_cut = lookup_cut + self.ratios.get("update", 0.0)
        for _ in range(self.num_operations - len(inserted)):
            roll = rng.random()
            if roll < put_cut:
                key, document = generator.next_tweet()
                inserted.append(key)
                remember(document)
                yield Put(key, document)
            elif roll < get_cut:
                yield Get(rng.choice(inserted))
            elif roll < lookup_cut:
                # Sampling a seen value weights hot values proportionally,
                # matching the paper's distribution-driven conditions.
                yield Lookup(self.lookup_attribute,
                             rng.choice(seen_values), self.lookup_k)
            elif roll < update_cut:
                # Update: re-PUT an existing key with fresh attributes.
                key = rng.choice(inserted)
                _new_key, document = generator.next_tweet()
                remember(document)
                yield Put(key, document, is_update=True)
            else:
                yield Delete(rng.choice(inserted))
