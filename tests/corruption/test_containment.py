"""Containment: quarantine, serve-around, cache purging, filter degradation.

``Options.on_corruption`` picks the blast radius of a failed CRC:

* ``"raise"`` (default) — the error propagates; nothing else changes, so
  the default read path stays byte-identical to the pre-containment
  engine.
* ``"quarantine"`` — the table holding the bad block is served around
  from then on: reads skip it (results may be *missing-but-detected*,
  never wrong), its bytes are purged from every cache, and the event is
  counted in ``DB.stats()["corruption"]``.
"""

from __future__ import annotations

import pytest

from repro.lsm.db import DB
from repro.lsm.errors import CorruptionError
from repro.lsm.faults import FaultInjectingVFS

from drill_utils import corruption_options, populate, table_files


def block_offsets(vfs: FaultInjectingVFS, name: str):
    """``(data_block_offsets, meta_block_offsets)`` of one stored table."""
    from repro.lsm.keys import decode_length_prefixed, decode_varint
    from repro.lsm.sstable import _FOOTER_SIZE, Block, BlockHandle

    data = bytes(vfs._files[name].data)
    footer = data[-_FOOTER_SIZE:]
    metaindex_handle, pos = BlockHandle.decode(footer, 0)
    index_handle, _pos = BlockHandle.decode(footer, pos)
    index_block = Block(
        data[index_handle.offset:index_handle.offset + index_handle.size])
    data_offsets = []
    for _key, value in index_block:
        handle, _off = BlockHandle.decode(value, 0)
        data_offsets.append(handle.offset)
    meta_offsets = []
    payload = data[metaindex_handle.offset:
                   metaindex_handle.offset + metaindex_handle.size]
    count, pos = decode_varint(payload, 0)
    for _ in range(count):
        _name, pos = decode_length_prefixed(payload, pos)
        handle_bytes, pos = decode_length_prefixed(payload, pos)
        handle, _off = BlockHandle.decode(handle_bytes, 0)
        meta_offsets.append(handle.offset)
    return data_offsets, meta_offsets


class TestQuarantine:
    def test_scan_serves_around_corrupt_table(self, faulty_db):
        vfs, db, expected = faulty_db
        victim = table_files(vfs)[0]
        data_offsets, _ = block_offsets(vfs, victim)
        vfs.flip_bit(victim, data_offsets[0] + 3)
        db.close()
        db = DB.open(vfs, "db", corruption_options(paranoid_checks=True))
        got = dict(db.scan())
        # Never a wrong value: everything returned matches the original
        # writes; the quarantined table's rows are the only ones missing,
        # and the loss is *detected* (counted, logged, listed).
        for key, value in got.items():
            assert expected[key] == value
        assert got != expected  # some rows really were lost
        stats = db.stats()["corruption"]
        assert stats["events"] >= 1
        assert stats["tables_quarantined"] == len(stats["quarantined"]) >= 1
        db.close()

    def test_get_of_quarantined_key_is_none_not_garbage(self, faulty_db):
        vfs, db, expected = faulty_db
        victim = table_files(vfs)[0]
        data_offsets, _ = block_offsets(vfs, victim)
        vfs.flip_bit(victim, data_offsets[0] + 3)
        db.close()
        db = DB.open(vfs, "db", corruption_options(paranoid_checks=True))
        for key, value in expected.items():
            got = db.get(key)
            assert got is None or got == value
        db.close()

    def test_raise_policy_propagates(self, faulty_db):
        vfs, db, _expected = faulty_db
        victim = table_files(vfs)[0]
        data_offsets, _ = block_offsets(vfs, victim)
        vfs.flip_bit(victim, data_offsets[0] + 3)
        db.close()
        db = DB.open(vfs, "db",
                     corruption_options(on_corruption="raise",
                                        paranoid_checks=True))
        with pytest.raises(CorruptionError):
            for _ in db.scan():
                pass
        assert db.stats()["corruption"]["tables_quarantined"] == 0
        db.close()

    def test_quarantine_is_sticky_and_cheap(self, faulty_db):
        vfs, db, _expected = faulty_db
        victim = table_files(vfs)[0]
        data_offsets, _ = block_offsets(vfs, victim)
        vfs.flip_bit(victim, data_offsets[0] + 3)
        db.close()
        db = DB.open(vfs, "db", corruption_options(paranoid_checks=True))
        list(db.scan())
        quarantined = db.stats()["corruption"]["quarantined"]
        # Later reads serve around without re-reading the rotten file.
        reads_before = vfs.read_op_count
        list(db.scan())
        assert db.stats()["corruption"]["quarantined"] == quarantined
        assert vfs.read_op_count > reads_before  # healthy tables still read
        db.close()


class TestCachePoisoning:
    """A block that failed its CRC must never be served from any cache."""

    def test_crc_failing_block_is_never_cached(self):
        vfs = FaultInjectingVFS()
        options = corruption_options(on_corruption="raise",
                                     paranoid_checks=True,
                                     block_cache_size=1 << 20)
        db = DB.open(vfs, "db", options)
        expected = populate(db)
        db.close()
        # Rot one stored bit, then read it with completely cold caches.
        victim = table_files(vfs)[0]
        victim_number = int(victim.rsplit("/", 1)[-1].split(".")[0])
        data_offsets, _ = block_offsets(vfs, victim)
        vfs.flip_bit(victim, data_offsets[0] + 3)
        db = DB.open(vfs, "db", options)
        with pytest.raises(CorruptionError):
            for _ in db.scan():
                pass
        # The poisoned payload must not have been inserted into the block
        # cache on its way to the CRC failure.
        cache = db.table_cache.block_cache
        assert not any(key == (victim_number, data_offsets[0])
                       for key in cache._entries)
        # Flip the same bit back: the device healed.  If any cache still
        # held bytes decoded from the rotten read, this scan would serve
        # the poisoned copy; it must read clean.
        vfs.flip_bit(victim, data_offsets[0] + 3)
        assert dict(db.scan()) == expected
        db.close()

    def test_quarantine_purges_block_cache(self, faulty_db):
        vfs, db, _expected = faulty_db
        db.close()
        options = corruption_options(paranoid_checks=True,
                                     block_cache_size=1 << 20)
        db = DB.open(vfs, "db", options)
        list(db.scan())  # warm the block cache
        victim = table_files(vfs)[0]
        victim_number = int(victim.rsplit("/", 1)[-1].split(".")[0])
        cache = db.table_cache.block_cache
        assert any(key[0] == victim_number for key in cache._entries), \
            "drill needs the victim's blocks cached"
        db._quarantine_table(victim_number, CorruptionError("drill"))
        assert not any(key[0] == victim_number for key in cache._entries)
        db.close()


class TestFilterDegradation:
    def test_corrupt_meta_block_degrades_not_fails(self, faulty_db):
        vfs, db, expected = faulty_db
        victim = table_files(vfs)[0]
        _data, meta_offsets = block_offsets(vfs, victim)
        assert meta_offsets, "tables write at least the primary filter"
        vfs.flip_bit(victim, meta_offsets[0] + 3)
        db.close()
        db = DB.open(vfs, "db", corruption_options())
        # Filters are advisory: with one dropped, every read still returns
        # exactly the right answer — just with more data-block reads.
        assert dict(db.scan()) == expected
        for key in (b"k0000", b"k0150", b"k0299", b"missing"):
            assert db.get(key) == expected.get(key)
        assert db.stats()["corruption"]["filter_degradations"] >= 1
        assert db.stats()["corruption"]["tables_quarantined"] == 0
        db.close()

    def test_raise_policy_fails_table_open(self, faulty_db):
        vfs, db, _expected = faulty_db
        victim = table_files(vfs)[0]
        _data, meta_offsets = block_offsets(vfs, victim)
        vfs.flip_bit(victim, meta_offsets[0] + 3)
        db.close()
        db = DB.open(vfs, "db", corruption_options(on_corruption="raise"))
        with pytest.raises(CorruptionError):
            for _ in db.scan():
                pass
        db.close()
