"""The full-scan baseline."""

from conftest import load_tweets, open_db

from repro.core.base import IndexKind


class TestNoIndex:
    def test_lookup(self, index_options):
        db = open_db(IndexKind.NOINDEX, index_options)
        load_tweets(db, 60, users=6)
        results = db.lookup("UserID", "u4")
        assert [r.key for r in results] == [
            f"t{i:05d}" for i in range(59, -1, -1) if i % 6 == 4]
        db.close()

    def test_lookup_top_k(self, index_options):
        db = open_db(IndexKind.NOINDEX, index_options)
        load_tweets(db, 60, users=6)
        results = db.lookup("UserID", "u4", k=2)
        assert [r.key for r in results] == ["t00058", "t00052"]
        db.close()

    def test_range_lookup(self, index_options):
        db = open_db(IndexKind.NOINDEX, index_options,
                     attributes=("CreationTime",))
        load_tweets(db, 100)
        results = db.range_lookup("CreationTime", 1020, 1024)
        assert sorted(r.key for r in results) == \
            [f"t{i:05d}" for i in range(20, 25)]
        db.close()

    def test_updates_and_deletes_respected(self, index_options):
        db = open_db(IndexKind.NOINDEX, index_options)
        db.put("t1", {"UserID": "u1"})
        db.put("t2", {"UserID": "u1"})
        db.put("t1", {"UserID": "u2"})
        db.delete("t2")
        assert db.lookup("UserID", "u1") == []
        assert [r.key for r in db.lookup("UserID", "u2")] == ["t1"]
        db.close()

    def test_no_write_overhead(self, index_options):
        db = open_db(IndexKind.NOINDEX, index_options)
        load_tweets(db, 50)
        assert db.indexes["UserID"].size_bytes() == 0
        db.close()

    def test_empty_range(self, index_options):
        db = open_db(IndexKind.NOINDEX, index_options)
        load_tweets(db, 10)
        assert db.range_lookup("UserID", "z", "a") == []
        db.close()
