"""Durability walkthrough: WAL replay, manifest recovery, integrity audit.

Uses the on-disk :class:`~repro.lsm.vfs.LocalVFS` so you can inspect the
produced files (SSTables, WAL segments, MANIFEST, CURRENT) in a temp
directory, then demonstrates that a "crash" (dropping the handle without
flushing) loses nothing and that the integrity checker audits the result.

Run with::

    python examples/crash_recovery.py
"""

import tempfile

from repro import IndexKind, SecondaryIndexedDB
from repro.lsm.checker import verify_integrity
from repro.lsm.options import Options
from repro.lsm.vfs import LocalVFS


def main() -> None:
    root = tempfile.mkdtemp(prefix="leveldbpp-")
    # sync_writes=True fsyncs the WAL after every write batch, so even an
    # abrupt crash loses nothing.  (LevelDB's default — and this library's
    # — is asynchronous: a crash may lose the last few unsynced writes,
    # exactly as LevelDB documents.)
    options = Options(block_size=2048, sstable_target_size=16 * 1024,
                      memtable_budget=16 * 1024, l1_target_size=64 * 1024,
                      sync_writes=True)
    print(f"database directory: {root}")

    # Phase 1: write, flush some of it, then "crash" without closing
    # cleanly — the last writes live only in the write-ahead log.
    vfs = LocalVFS(root)
    db = SecondaryIndexedDB.open(vfs, "data", {"UserID": IndexKind.LAZY},
                                 options)
    for i in range(500):
        db.put(f"t{i:05d}", {"UserID": f"u{i % 7}", "Body": "x" * 60})
    db.flush()
    for i in range(500, 520):
        db.put(f"t{i:05d}", {"UserID": "u1", "Body": "only-in-the-wal"})
    print("wrote 520 records; the last 20 were never flushed")
    files = vfs.list_dir("data/")
    print(f"on disk: {sum(1 for f in files if f.endswith('.ldb'))} tables, "
          f"{sum(1 for f in files if f.endswith('.log'))} WAL segment(s), "
          f"CURRENT -> manifest")
    # Simulated crash: drop every handle without close()/flush().
    del db

    # Phase 2: reopen — manifest replays version edits, the WAL replays
    # the unflushed tail, and the Lazy index answers over all 520 records.
    vfs2 = LocalVFS(root)
    recovered = SecondaryIndexedDB.open(vfs2, "data",
                                        {"UserID": IndexKind.LAZY}, options)
    assert recovered.get("t00519") == {"UserID": "u1",
                                       "Body": "only-in-the-wal"}
    u1_tweets = recovered.lookup("UserID", "u1", early_termination=False)
    print(f"\nafter recovery: t00519 = {recovered.get('t00519')['Body']!r}")
    print(f"u1 has {len(u1_tweets)} tweets "
          f"(including all 20 WAL-only writes)")

    # Phase 3: audit the recovered store — CRCs, key order, manifest
    # consistency, bloom/zone-map soundness.
    report = verify_integrity(recovered.primary)
    print(f"\nintegrity audit: {report.tables_checked} tables, "
          f"{report.blocks_checked} blocks, "
          f"{report.entries_checked} entries — "
          f"{'CLEAN' if report.ok else report.problems}")
    recovered.close()


if __name__ == "__main__":
    main()
