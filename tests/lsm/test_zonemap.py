"""Zone maps and the order-preserving attribute encoding."""

import pytest

from repro.lsm.zonemap import (
    ZoneMap,
    ZoneMapBuilder,
    decode_attribute,
    encode_attribute,
)


class TestAttributeEncoding:
    def test_string_order(self):
        assert encode_attribute("apple") < encode_attribute("banana")
        assert encode_attribute("a") < encode_attribute("ab")

    def test_int_order_including_negatives(self):
        values = [-1000, -1, 0, 1, 42, 10**9]
        encoded = [encode_attribute(v) for v in values]
        assert encoded == sorted(encoded)

    def test_float_order(self):
        values = [-2.5, -0.1, 0.0, 0.25, 3.14, 1e18]
        encoded = [encode_attribute(v) for v in values]
        assert encoded == sorted(encoded)

    def test_int_float_interleaved(self):
        assert encode_attribute(1) < encode_attribute(1.5)
        assert encode_attribute(1.5) < encode_attribute(2)

    def test_numbers_sort_before_strings(self):
        assert encode_attribute(10**12) < encode_attribute("")

    def test_roundtrip_numbers(self):
        for value in [0, -5, 123456, 2.75, -0.125]:
            assert decode_attribute(encode_attribute(value)) == value

    def test_roundtrip_strings(self):
        for value in ["", "hello", "unicode ✓"]:
            assert decode_attribute(encode_attribute(value)) == value

    def test_bool_is_numeric(self):
        assert decode_attribute(encode_attribute(True)) == 1.0

    def test_bytes_pass_through_as_string_family(self):
        assert encode_attribute(b"raw")[0:1] == b"s"

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            encode_attribute(["list"])

    def test_decode_garbage(self):
        with pytest.raises(ValueError):
            decode_attribute(b"")
        with pytest.raises(ValueError):
            decode_attribute(b"zjunk")


class TestZoneMap:
    def test_empty_zone_matches_nothing(self):
        zone = ZoneMap()
        assert zone.is_empty
        assert not zone.contains(encode_attribute("x"))
        assert not zone.overlaps(encode_attribute("a"), encode_attribute("z"))

    def test_contains_bounds_inclusive(self):
        zone = ZoneMap(encode_attribute(10), encode_attribute(20))
        assert zone.contains(encode_attribute(10))
        assert zone.contains(encode_attribute(20))
        assert zone.contains(encode_attribute(15))
        assert not zone.contains(encode_attribute(9))
        assert not zone.contains(encode_attribute(21))

    def test_overlaps(self):
        zone = ZoneMap(encode_attribute(10), encode_attribute(20))
        assert zone.overlaps(encode_attribute(5), encode_attribute(10))
        assert zone.overlaps(encode_attribute(20), encode_attribute(30))
        assert zone.overlaps(encode_attribute(12), encode_attribute(13))
        assert zone.overlaps(encode_attribute(0), encode_attribute(100))
        assert not zone.overlaps(encode_attribute(0), encode_attribute(9))
        assert not zone.overlaps(encode_attribute(21), encode_attribute(99))

    def test_encode_decode_roundtrip(self):
        zone = ZoneMap(encode_attribute("aa"), encode_attribute("zz"))
        decoded, offset = ZoneMap.decode(zone.encode())
        assert decoded == zone
        assert offset == len(zone.encode())

    def test_empty_roundtrip(self):
        decoded, _ = ZoneMap.decode(ZoneMap().encode())
        assert decoded.is_empty

    def test_decode_sequence(self):
        zones = [ZoneMap(b"sa", b"sb"), ZoneMap(), ZoneMap(b"sc", b"sd")]
        blob = b"".join(z.encode() for z in zones)
        offset = 0
        out = []
        for _ in range(3):
            zone, offset = ZoneMap.decode(blob, offset)
            out.append(zone)
        assert out == zones


class TestZoneMapBuilder:
    def test_builder_tracks_min_max(self):
        builder = ZoneMapBuilder()
        for value in [5, 2, 9, 7]:
            builder.add(encode_attribute(value))
        zone = builder.finish()
        assert zone.min_value == encode_attribute(2)
        assert zone.max_value == encode_attribute(9)

    def test_empty_builder(self):
        assert ZoneMapBuilder().finish().is_empty

    def test_merge(self):
        builder = ZoneMapBuilder()
        builder.add(encode_attribute(50))
        builder.merge(ZoneMap(encode_attribute(1), encode_attribute(10)))
        builder.merge(ZoneMap())  # no-op
        zone = builder.finish()
        assert zone.min_value == encode_attribute(1)
        assert zone.max_value == encode_attribute(50)
