"""Wire format of the serving layer: frames and a small value codec.

Framing
-------

Every message travels as one *frame*::

    +----------------+---------------------+
    | length (4B BE) | payload (length B)  |
    +----------------+---------------------+

The length covers only the payload.  A frame whose declared length
exceeds the receiver's ``max_frame_bytes`` is rejected *before* any
payload is read (the declared length alone condemns it), so a hostile or
confused peer cannot make the server buffer gigabytes.  A connection
that closes mid-frame leaves a *torn* frame: the truncated bytes are
discarded whole — a torn request is never half-applied, a torn response
is never half-delivered.

Value codec
-----------

Payloads are encoded with a self-describing tagged binary codec (the
shape of msgpack, hand-rolled so the repo stays dependency-free).  It
covers exactly the types the database surface needs: ``None``, bools,
64-bit signed ints (zigzag varint), floats, ``bytes``, ``str``,
lists and dicts.  Documents (JSON objects), primary keys (bytes/str),
stats dicts and lookup results all round-trip losslessly.

Requests and responses are lists::

    request  = [request_id, op, *args]
    response = [request_id, status, payload]   # status 0 = ok, 1 = error

``request_id`` is chosen by the client and echoed back verbatim;
pipelined requests on one connection are answered strictly in order, so
the id is a sanity check rather than a routing key.
"""

from __future__ import annotations

import socket
import struct
from typing import Any

from repro.lsm.keys import decode_varint, encode_varint

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "ProtocolError",
    "FrameTooLargeError",
    "TornFrameError",
    "encode_value",
    "decode_value",
    "encode_frame",
    "read_frame",
    "write_frame",
    "recv_exact",
    "OPS",
    "STATUS_OK",
    "STATUS_ERROR",
]

#: Default ceiling on one frame's payload.  Large enough for a fat SCAN
#: page, small enough that a bad length prefix cannot balloon memory.
DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024

_LENGTH = struct.Struct(">I")
_FLOAT = struct.Struct(">d")

STATUS_OK = 0
STATUS_ERROR = 1

#: Operations the server understands (Table 1 plus engine surface).
#: ``apply`` is the idempotent write envelope the retrying client uses:
#: ``[request_id, "apply", client_id, client_seq, op, args]`` — the
#: server's dedup window keys on ``(client_id, client_seq)`` and replays
#: the original result (same sequence number) instead of re-applying.
OPS = ("put", "get", "delete", "lookup", "rangelookup", "scan", "stats",
       "apply")


class ProtocolError(Exception):
    """The peer sent bytes that do not parse as the protocol."""


class FrameTooLargeError(ProtocolError):
    """A frame's declared length exceeds the receiver's limit."""


class TornFrameError(ProtocolError):
    """The connection closed in the middle of a frame."""


# -- value codec -------------------------------------------------------------

_NIL = 0x00
_TRUE = 0x01
_FALSE = 0x02
_INT = 0x03
_FLOAT_TAG = 0x04
_BYTES = 0x05
_STR = 0x06
_LIST = 0x07
_DICT = 0x08


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_NIL)
    elif value is True:
        out.append(_TRUE)
    elif value is False:
        out.append(_FALSE)
    elif isinstance(value, int):
        # Zigzag maps signed ints onto the engine's non-negative varints.
        # The varint decoder caps at 10 bytes, so bound the magnitude here
        # and fail on the sender instead of poisoning the peer's stream.
        if not -(2**63) <= value < 2**63:
            raise ProtocolError(
                f"int {value} outside the codec's 64-bit range")
        zigzag = (value << 1) if value >= 0 else ((-value << 1) - 1)
        out.append(_INT)
        out += encode_varint(zigzag)
    elif isinstance(value, float):
        out.append(_FLOAT_TAG)
        out += _FLOAT.pack(value)
    elif isinstance(value, bytes):
        out.append(_BYTES)
        out += encode_varint(len(value))
        out += value
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_STR)
        out += encode_varint(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_LIST)
        out += encode_varint(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(_DICT)
        out += encode_varint(len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    else:
        raise ProtocolError(
            f"cannot encode {type(value).__name__} on the wire")


def encode_value(value: Any) -> bytes:
    """Serialize one value (the whole payload of a frame)."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _decode_from(data: bytes, pos: int) -> tuple[Any, int]:
    try:
        tag = data[pos]
    except IndexError:
        raise ProtocolError("truncated payload") from None
    pos += 1
    if tag == _NIL:
        return None, pos
    if tag == _TRUE:
        return True, pos
    if tag == _FALSE:
        return False, pos
    try:
        if tag == _INT:
            zigzag, pos = decode_varint(data, pos)
            return (zigzag >> 1) if zigzag % 2 == 0 \
                else -((zigzag + 1) >> 1), pos
        if tag == _FLOAT_TAG:
            return _FLOAT.unpack_from(data, pos)[0], pos + 8
        if tag == _BYTES:
            length, pos = decode_varint(data, pos)
            end = pos + length
            if end > len(data):
                raise ProtocolError("truncated bytes value")
            return data[pos:end], end
        if tag == _STR:
            length, pos = decode_varint(data, pos)
            end = pos + length
            if end > len(data):
                raise ProtocolError("truncated str value")
            return data[pos:end].decode("utf-8"), end
        if tag == _LIST:
            count, pos = decode_varint(data, pos)
            items = []
            for _ in range(count):
                item, pos = _decode_from(data, pos)
                items.append(item)
            return items, pos
        if tag == _DICT:
            count, pos = decode_varint(data, pos)
            mapping = {}
            for _ in range(count):
                key, pos = _decode_from(data, pos)
                item, pos = _decode_from(data, pos)
                mapping[key] = item
            return mapping, pos
    except (ValueError, struct.error) as exc:
        raise ProtocolError(f"malformed payload: {exc}") from None
    raise ProtocolError(f"unknown type tag 0x{tag:02x}")


def decode_value(data: bytes) -> Any:
    """Parse one payload back into a value; trailing bytes are an error."""
    value, pos = _decode_from(data, 0)
    if pos != len(data):
        raise ProtocolError(
            f"{len(data) - pos} trailing bytes after payload")
    return value


# -- framing -----------------------------------------------------------------

def encode_frame(payload: bytes) -> bytes:
    """One frame's full byte string (header + payload)."""
    return _LENGTH.pack(len(payload)) + payload


def recv_exact(sock: socket.socket, length: int) -> bytes | None:
    """Read exactly ``length`` bytes, or signal how the stream ended.

    Returns ``None`` on a clean EOF *before any byte* (the peer closed
    between frames — the normal way a connection ends).  Raises
    :class:`TornFrameError` on EOF after a partial read: the peer died
    mid-frame and the fragment must be discarded.
    """
    if length == 0:
        return b""
    chunks: list[bytes] = []
    received = 0
    while received < length:
        chunk = sock.recv(min(length - received, 1 << 16))
        if not chunk:
            if received == 0:
                return None
            raise TornFrameError(
                f"connection closed {received}/{length} bytes into a frame")
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket,
               max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
               ) -> bytes | None:
    """Read one frame's payload; ``None`` on clean EOF between frames.

    Raises :class:`FrameTooLargeError` as soon as the header declares a
    payload over ``max_frame_bytes`` — the payload is never read — and
    :class:`TornFrameError` if the stream ends inside the header or the
    payload.
    """
    header = recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {length} bytes exceeds limit {max_frame_bytes}")
    payload = recv_exact(sock, length)
    if payload is None:
        raise TornFrameError("connection closed between header and payload")
    return payload


def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one frame (header + payload) in full."""
    sock.sendall(encode_frame(payload))
