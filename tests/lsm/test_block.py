"""Data blocks: prefix compression, restart points, seek."""

import pytest

from repro.lsm.block import Block, BlockBuilder
from repro.lsm.errors import CorruptionError
from repro.lsm.keys import (
    KIND_VALUE,
    MAX_SEQUENCE,
    pack_internal_key,
    unpack_internal_key,
)


def _key(user: str, seq: int = 1) -> bytes:
    return pack_internal_key(user.encode(), seq, KIND_VALUE)


def _build(pairs, restart_interval=16) -> Block:
    builder = BlockBuilder(restart_interval)
    for key, value in pairs:
        builder.add(key, value)
    return Block(builder.finish())


class TestBuilder:
    def test_empty_block(self):
        block = _build([])
        assert list(block) == []

    def test_roundtrip(self):
        pairs = [(_key(f"key{i:03d}"), f"value{i}".encode())
                 for i in range(100)]
        block = _build(pairs)
        assert list(block) == pairs

    def test_out_of_order_rejected(self):
        builder = BlockBuilder()
        builder.add(_key("b"), b"")
        with pytest.raises(ValueError):
            builder.add(_key("a"), b"")

    def test_same_key_newer_seq_first(self):
        builder = BlockBuilder()
        builder.add(_key("k", 9), b"new")
        builder.add(_key("k", 3), b"old")
        block = Block(builder.finish())
        assert [v for _k, v in block] == [b"new", b"old"]

    def test_prefix_compression_shrinks_output(self):
        shared = [(_key(f"commonprefix{i:05d}"), b"v") for i in range(200)]
        distinct = [(_key(f"{i:05d}distinctsuffix"), b"v") for i in range(200)]
        compressed = BlockBuilder()
        for key, value in shared:
            compressed.add(key, value)
        uncompressed = BlockBuilder()
        for key, value in distinct:
            uncompressed.add(key, value)
        assert len(compressed.finish()) < len(uncompressed.finish())

    def test_reset(self):
        builder = BlockBuilder()
        builder.add(_key("a"), b"1")
        builder.reset()
        assert builder.is_empty
        builder.add(_key("a"), b"1")  # re-adding same key is fine after reset
        assert builder.num_entries == 1

    def test_size_estimate_grows(self):
        builder = BlockBuilder()
        initial = builder.current_size_estimate()
        builder.add(_key("abc"), b"x" * 100)
        assert builder.current_size_estimate() > initial


class TestSeek:
    def test_seek_exact(self):
        pairs = [(_key(f"k{i:03d}"), str(i).encode()) for i in range(50)]
        block = _build(pairs, restart_interval=4)
        got = list(block.seek(_key("k025", MAX_SEQUENCE)))
        assert got == pairs[25:]

    def test_seek_between_keys(self):
        pairs = [(_key(f"k{i:03d}"), b"") for i in range(0, 50, 2)]
        block = _build(pairs, restart_interval=4)
        got = list(block.seek(_key("k003", MAX_SEQUENCE)))
        assert unpack_internal_key(got[0][0]).user_key == b"k004"

    def test_seek_past_end(self):
        block = _build([(_key("a"), b"")])
        assert list(block.seek(_key("z", MAX_SEQUENCE))) == []

    def test_seek_before_start(self):
        pairs = [(_key(f"k{i}"), b"") for i in range(5)]
        block = _build(pairs)
        assert list(block.seek(_key("", MAX_SEQUENCE))) == pairs

    def test_seek_respects_sequence_order(self):
        builder = BlockBuilder()
        builder.add(_key("k", 9), b"new")
        builder.add(_key("k", 3), b"old")
        block = Block(builder.finish())
        # Seeking at seq 5 must skip the newer (seq 9) version.
        got = list(block.seek(_key("k", 5)))
        assert [v for _k, v in got] == [b"old"]

    def test_all_restart_intervals_agree(self):
        pairs = [(_key(f"key{i:04d}"), str(i).encode()) for i in range(64)]
        for interval in (1, 2, 7, 16, 64):
            block = _build(pairs, restart_interval=interval)
            assert list(block) == pairs
            got = list(block.seek(_key("key0040", MAX_SEQUENCE)))
            assert got == pairs[40:]


class TestCorruption:
    def test_truncated_block(self):
        with pytest.raises(CorruptionError):
            Block(b"ab")

    def test_restart_array_overflow(self):
        # num_restarts claims more entries than the block holds.
        with pytest.raises(CorruptionError):
            Block(b"\x00\x00\x00\x00" + (99).to_bytes(4, "little"))

    def test_garbage_entries(self):
        import struct

        garbage = b"\xff" * 20 + struct.pack("<I", 0) + struct.pack("<I", 1)
        block = Block(garbage)
        with pytest.raises(CorruptionError):
            list(block)
