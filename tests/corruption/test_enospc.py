"""Disk-full: clean read-only degradation, never a crash-loop.

ENOSPC on any write path flips the DB into read-only mode: the failed
write is not acknowledged, everything previously acknowledged stays
readable (MemTables included), later mutations fail fast with
:class:`ReadOnlyError`, and the background pipeline parks — its thread
stays alive for an orderly ``close()`` instead of dying into a sticky
background error or retrying a doomed flush forever.
"""

from __future__ import annotations

import pytest

from repro.lsm.db import DB
from repro.lsm.errors import OutOfSpaceError, ReadOnlyError
from repro.lsm.faults import FaultInjectingVFS

from drill_utils import corruption_options, populate


class TestInlineWrites:
    def test_enospc_flips_read_only_and_keeps_acked_data(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        expected = populate(db, rows=100)
        vfs.schedule_enospc(vfs.op_count + 1)
        with pytest.raises(OutOfSpaceError):
            db.put(b"late", b"write")
        assert db.read_only
        stats = db.stats()["corruption"]
        assert stats["read_only"]
        assert "OutOfSpaceError" in stats["read_only_reason"]
        # The failed write was never acknowledged and is not visible.
        assert db.get(b"late") is None
        # Everything acknowledged before the disk filled still reads.
        assert dict(db.scan()) == expected
        db.close()

    def test_later_mutations_fail_fast(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        populate(db, rows=50)
        vfs.schedule_enospc(vfs.op_count + 1)
        with pytest.raises(OutOfSpaceError):
            db.put(b"x", b"y")
        # Read-only mode short-circuits before touching the device.
        ops_before = vfs.op_count
        for exc_type, mutate in [
            (ReadOnlyError, lambda: db.put(b"a", b"b")),
            (ReadOnlyError, lambda: db.delete(b"a")),
            (ReadOnlyError, db.flush),
            (ReadOnlyError, db.compact_range),
        ]:
            with pytest.raises(exc_type):
                mutate()
        assert vfs.op_count == ops_before
        db.close()

    def test_acked_writes_survive_reopen(self):
        """The WAL already holds every acknowledged write: after the disk
        is freed, recovery replays them all."""
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        expected = populate(db, rows=80)
        db.put(b"in-memtable", b"acked-but-not-flushed")
        expected[b"in-memtable"] = b"acked-but-not-flushed"
        vfs.schedule_enospc(vfs.op_count + 1)
        with pytest.raises(OutOfSpaceError):
            db.put(b"late", b"write")
        db.close()
        vfs.clear_enospc()
        db = DB.open(vfs, "db", corruption_options())
        assert dict(db.scan()) == expected
        assert not db.read_only  # fresh handle, disk has space again
        db.close()

    def test_enospc_during_flush_loses_nothing(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        expected = {}
        for i in range(30):
            key = f"m{i:03d}".encode()
            db.put(key, b"v" * 20)
            expected[key] = b"v" * 20
        vfs.schedule_enospc(vfs.op_count + 1)
        with pytest.raises(OutOfSpaceError):
            db.flush()
        assert db.read_only
        # The memtable was not reset: everything still reads in-memory.
        assert dict(db.scan()) == expected
        db.close()
        # And the WAL still covers it after reopen.
        vfs.clear_enospc()
        db = DB.open(vfs, "db", corruption_options())
        assert dict(db.scan()) == expected
        db.close()


class TestBackgroundPipeline:
    def _options(self):
        return corruption_options(background_compaction=True)

    def test_pipeline_parks_instead_of_dying(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", self._options())
        expected = populate(db, rows=100)
        vfs.schedule_enospc(vfs.op_count + 1)
        with pytest.raises((OutOfSpaceError, ReadOnlyError)):
            for i in range(500):  # enough writes to force a rotation
                db.put(f"extra{i:04d}".encode(), b"x" * 50)
        assert db.read_only
        # The background thread parked; it did not die into _bg_error.
        assert db._bg_thread is not None and db._bg_thread.is_alive()
        assert db._bg_error is None
        # Acknowledged data (tables + any parked immutable memtable)
        # still serves reads.
        got = dict(db.scan())
        for key, value in expected.items():
            assert got[key] == value
        db.close()

    def test_close_is_orderly_while_parked(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", self._options())
        populate(db, rows=60)
        vfs.schedule_enospc(vfs.op_count + 1)
        with pytest.raises((OutOfSpaceError, ReadOnlyError)):
            for i in range(500):
                db.put(f"extra{i:04d}".encode(), b"x" * 50)
        thread = db._bg_thread
        db.close()  # must join the parked thread, not hang or raise
        assert thread is not None and not thread.is_alive()

    def test_acked_writes_survive_pipeline_enospc(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", self._options())
        expected = populate(db, rows=100)
        acked = {}
        vfs.schedule_enospc(vfs.op_count + 1)
        try:
            for i in range(500):
                key = f"extra{i:04d}".encode()
                db.put(key, b"x" * 50)
                acked[key] = b"x" * 50
        except (OutOfSpaceError, ReadOnlyError):
            pass
        db.close()
        vfs.clear_enospc()
        db = DB.open(vfs, "db", self._options())
        got = dict(db.scan())
        for key, value in {**expected, **acked}.items():
            assert got[key] == value, f"acked write {key!r} lost"
        db.close()
