"""Write-ahead log: record framing, fragmentation, torn-write recovery."""

import pytest

from repro.lsm.errors import CorruptionError
from repro.lsm.vfs import MemoryVFS
from repro.lsm.wal import BLOCK_SIZE, HEADER_SIZE, LogReader, LogWriter


def _roundtrip(records, vfs=None):
    vfs = vfs or MemoryVFS()
    writer = LogWriter(vfs.create("wal"))
    for record in records:
        writer.add_record(record)
    writer.close()
    return list(LogReader(vfs.open_random("wal"))), vfs


class TestRoundtrip:
    def test_small_records(self):
        records = [b"one", b"two", b"three"]
        got, _vfs = _roundtrip(records)
        assert got == records

    def test_empty_record(self):
        got, _vfs = _roundtrip([b""])
        assert got == [b""]

    def test_record_spanning_blocks(self):
        big = bytes(range(256)) * 600  # ~150 KB, several blocks
        got, _vfs = _roundtrip([big])
        assert got == [big]

    def test_record_exactly_filling_block(self):
        payload = b"x" * (BLOCK_SIZE - HEADER_SIZE)
        got, _vfs = _roundtrip([payload, b"next"])
        assert got == [payload, b"next"]

    def test_header_never_split(self):
        # Leave less than a header's room at a block tail.
        first = b"a" * (BLOCK_SIZE - HEADER_SIZE - 3)
        got, _vfs = _roundtrip([first, b"tail"])
        assert got == [first, b"tail"]

    def test_many_records(self):
        records = [f"record-{i}".encode() * (i % 7 + 1) for i in range(500)]
        got, _vfs = _roundtrip(records)
        assert got == records


class TestRecovery:
    def test_torn_tail_is_silently_dropped(self):
        _got, vfs = _roundtrip([b"complete", b"doomed" * 100])
        data = vfs._files["wal"]
        del data[len(data) - 10:]  # tear the last record
        recovered = list(LogReader(vfs.open_random("wal")))
        assert recovered == [b"complete"]

    def test_corruption_in_middle_raises(self):
        _got, vfs = _roundtrip([b"first", b"second", b"third"])
        data = vfs._files["wal"]
        data[HEADER_SIZE + 1] ^= 0xFF  # flip a payload byte of record one
        with pytest.raises(CorruptionError):
            list(LogReader(vfs.open_random("wal")))

    def test_truncated_header_at_tail(self):
        _got, vfs = _roundtrip([b"keeper"])
        data = vfs._files["wal"]
        data.extend(b"\x01\x02\x03")  # partial header garbage
        recovered = list(LogReader(vfs.open_random("wal")))
        assert recovered == [b"keeper"]

    def test_empty_log(self):
        vfs = MemoryVFS()
        LogWriter(vfs.create("wal")).close()
        assert list(LogReader(vfs.open_random("wal"))) == []

    def test_zero_padding_skipped(self):
        _got, vfs = _roundtrip([b"data"])
        vfs._files["wal"].extend(b"\x00" * 64)
        assert list(LogReader(vfs.open_random("wal"))) == [b"data"]
