"""Secondary indexing for LSM stores — the paper's contribution.

Five techniques over one engine (the paper's Table 2 taxonomy):

===============  ==============================================================
Kind             Mechanism
===============  ==============================================================
``EMBEDDED``     Per-block secondary bloom filters + zone maps inside the
                 primary table's SSTables; no separate index structure
                 (Section 3).
``EAGER``        Stand-alone index table with read-modify-write posting
                 lists (Section 4.1.1) — MongoDB/CouchDB/Riak style.
``LAZY``         Stand-alone index table with append-only posting fragments
                 merged during compaction (Section 4.1.2) — Cassandra style.
``COMPOSITE``    Stand-alone index table keyed by (secondary ⧺ primary)
                 composite keys (Section 4.2) — AsterixDB/Spanner style.
``NOINDEX``      Full-scan baseline.
===============  ==============================================================

:class:`repro.core.database.SecondaryIndexedDB` is the facade that keeps a
primary table and any number of these indexes consistent and exposes the
paper's five operations (Table 1): PUT, GET, DEL, LOOKUP, RANGELOOKUP.
"""

from repro.core.base import IndexKind, LookupResult, SecondaryIndex
from repro.core.costmodel import CostModel
from repro.core.database import SecondaryIndexedDB
from repro.core.selector import IndexSelector, WorkloadProfile

__all__ = [
    "CostModel",
    "IndexKind",
    "IndexSelector",
    "LookupResult",
    "SecondaryIndex",
    "SecondaryIndexedDB",
    "WorkloadProfile",
]
