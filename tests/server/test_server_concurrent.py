"""Network clients vs the scheduled background pipeline.

The deterministic test puts the *engine* under the
:class:`DeterministicScheduler` (flush/compaction/group-commit decision
points all schedule-driven) while real socket clients free-run against
the server.  Server worker threads join the schedule on their first
engine hook and park cooperatively while idle (``server:recv``), so the
scheduler — not luck — decides how network writes interleave with
background maintenance.

A scheduler needs at least one always-eligible task while every scheduled
thread is idle-parked and the only pending work lives in unscheduled
socket threads; the ``pacifier`` task below is that keepalive (it parks
unconditionally, so the deadlock detector never fires while a client is
composing its next request).
"""

from __future__ import annotations

import threading
import time

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.testing import DeterministicScheduler
from repro.lsm.vfs import MemoryVFS
from repro.server import Client, Server

CLIENTS = 3
OPS_PER_CLIENT = 12


def _run_seed(seed: int) -> dict:
    sched = DeterministicScheduler(seed=seed)
    opts = Options(background_compaction=True, memtable_budget=600,
                   l0_compaction_trigger=2, step_hook=sched)
    db = DB.open(MemoryVFS(), "db", opts)
    server = Server(db)
    host, port = server.start()

    stop_pacifier = threading.Event()

    def pacifier():
        while not stop_pacifier.is_set():
            sched("pacifier:tick")
            time.sleep(0.0005)

    pacifier_thread = sched.spawn("pacifier", pacifier)

    errors: list[str] = []

    def client_main(cid: int) -> None:
        try:
            with Client(host, port, pool_size=1) as client:
                for i in range(OPS_PER_CLIENT):
                    key = b"s%d-c%d-%02d" % (seed, cid, i)
                    seq = client.put(key, b"v" * 24)
                    assert seq > 0
                    if i % 4 == 3:
                        assert client.get(key) == b"v" * 24
        except Exception as exc:  # noqa: BLE001 - recorded for the assert
            errors.append(f"client {cid}: {exc!r}")

    client_threads = [threading.Thread(target=client_main, args=(cid,),
                                       name=f"net-client-{cid}")
                      for cid in range(CLIENTS)]
    for thread in client_threads:
        thread.start()

    # The scheduler's creating thread holds the run token from birth: this
    # thread must *park* while the clients run, or no scheduled task (the
    # server workers included) ever gets a grant.  The guard keeps it
    # ineligible until every client thread has finished.
    def clients_done() -> bool:
        return all(not thread.is_alive() for thread in client_threads)

    deadline = time.time() + 60
    while not clients_done():
        assert time.time() < deadline, "clients wedged under the scheduler"
        sched.park_until("main:wait-clients", clients_done)
    for thread in client_threads:
        thread.join(timeout=10)

    # Orchestrated phase over: free-run the world, then tear down.
    stop_pacifier.set()
    sched.shutdown()
    pacifier_thread.join(timeout=10)
    server.close()

    assert errors == []
    db.flush()
    recovered = dict(db.scan())
    pipeline = db.stats()["pipeline"]
    report = db.verify_integrity()
    assert report.ok, report
    db.close()
    return {"recovered": recovered, "pipeline": pipeline}


def test_scheduled_pipeline_vs_network_clients():
    for seed in range(4):
        result = _run_seed(seed)
        recovered = result["recovered"]
        assert len(recovered) == CLIENTS * OPS_PER_CLIENT
        for cid in range(CLIENTS):
            for i in range(OPS_PER_CLIENT):
                key = b"s%d-c%d-%02d" % (seed, cid, i)
                assert recovered[key] == b"v" * 24, f"seed {seed}"
        pipeline = result["pipeline"]
        assert pipeline["bg_error"] is None
        assert pipeline["group_commit_ops"] == CLIENTS * OPS_PER_CLIENT
        # Tiny memtable: the scheduled background pipeline actually ran.
        assert pipeline["bg_flushes"] > 0, f"seed {seed}"


def test_real_threads_group_commit_accounting():
    """Free-running load: every network write lands in exactly one commit
    group, whatever the interleaving."""
    db = DB.open(MemoryVFS(), "data",
                 Options(background_compaction=True, memtable_budget=4096,
                         l0_compaction_trigger=2))
    server = Server(db)
    host, port = server.start()
    total = 8 * 40
    try:
        failures: list[str] = []

        def client_main(cid: int) -> None:
            try:
                with Client(host, port, pool_size=1) as client:
                    for i in range(40):
                        client.put(b"r%d-%02d" % (cid, i), b"y" * 20)
            except Exception as exc:  # noqa: BLE001
                failures.append(repr(exc))

        threads = [threading.Thread(target=client_main, args=(cid,))
                   for cid in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert failures == []
        pipeline = db.stats()["pipeline"]
        assert pipeline["group_commit_ops"] == total
        assert 1 <= pipeline["write_groups"] <= total
        assert pipeline["max_group_batches"] >= 1
        db.flush()
        assert sum(1 for _ in db.scan()) == total
    finally:
        server.close()
        db.close()
