"""Crash drills against the background pipeline.

The PR-1 fault harness cut power at every mutating op of an *inline*
engine.  Here the same :class:`FaultInjectingVFS` runs under a live
background thread, so the crash can land mid-background-flush or
mid-background-compaction.  After each crash the surviving image is
reopened with the default (inline) engine and audited: acknowledged
writes must have survived (``sync_writes=True``), nothing invented,
``verify_integrity`` clean.
"""

from __future__ import annotations

import contextlib

from repro.lsm.db import DB
from repro.lsm.errors import SimulatedCrashError
from repro.lsm.faults import FaultInjectingVFS
from repro.lsm.options import Options
from repro.lsm.testing import DeterministicScheduler

SCRIPT = [(b"k%03d" % i, b"v%03d-" % i + b"x" * 12) for i in range(80)]

# With sync_writes=True and memtable_budget=512 the script produces a few
# hundred mutating ops spanning WAL appends, rotations, background flushes
# and compactions; the sampled crash points land in all of those phases.
CRASH_POINTS = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377]


def _run_crash_drill(at_op):
    vfs = FaultInjectingVFS()
    vfs.schedule_crash(at_op)
    acked = []
    opts = Options(background_compaction=True, sync_writes=True,
                   memtable_budget=512, l0_compaction_trigger=2)
    db = None
    try:
        db = DB.open(vfs, "db", opts)
        for key, value in SCRIPT:
            db.put(key, value)
            acked.append((key, value))
        db.flush()
        db.close()
    except Exception:  # noqa: BLE001 - the crash surfaces wherever it lands
        pass
    finally:
        if db is not None:
            # First close() always joins the background thread before any
            # further VFS op can raise, so this never leaks the thread.
            with contextlib.suppress(Exception):
                db.close()
    return vfs, acked


def _check_recovery(image, acked):
    db = DB.open(image, "db", Options())
    try:
        report = db.verify_integrity()
        assert report.ok, report
        recovered = dict(db.scan())
    finally:
        db.close()
    for key, value in acked:
        assert recovered.get(key) == value, f"lost acked write {key!r}"
    written = dict(SCRIPT)
    for key, value in recovered.items():
        assert written.get(key) == value, f"phantom data {key!r}"


def test_crash_drills_across_background_pipeline():
    crashed = 0
    for at_op in CRASH_POINTS:
        vfs, acked = _run_crash_drill(at_op)
        if not vfs.crashed:
            # Workload finished before the fuse: everything must be there.
            assert len(acked) == len(SCRIPT)
        else:
            crashed += 1
        for unsynced in ("drop", "torn"):
            _check_recovery(vfs.crash_image(unsynced), acked)
    assert crashed >= len(CRASH_POINTS) - 2, "fuse lengths need retuning"


def test_crash_mid_background_work_specifically():
    """Probe a dense band of crash points chosen to straddle the first
    background flush/compaction (table build + manifest install + WAL
    retirement), the window where the handoff invariants matter most."""
    # A full fault-free run of this workload performs a few hundred ops;
    # the first flush lands within the first ~120 of them.
    for at_op in range(60, 132, 6):
        vfs, acked = _run_crash_drill(at_op)
        _check_recovery(vfs.crash_image("drop"), acked)


def test_deterministic_crash_replay():
    """Same seed + same fuse => same acked prefix and identical image."""

    def run(seed, at_op):
        vfs = FaultInjectingVFS()
        vfs.schedule_crash(at_op)
        sched = DeterministicScheduler(seed=seed)
        acked = []
        opts = Options(background_compaction=True, sync_writes=True,
                       memtable_budget=400, l0_compaction_trigger=2,
                       step_hook=sched)
        db = None
        try:
            db = DB.open(vfs, "db", opts)

            def writer():
                try:
                    for i in range(40):
                        key = b"dk%02d" % i
                        db.put(key, b"x" * 16)
                        acked.append(key)
                except SimulatedCrashError:
                    pass

            thread = sched.spawn("w", writer)
            sched.wait_threads(thread)
            db.flush()
            db.close()
        except Exception:  # noqa: BLE001
            pass
        finally:
            if db is not None:
                with contextlib.suppress(Exception):
                    db.close()
            sched.shutdown()
        image = vfs.crash_image("drop")
        files = {name: image.read_whole(name)
                 for name in image.list_dir("")}
        return tuple(acked), files

    for seed, at_op in [(7, 25), (7, 60), (3, 90)]:
        first = run(seed, at_op)
        second = run(seed, at_op)
        assert first == second, f"crash replay diverged at {(seed, at_op)}"
