"""Crash-consistency drills: every crash point, prefix-consistent recovery.

The engine's durability contract, drilled exhaustively with
:mod:`repro.lsm.faults`:

* **Prefix consistency** — after a crash at *any* mutating-I/O operation,
  reopening recovers exactly the state after some prefix of the committed
  write batches: no partial batch is ever visible.
* **Durability** — with ``sync_writes`` on, every batch whose ``write()``
  returned before the crash is in that prefix (synced writes are never
  lost); at most the single in-flight batch may additionally appear.
* **Hygiene** — recovery leaves no orphaned files behind, whatever the
  crash interleaving, and the recovered database passes the full
  :mod:`repro.lsm.checker` audit.

The workload mixes PUT/DEL/MERGE batches with explicit flushes, a manual
full compaction and a mid-run close/reopen, so crash points land inside
WAL appends, MemTable flushes, manifest installs, log rotation, obsolete
file deletion and recovery itself.  Both crash-image modes are drilled:
``"drop"`` (no un-synced byte survives) and ``"torn"`` (whole 4 KiB pages
of the un-synced tail survive — torn writes the WAL CRCs must catch).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lsm.db import DB, WriteBatch
from repro.lsm.faults import count_mutations, run_until_crash
from repro.lsm.manifest import (
    current_file_name,
    log_file_name,
    manifest_file_name,
    table_file_name,
)
from repro.lsm.options import Options

OPS_PER_BATCH = 8
KEY_SPACE = 40


def _concat(key, operands):
    return b"|".join(operands)


def _options():
    return Options(block_size=1024, sstable_target_size=4 * 1024,
                   l1_target_size=16 * 1024,
                   memtable_budget=1 << 30,  # flushes are explicit below
                   sync_writes=True,
                   merge_operator=_concat)


def _make_script(seed: int, n_batches: int):
    """A deterministic mixed workload: batches + flush/compact/reopen."""
    rng = random.Random(seed)
    script = []
    for i in range(n_batches):
        batch = []
        for j in range(OPS_PER_BATCH):
            key = f"k{rng.randrange(KEY_SPACE):02d}".encode()
            roll = rng.random()
            if roll < 0.55:
                batch.append(("put", key, f"v{i}.{j}".encode()))
            elif roll < 0.75:
                batch.append(("del", key, b""))
            else:
                batch.append(("merge", key, f"m{i}.{j}".encode()))
        script.append(("batch", batch))
        if i % 9 == 8:
            script.append(("flush",))
        if i == n_batches // 2:
            script.append(("reopen",))
        if i == (3 * n_batches) // 4:
            script.append(("compact",))
    return script


def _prefix_states(script):
    """Expected key-value maps after 0, 1, 2, ... committed batches."""
    state: dict[bytes, bytes] = {}
    states = [dict(state)]
    for action in script:
        if action[0] != "batch":
            continue
        for kind, key, value in action[1]:
            if kind == "put":
                state[key] = value
            elif kind == "del":
                state.pop(key, None)
            else:  # merge: engine folds oldest-first through _concat
                state[key] = state[key] + b"|" + value \
                    if key in state else value
        states.append(dict(state))
    return states


def _run(vfs, script, progress):
    """Drive the workload; ``progress`` counts batches whose write returned."""
    db = DB.open(vfs, "db", _options())
    for action in script:
        if action[0] == "batch":
            batch = WriteBatch()
            for kind, key, value in action[1]:
                if kind == "put":
                    batch.put(key, value)
                elif kind == "del":
                    batch.delete(key)
                else:
                    batch.merge(key, value)
            db.write(batch)
            progress.append(1)
        elif action[0] == "flush":
            db.flush()
        elif action[0] == "compact":
            db.compact_range()
        elif action[0] == "reopen":
            db.close()
            db = DB.open(vfs, "db", _options())
    db.close()


def _assert_recovered(image, states, completed):
    db = DB.open(image, "db", _options())
    try:
        got = dict(db.scan())
        # Prefix consistency + durability: everything acknowledged before
        # the crash, plus at most the one in-flight batch.
        ceiling = min(completed + 1, len(states) - 1)
        candidates = [states[completed]]
        if ceiling != completed:
            candidates.append(states[ceiling])
        assert got in candidates, (
            f"recovered state matches no allowed prefix "
            f"(completed={completed}, keys={sorted(got)[:6]}...)")
        _assert_no_orphans(db)
        report = db.verify_integrity()
        assert report.ok, report.problems
    finally:
        db.close()


def _assert_no_orphans(db):
    expected = {
        current_file_name("db"),
        manifest_file_name("db", db._manifest.number),
        log_file_name("db", db._log_number),
    }
    expected |= {table_file_name("db", number)
                 for number in db.versions.live_file_numbers()}
    assert set(db.vfs.list_dir("db/")) == expected


def _drill(script, crash_ops, unsynced_modes=("drop", "torn")):
    states = _prefix_states(script)
    for at_op in crash_ops:
        for unsynced in unsynced_modes:
            progress: list[int] = []
            vfs = run_until_crash(lambda v: _run(v, script, progress), at_op)
            assert vfs.crashed, f"crash point {at_op} never fired"
            _assert_recovered(vfs.crash_image(unsynced), states,
                              len(progress))


class TestExhaustiveCrashPoints:
    def test_smoke_every_crash_point_small_workload(self):
        """CI smoke drill: full enumeration over a compact workload."""
        script = _make_script(seed=7, n_batches=8)
        total = count_mutations(lambda v: _run(v, script, []))
        _drill(script, range(1, total + 1))

    def test_every_crash_point_of_500_op_workload(self):
        """The acceptance drill: >= 500 mixed ops, every crash point."""
        script = _make_script(seed=2024, n_batches=65)
        n_user_ops = sum(len(a[1]) for a in script if a[0] == "batch")
        assert n_user_ops >= 500
        total = count_mutations(lambda v: _run(v, script, []))
        _drill(script, range(1, total + 1))

    def test_completed_run_recovers_everything(self):
        script = _make_script(seed=5, n_batches=12)
        states = _prefix_states(script)
        progress: list[int] = []
        vfs = run_until_crash(lambda v: _run(v, script, progress), 10 ** 9)
        assert not vfs.crashed
        _assert_recovered(vfs.crash_image("drop"), states, len(progress))


class TestRandomizedCrashPoints:
    @given(seed=st.integers(min_value=0, max_value=2 ** 20))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sampled_crash_points_random_workloads(self, seed):
        script = _make_script(seed=seed, n_batches=14)
        total = count_mutations(lambda v: _run(v, script, []))
        rng = random.Random(seed ^ 0xC0FFEE)
        sample = sorted(rng.sample(range(1, total + 1),
                                   k=min(12, total)))
        _drill(script, sample)
