"""YCSB core workloads."""

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.options import Options
from repro.workloads.ops import Get, Put, RangeLookup
from repro.workloads.runner import WorkloadRunner
from repro.workloads.ycsb import CORE_WORKLOADS, YCSBWorkload, ZipfianGenerator


class TestZipfianGenerator:
    def test_in_range(self):
        import random

        zipf = ZipfianGenerator(100, rng=random.Random(1))
        for _ in range(500):
            assert 0 <= zipf.next() < 100

    def test_head_heavier_than_tail(self):
        import random

        zipf = ZipfianGenerator(1000, rng=random.Random(2))
        draws = [zipf.next() for _ in range(5000)]
        head = sum(1 for draw in draws if draw < 10)
        tail = sum(1 for draw in draws if draw >= 990)
        assert head > 10 * max(1, tail)

    def test_grow(self):
        zipf = ZipfianGenerator(10)
        zipf.grow(20)
        assert zipf.n == 20

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)


class TestWorkloadDefinitions:
    def test_all_mixes_sum_to_one(self):
        for name, mix in CORE_WORKLOADS.items():
            assert sum(mix.values()) == pytest.approx(1.0), name

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            YCSBWorkload(workload="Z")


class TestOperationStreams:
    def test_load_phase_first(self):
        workload = YCSBWorkload("A", record_count=50, operation_count=100,
                                seed=3)
        ops = list(workload.operations())
        load = ops[:50]
        assert all(isinstance(op, Put) and not op.is_update for op in load)
        assert workload.produced["load"] == 50

    def test_mix_approximates_definition(self):
        workload = YCSBWorkload("B", record_count=100,
                                operation_count=4000, seed=4)
        list(workload.operations())
        reads = workload.produced["read"]
        updates = workload.produced.get("update", 0)
        assert reads / (reads + updates) == pytest.approx(0.95, abs=0.02)

    def test_workload_c_read_only(self):
        workload = YCSBWorkload("C", record_count=50, operation_count=500,
                                seed=5)
        transactions = list(workload.operations())[50:]
        assert all(isinstance(op, Get) for op in transactions)

    def test_workload_e_scans(self):
        workload = YCSBWorkload("E", record_count=100,
                                operation_count=400, seed=6)
        transactions = list(workload.operations())[100:]
        scans = [op for op in transactions if isinstance(op, RangeLookup)]
        assert scans
        for scan in scans[:20]:
            assert scan.attribute == "_key"
            assert scan.low < scan.high

    def test_workload_f_rmw_pairs(self):
        workload = YCSBWorkload("F", record_count=50, operation_count=300,
                                seed=7)
        transactions = list(workload.operations())[50:]
        # Every rmw yields a Get immediately followed by an update Put of
        # the same key.
        for i, op in enumerate(transactions[:-1]):
            if isinstance(op, Get) and isinstance(transactions[i + 1], Put) \
                    and transactions[i + 1].is_update:
                assert transactions[i + 1].key == op.key

    def test_deterministic(self):
        a = list(YCSBWorkload("A", 50, 200, seed=9).operations())
        b = list(YCSBWorkload("A", 50, 200, seed=9).operations())
        assert a == b


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(CORE_WORKLOADS))
    def test_runs_against_database(self, name):
        options = Options(block_size=1024, sstable_target_size=4 * 1024,
                          memtable_budget=4 * 1024,
                          l1_target_size=16 * 1024)
        db = SecondaryIndexedDB.open_memory(
            indexes={"_key": IndexKind.COMPOSITE}, options=options)
        workload = YCSBWorkload(name, record_count=150,
                                operation_count=400, seed=11)
        report = WorkloadRunner(db, sample_every=10**9).run(
            workload.operations())
        assert report.total_ops >= 550
        # Spot-check: every loaded record is retrievable afterwards.
        assert db.get(YCSBWorkload.key_of(0)) is not None
        assert db.get(YCSBWorkload.key_of(149)) is not None
        db.close()
