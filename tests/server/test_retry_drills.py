"""Idempotent-retry drills: every acked write applies exactly once.

The attack: a write's response is the only proof the client has, so a
connection that dies at a response boundary leaves the client unable to
tell "never applied" from "applied, ack lost" — a blind retry
double-applies, no retry loses the write.  The ``apply`` envelope
(client UUID + write sequence) plus the server's dedup window resolves
it; these drills *enumerate* the boundary cases instead of sampling
them:

* a disconnect at **every** response boundary in a run of writes
  (dropped and torn flavours), and at every send boundary (broken and
  torn flavours);
* pipelined bursts torn mid-flight;
* a seeded randomized chaos schedule (seed in the failure message, so a
  red run replays bit-for-bit).

Exactly-once is pinned by the engine's own sequence numbers: N acked
puts must return sequences 1..N exactly, and the engine's
``last_sequence`` must equal N — a double-apply shows up as a hole or
an overshoot, a lost write as a missing ack.
"""

from __future__ import annotations

import os

import pytest

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS
from repro.server import Client, Server
from repro.server.client import RetryPolicy
from repro.server.netfaults import FaultSchedule, FaultyConnector

FULL = os.environ.get("REPRO_DIST_DRILLS") == "full"

NUM_WRITES = 8


def _fast_retry():
    return RetryPolicy(deadline=30.0, base_delay=0.001, max_delay=0.01,
                       sleep=lambda _s: None)


class _Rig:
    """One server + DB + fault-scheduled retrying client, torn down whole."""

    def __init__(self, schedule: FaultSchedule, **client_kwargs):
        self.db = DB.open(MemoryVFS(), "data",
                          Options(background_compaction=True))
        self.server = Server(self.db)
        host, port = self.server.start()
        client_kwargs.setdefault("retry", _fast_retry())
        self.client = Client(host, port, pool_size=1,
                             connector=FaultyConnector(schedule),
                             **client_kwargs)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.client.close()
        self.server.close()
        self.db.close()


def _run_writes(rig, count=NUM_WRITES):
    """``count`` puts through the faulty client; returns the acked seqs."""
    return [rig.client.put(b"key-%02d" % i, b"value-%02d" % i)
            for i in range(count)]


def _assert_exactly_once(rig, seqs, count=NUM_WRITES):
    # Acked sequences are exactly 1..N: no hole (lost write), no gap
    # from a double-apply shifting later writes.
    assert seqs == list(range(1, count + 1))
    assert rig.db.versions.last_sequence == count
    for i in range(count):
        assert rig.db.get(b"key-%02d" % i) == b"value-%02d" % i


class TestEveryResponseBoundary:
    @pytest.mark.parametrize("boundary", range(1, NUM_WRITES + 1))
    def test_dropped_response(self, boundary):
        schedule = FaultSchedule(drop_response_at={boundary})
        with _Rig(schedule) as rig:
            seqs = _run_writes(rig)
            _assert_exactly_once(rig, seqs)
            assert ("drop_response", boundary) in schedule.injected
            # The ack was lost *after* the server applied: the retry hit
            # the dedup window instead of applying again.
            assert rig.server.stats.dedup_hits >= 1
            assert rig.server.stats.dedup_applied == NUM_WRITES

    @pytest.mark.parametrize("boundary", range(1, NUM_WRITES + 1))
    def test_torn_response(self, boundary):
        schedule = FaultSchedule(torn_response_at={boundary})
        with _Rig(schedule) as rig:
            seqs = _run_writes(rig)
            _assert_exactly_once(rig, seqs)
            assert ("torn_response", boundary) in schedule.injected
            assert rig.server.stats.dedup_applied == NUM_WRITES


class TestEverySendBoundary:
    @pytest.mark.parametrize("boundary", range(1, NUM_WRITES + 1))
    def test_broken_send(self, boundary):
        schedule = FaultSchedule(break_send_at={boundary})
        with _Rig(schedule) as rig:
            seqs = _run_writes(rig)
            _assert_exactly_once(rig, seqs)
            assert ("break_send", boundary) in schedule.injected

    @pytest.mark.parametrize("boundary", range(1, NUM_WRITES + 1))
    def test_torn_send(self, boundary):
        # A torn request frame reaches the server half-written; the
        # server discards it whole (never half-applied) and the retry
        # re-sends the same envelope.
        schedule = FaultSchedule(torn_send_at={boundary})
        with _Rig(schedule) as rig:
            seqs = _run_writes(rig)
            _assert_exactly_once(rig, seqs)
            assert ("torn_send", boundary) in schedule.injected


class TestDedupWindow:
    def test_same_envelope_replays_same_result(self):
        with _Rig(FaultSchedule()) as rig:
            client = rig.client
            envelope = [client._client_id, 7, "put", [b"k", b"v"]]
            first = client._call("apply", envelope)
            second = client._call("apply", envelope)
            assert first == second == 1
            assert rig.db.versions.last_sequence == 1
            assert rig.server.stats.dedup_hits == 1

    def test_distinct_clients_do_not_collide(self):
        with _Rig(FaultSchedule()) as rig:
            client = rig.client
            seq_a = client._call("apply", ["client-a", 1, "put",
                                           [b"k", b"a"]])
            seq_b = client._call("apply", ["client-b", 1, "put",
                                           [b"k", b"b"]])
            assert seq_b == seq_a + 1  # same seq number, different client
            assert rig.server.stats.dedup_hits == 0

    def test_window_is_bounded(self):
        from repro.server.server import DEDUP_WINDOW
        with _Rig(FaultSchedule()) as rig:
            server = rig.server
            for seq in range(1, DEDUP_WINDOW + 10):
                server._op_apply(["bulk", seq, "put",
                                  [b"k%d" % seq, b"v"]])
            window = server._dedup["bulk"]
            assert len(window.results) == DEDUP_WINDOW
            # Oldest entries were evicted, newest retained.
            assert 1 not in window.results
            assert DEDUP_WINDOW + 9 in window.results

    def test_errors_are_not_cached(self):
        with _Rig(FaultSchedule()) as rig:
            server = rig.server
            with pytest.raises(Exception, match="put value must be bytes"):
                server._op_apply(["c", 1, "put", [b"k", 42]])
            # The failed seq is free to be (correctly) applied later.
            assert server._op_apply(["c", 1, "put", [b"k", b"v"]]) == 1
            assert rig.server.stats.dedup_hits == 0


class TestPipelineRetry:
    @pytest.mark.parametrize("fault", [
        {"torn_send_at": {1}},           # burst torn on the wire
        {"break_send_at": {1}},          # burst never sent
        {"drop_response_at": {3}},       # died mid-response-drain
        {"torn_response_at": {5}},
    ], ids=["torn-send", "broken-send", "dropped-response",
            "torn-response"])
    def test_burst_converges_to_exactly_once(self, fault):
        count = 10
        schedule = FaultSchedule(**fault)
        with _Rig(schedule) as rig:
            with rig.client.pipeline() as pipe:
                for i in range(count):
                    pipe.put(b"key-%02d" % i, b"value-%02d" % i)
            assert sorted(pipe.results) == list(range(1, count + 1))
            assert rig.db.versions.last_sequence == count
            for i in range(count):
                assert rig.db.get(b"key-%02d" % i) == b"value-%02d" % i
            assert schedule.injected  # the fault actually fired


class TestSeededChaos:
    def test_chaos_schedule_converges(self):
        """Randomized-but-seeded fault soup; the failure message carries
        the seed so CI reds replay exactly (REPRO_CHAOS_SEED=...)."""
        base_seed = int(os.environ.get("REPRO_CHAOS_SEED", "20260809"))
        rounds = 12 if FULL else 4
        writes = 25
        for round_index in range(rounds):
            seed = base_seed + round_index
            schedule = FaultSchedule.random(
                seed, sends=writes * 2, fault_rate=0.2)
            try:
                with _Rig(schedule) as rig:
                    seqs = _run_writes(rig, writes)
                    _assert_exactly_once(rig, seqs, writes)
            except BaseException as exc:
                raise AssertionError(
                    f"chaos round failed; replay with "
                    f"REPRO_CHAOS_SEED={seed} (injected: "
                    f"{schedule.injected!r})") from exc
