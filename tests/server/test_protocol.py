"""Wire-format unit tests: codec round trips, framing, torn/oversized."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.server.protocol import (
    FrameTooLargeError,
    ProtocolError,
    TornFrameError,
    decode_value,
    encode_frame,
    encode_value,
    read_frame,
    recv_exact,
    write_frame,
)


# -- value codec -------------------------------------------------------------

ROUND_TRIP_VALUES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    63,
    64,
    -64,
    -65,
    2**40,
    -(2**40),
    2**63 - 1,
    -(2**63),
    0.0,
    -2.5,
    1e300,
    b"",
    b"\x00\xff" * 10,
    "",
    "héllo ☃",
    [],
    [1, "two", b"three", None, [True]],
    {},
    {"a": 1, "b": [2, 3], "c": {"d": None}},
    {b"bytes-key": "ok", 7: "int-key"},
    [0, 1, {"nested": [b"deep", {"deeper": -9}]}],
]


@pytest.mark.parametrize("value", ROUND_TRIP_VALUES,
                         ids=[repr(v)[:40] for v in ROUND_TRIP_VALUES])
def test_codec_round_trip(value):
    assert decode_value(encode_value(value)) == value


def test_codec_distinguishes_bool_from_int():
    assert decode_value(encode_value(True)) is True
    assert decode_value(encode_value(1)) == 1
    assert decode_value(encode_value(1)) is not True


def test_codec_rejects_unencodable_type():
    with pytest.raises(ProtocolError, match="cannot encode"):
        encode_value(object())


def test_codec_rejects_out_of_range_int():
    # Fails on the sender, not as a poisoned stream on the peer.
    for value in (2**63, -(2**63) - 1, 2**80):
        with pytest.raises(ProtocolError, match="64-bit"):
            encode_value(value)


def test_decode_rejects_trailing_bytes():
    with pytest.raises(ProtocolError, match="trailing"):
        decode_value(encode_value(1) + b"\x00")


def test_decode_rejects_empty_and_truncated():
    with pytest.raises(ProtocolError):
        decode_value(b"")
    payload = encode_value({"key": [1, 2, 3], "other": b"abcdef"})
    for cut in range(1, len(payload)):
        with pytest.raises(ProtocolError):
            decode_value(payload[:cut])


def test_decode_rejects_unknown_tag():
    with pytest.raises(ProtocolError, match="unknown type tag"):
        decode_value(b"\x7f")


def test_decode_rejects_length_past_end():
    # A bytes value claiming more content than the payload holds.
    bogus = bytes([0x05]) + encode_value(2**20)[1:]  # BYTES, length 2**20
    with pytest.raises(ProtocolError):
        decode_value(bogus)


# -- framing over real sockets -----------------------------------------------

def _pair() -> tuple[socket.socket, socket.socket]:
    left, right = socket.socketpair()
    left.settimeout(5)
    right.settimeout(5)
    return left, right


def test_frame_round_trip():
    left, right = _pair()
    try:
        write_frame(left, b"hello")
        assert read_frame(right) == b"hello"
        write_frame(left, b"")
        assert read_frame(right) == b""
    finally:
        left.close()
        right.close()


def test_many_frames_one_stream():
    left, right = _pair()
    payloads = [encode_value([i, "op", b"x" * i]) for i in range(50)]
    try:
        left.sendall(b"".join(encode_frame(p) for p in payloads))
        for expected in payloads:
            assert read_frame(right) == expected
    finally:
        left.close()
        right.close()


def test_clean_eof_returns_none():
    left, right = _pair()
    try:
        left.close()
        assert read_frame(right) is None
    finally:
        right.close()


def test_torn_header_raises():
    left, right = _pair()
    try:
        left.sendall(b"\x00\x00")  # half a length prefix
        left.close()
        with pytest.raises(TornFrameError):
            read_frame(right)
    finally:
        right.close()


def test_torn_payload_raises():
    left, right = _pair()
    try:
        left.sendall(struct.pack(">I", 100) + b"only-part")
        left.close()
        with pytest.raises(TornFrameError):
            read_frame(right)
    finally:
        right.close()


def test_header_then_eof_raises_torn():
    left, right = _pair()
    try:
        left.sendall(struct.pack(">I", 8))
        left.close()
        with pytest.raises(TornFrameError):
            read_frame(right)
    finally:
        right.close()


def test_oversized_frame_rejected_without_reading_payload():
    left, right = _pair()
    try:
        # Only the header is sent; the reader must reject from the header
        # alone rather than wait for (or allocate) the declared payload.
        left.sendall(struct.pack(">I", 2**31))
        with pytest.raises(FrameTooLargeError):
            read_frame(right, max_frame_bytes=1024)
    finally:
        left.close()
        right.close()


def test_frame_at_limit_accepted():
    left, right = _pair()
    payload = b"z" * 1024
    try:
        done = threading.Event()

        def sender():
            left.sendall(encode_frame(payload))
            done.set()

        thread = threading.Thread(target=sender)
        thread.start()
        assert read_frame(right, max_frame_bytes=1024) == payload
        done.wait(5)
        thread.join(5)
    finally:
        left.close()
        right.close()


def test_recv_exact_zero_length():
    left, right = _pair()
    try:
        assert recv_exact(right, 0) == b""
    finally:
        left.close()
        right.close()
