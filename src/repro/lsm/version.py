"""Versions: immutable snapshots of the LSM tree's file layout.

A :class:`Version` records which SSTable files live in which level.  Every
flush or compaction produces a :class:`VersionEdit` which, applied to the
current version, yields the next one — LevelDB's MVCC-for-metadata design.
The :class:`VersionSet` owns the current version plus the monotonic counters
(file numbers, sequence numbers) and the per-level compaction pointers that
implement the paper's "round-robin basis" compaction file choice.

File metadata carries, besides key bounds and sizes, the **file-level
secondary zone maps** of the paper's Section 3 ("we also store one zone map
for each SSTable file, in a global metadata file"): the Embedded index can
skip a whole SSTable without touching any of its per-block structures.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from functools import cached_property

from repro.lsm.errors import CorruptionError
from repro.lsm.options import Options
from repro.lsm.zonemap import ZoneMap


@dataclass
class FileMetaData:
    """Manifest-resident description of one SSTable."""

    file_number: int
    file_size: int
    smallest: bytes  # encoded internal key
    largest: bytes
    min_seq: int = 0
    max_seq: int = 0
    num_entries: int = 0
    secondary_zonemaps: dict[str, ZoneMap] = field(default_factory=dict)

    # The key bounds are immutable once the file is live, and every GET
    # consults them (level binary search + containment check): decode the
    # user-key halves once per FileMetaData, not once per access.
    @cached_property
    def smallest_user_key(self) -> bytes:
        return self.smallest[:-8]

    @cached_property
    def largest_user_key(self) -> bytes:
        return self.largest[:-8]

    def contains_user_key(self, user_key: bytes) -> bool:
        return self.smallest_user_key <= user_key <= self.largest_user_key

    def overlaps_user_range(self, lo: bytes | None, hi: bytes | None) -> bool:
        """Does ``[smallest, largest]`` intersect user-key range ``[lo, hi]``?

        ``None`` bounds are unbounded.
        """
        if lo is not None and self.largest_user_key < lo:
            return False
        if hi is not None and self.smallest_user_key > hi:
            return False
        return True

    def to_json(self) -> dict:
        return {
            "file_number": self.file_number,
            "file_size": self.file_size,
            "smallest": self.smallest.hex(),
            "largest": self.largest.hex(),
            "min_seq": self.min_seq,
            "max_seq": self.max_seq,
            "num_entries": self.num_entries,
            "secondary_zonemaps": {
                attr: zone.encode().hex()
                for attr, zone in self.secondary_zonemaps.items()
            },
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FileMetaData":
        zonemaps = {}
        for attr, encoded_hex in doc.get("secondary_zonemaps", {}).items():
            zone, _offset = ZoneMap.decode(bytes.fromhex(encoded_hex), 0)
            zonemaps[attr] = zone
        return cls(
            file_number=doc["file_number"],
            file_size=doc["file_size"],
            smallest=bytes.fromhex(doc["smallest"]),
            largest=bytes.fromhex(doc["largest"]),
            min_seq=doc.get("min_seq", 0),
            max_seq=doc.get("max_seq", 0),
            num_entries=doc.get("num_entries", 0),
            secondary_zonemaps=zonemaps,
        )


@dataclass
class VersionEdit:
    """A delta between two versions, as logged to the manifest."""

    log_number: int | None = None
    next_file_number: int | None = None
    last_sequence: int | None = None
    compact_pointers: list[tuple[int, bytes]] = field(default_factory=list)
    deleted_files: list[tuple[int, int]] = field(default_factory=list)
    new_files: list[tuple[int, FileMetaData]] = field(default_factory=list)

    def add_file(self, level: int, meta: FileMetaData) -> None:
        self.new_files.append((level, meta))

    def delete_file(self, level: int, file_number: int) -> None:
        self.deleted_files.append((level, file_number))

    def encode(self) -> bytes:
        doc = {
            "log_number": self.log_number,
            "next_file_number": self.next_file_number,
            "last_sequence": self.last_sequence,
            "compact_pointers": [
                [level, key.hex()] for level, key in self.compact_pointers],
            "deleted_files": [list(item) for item in self.deleted_files],
            "new_files": [
                [level, meta.to_json()] for level, meta in self.new_files],
        }
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes) -> "VersionEdit":
        try:
            doc = json.loads(payload)
        except ValueError as exc:
            raise CorruptionError(f"bad manifest edit: {exc}") from exc
        return cls(
            log_number=doc.get("log_number"),
            next_file_number=doc.get("next_file_number"),
            last_sequence=doc.get("last_sequence"),
            compact_pointers=[
                (level, bytes.fromhex(key))
                for level, key in doc.get("compact_pointers", [])],
            deleted_files=[
                (level, number)
                for level, number in doc.get("deleted_files", [])],
            new_files=[
                (level, FileMetaData.from_json(meta))
                for level, meta in doc.get("new_files", [])],
        )


class Version:
    """An immutable assignment of files to levels.

    Level 0 is ordered newest-file-first (files may overlap); levels >= 1
    are sorted by smallest key and are disjoint.
    """

    def __init__(self, options: Options,
                 levels: list[list[FileMetaData]] | None = None) -> None:
        self.options = options
        if levels is None:
            levels = [[] for _ in range(options.max_levels)]
        self.levels = levels

    # -- queries ------------------------------------------------------------

    def num_files(self, level: int) -> int:
        return len(self.levels[level])

    def total_files(self) -> int:
        return sum(len(files) for files in self.levels)

    def level_size(self, level: int) -> int:
        return sum(meta.file_size for meta in self.levels[level])

    def num_nonempty_levels(self) -> int:
        """Count of levels that hold at least one file (the paper's L)."""
        return sum(1 for files in self.levels if files)

    def deepest_nonempty_level(self) -> int:
        deepest = -1
        for level, files in enumerate(self.levels):
            if files:
                deepest = level
        return deepest

    def files_containing_key(self, level: int,
                             user_key: bytes) -> list[FileMetaData]:
        """Files in ``level`` whose key range covers ``user_key``.

        For level 0 this may return several files, newest first; for deeper
        levels at most one file qualifies (found by binary search).
        """
        files = self.levels[level]
        if level == 0:
            return [meta for meta in files if meta.contains_user_key(user_key)]
        lo, hi = 0, len(files)
        while lo < hi:
            mid = (lo + hi) // 2
            if files[mid].largest_user_key < user_key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(files) and files[lo].contains_user_key(user_key):
            return [files[lo]]
        return []

    def overlapping_files(self, level: int, lo: bytes | None,
                          hi: bytes | None) -> list[FileMetaData]:
        """Files in ``level`` overlapping user-key range ``[lo, hi]``.

        For level 0, overlap is transitively expanded (as in LevelDB): if a
        selected file widens the range, newly covered files are selected too,
        because level-0 files overlap each other.
        """
        files = [meta for meta in self.levels[level]
                 if meta.overlaps_user_range(lo, hi)]
        if level != 0:
            return files
        changed = True
        current_lo, current_hi = lo, hi
        while changed:
            changed = False
            for meta in files:
                if current_lo is None or meta.smallest_user_key < current_lo:
                    current_lo = meta.smallest_user_key
                    changed = True
                if current_hi is None or meta.largest_user_key > current_hi:
                    current_hi = meta.largest_user_key
                    changed = True
            if changed:
                files = [meta for meta in self.levels[0]
                         if meta.overlaps_user_range(current_lo, current_hi)]
        return files

    def all_files(self) -> list[tuple[int, FileMetaData]]:
        out = []
        for level, files in enumerate(self.levels):
            for meta in files:
                out.append((level, meta))
        return out

    def live_file_numbers(self) -> frozenset[int]:
        """File numbers this version references (cached; versions are
        immutable once installed).  Snapshot-isolated readers pin a version;
        background compaction defers deleting any table file that a pinned
        version still names."""
        cached = self.__dict__.get("_live_file_numbers")
        if cached is None:
            cached = frozenset(meta.file_number
                               for _level, meta in self.all_files())
            self.__dict__["_live_file_numbers"] = cached
        return cached

    # -- compaction scoring ---------------------------------------------------

    def compaction_score(self) -> tuple[float, int]:
        """Best (score, level) pair; a score >= 1.0 means "compact now"."""
        best_score = len(self.levels[0]) / self.options.l0_compaction_trigger
        best_level = 0
        for level in range(1, len(self.levels) - 1):
            score = self.level_size(level) / self.options.max_bytes_for_level(level)
            if score > best_score:
                best_score = score
                best_level = level
        return best_score, best_level


class VersionSet:
    """Mutable owner of the current :class:`Version` and global counters."""

    def __init__(self, options: Options) -> None:
        self.options = options
        self.current = Version(options)
        self.next_file_number = 1
        self.last_sequence = 0
        self.log_number = 0
        self.compact_pointers: list[bytes | None] = [None] * options.max_levels
        # Foreground writers (WAL rotation) and the background compactor
        # (table outputs) both allocate file numbers; the counter must not
        # hand the same number out twice.
        self._number_lock = threading.Lock()

    def new_file_number(self) -> int:
        with self._number_lock:
            number = self.next_file_number
            self.next_file_number += 1
            return number

    def apply(self, edit: VersionEdit) -> Version:
        """Apply ``edit`` and install the resulting version as current."""
        if edit.log_number is not None:
            self.log_number = edit.log_number
        if edit.next_file_number is not None:
            with self._number_lock:
                self.next_file_number = max(self.next_file_number,
                                            edit.next_file_number)
        if edit.last_sequence is not None:
            self.last_sequence = max(self.last_sequence, edit.last_sequence)
        for level, key in edit.compact_pointers:
            self.compact_pointers[level] = key

        deleted = set(edit.deleted_files)
        levels: list[list[FileMetaData]] = []
        for level, files in enumerate(self.current.levels):
            kept = [meta for meta in files
                    if (level, meta.file_number) not in deleted]
            levels.append(kept)
        for level, meta in edit.new_files:
            levels[level].append(meta)
        for level in range(len(levels)):
            if level == 0:
                levels[level].sort(key=lambda m: m.file_number, reverse=True)
            else:
                levels[level].sort(key=lambda m: m.smallest)
        self.current = Version(self.options, levels)
        self._check_invariants()
        return self.current

    def _check_invariants(self) -> None:
        for level in range(1, len(self.current.levels)):
            files = self.current.levels[level]
            for i in range(1, len(files)):
                if files[i - 1].largest_user_key >= files[i].smallest_user_key:
                    raise CorruptionError(
                        f"overlapping files in level {level}: "
                        f"{files[i - 1].file_number} and {files[i].file_number}")

    def live_file_numbers(self) -> set[int]:
        return {meta.file_number
                for _level, meta in self.current.all_files()}
