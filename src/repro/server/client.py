"""Client for the serving layer: pooled connections, pipelining, retries.

One :class:`Client` owns a pool of sockets.  Single-shot calls
(:meth:`Client.put`, :meth:`Client.get`, ...) check a connection out,
run one request/response round trip, and return it.  The pool is lazy
and LIFO — a single-threaded caller reuses one warm socket; ``pool_size``
threads can call concurrently without sharing a connection.

Pipelining batches round trips::

    with client.pipeline() as p:
        for key, value in items:
            p.put(key, value)
    seqs = p.results          # one result per queued op, in order

The pipeline sends every queued request in one write and then reads the
responses back in order (the server answers FIFO per connection).  On
the server side a pipelined run of writes is coalesced into a single
WriteBatch — one group-commit entry, one fsync — which is where the
serving layer's throughput comes from.

Failures inside a pipeline surface as :class:`RemoteError` after *all*
responses are drained, so the connection stays usable.

Fault tolerance (opt-in): construct with ``retry=RetryPolicy(...)`` and
every transient transport failure — refused connect, reset, torn frame,
per-op timeout — is retried on a fresh connection with exponential
backoff + jitter, up to the policy's deadline.  Reads are naturally
idempotent and retried as-is; **writes** are wrapped in the ``apply``
envelope (per-client UUID + monotonically increasing write sequence,
assigned once per logical write, before the first attempt) so the
server's dedup window recognizes a retry of an acked-but-lost write and
replays the original result instead of applying it twice — the retried
PUT returns the *same* sequence number the lost ack carried.  Without
``retry`` the client behaves exactly as before: the first transport
fault surfaces to the caller.

A closed client raises :class:`ClientClosedError` from every call —
including callers already blocked waiting for a pooled connection, which
:meth:`Client.close` wakes instead of leaving parked forever.
"""

from __future__ import annotations

import queue
import random
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ProtocolError,
    STATUS_OK,
    decode_value,
    encode_frame,
    encode_value,
    read_frame,
)

__all__ = ["Client", "Pipeline", "RemoteError", "RetryPolicy",
           "ClientClosedError"]


class RemoteError(Exception):
    """The server answered a request with an error response.

    ``remote_type`` carries the exception class name raised server-side
    (e.g. ``"InvalidArgumentError"``).
    """

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


class ClientClosedError(ProtocolError):
    """The client was closed; the call (even one already waiting for a
    pooled connection) cannot proceed.  Never retried."""


@dataclass
class RetryPolicy:
    """How a client survives transient transport faults.

    Attempt *n* (0-based) backs off ``base_delay * 2**n`` capped at
    ``max_delay``, shrunk by up to ``jitter`` (a 0..1 fraction) of itself
    so a thundering herd decorrelates.  Retrying stops — re-raising the
    last transport error — once ``deadline`` seconds have elapsed since
    the call started.  ``sleep``/``clock``/``rng`` are injectable so
    drills can run the policy deterministically and without wall-clock
    waits.
    """

    deadline: float = 10.0
    base_delay: float = 0.02
    max_delay: float = 1.0
    jitter: float = 0.5
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    rng: random.Random = field(default_factory=random.Random)

    def backoff(self, attempt: int) -> float:
        """The delay before retry number ``attempt`` (0-based)."""
        delay = min(self.max_delay, self.base_delay * (2 ** attempt))
        if self.jitter > 0:
            delay *= 1.0 - self.jitter * self.rng.random()
        return delay


#: Pool sentinel: close() enqueues it to wake blocked waiters; every
#: waiter that receives it puts it back for the next one and raises.
_POOL_CLOSED: Any = object()

#: Transport failures a RetryPolicy is allowed to absorb.  RemoteError is
#: deliberately absent: the server *answered* — retrying cannot help.
_TRANSIENT = (OSError, ProtocolError)


class _Conn:
    """One pooled socket plus its request-id counter."""

    __slots__ = ("sock", "next_id", "broken")

    def __init__(self, sock: Any) -> None:
        self.sock = sock
        self.next_id = 1
        self.broken = False


class Client:
    """Pooled client for one server address.

    Thread-safe: up to ``pool_size`` threads run requests in parallel,
    each on its own connection; further threads wait for a free one.

    ``timeout`` bounds connection establishment; ``op_timeout`` (when
    set) bounds each request/response round trip on an established
    connection — a hung server surfaces as ``socket.timeout`` (an
    ``OSError``, so a retrying client treats it as transient).
    ``connector`` replaces ``socket.create_connection`` — the hook the
    network fault drills use to splice in a
    :class:`~repro.server.netfaults.FaultInjectingTransport`.
    """

    def __init__(self, host: str, port: int, *, pool_size: int = 4,
                 timeout: float | None = 30.0,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                 retry: RetryPolicy | None = None,
                 op_timeout: float | None = None,
                 connector: Callable[..., Any] | None = None) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self._address = (host, port)
        self._timeout = timeout
        self._op_timeout = op_timeout
        self._max_frame_bytes = max_frame_bytes
        self._retry = retry
        self._connector = connector or socket.create_connection
        self._pool: queue.LifoQueue = queue.LifoQueue()
        self._pool_size = pool_size
        self._created = 0
        self._lock = threading.Lock()
        self._closed = False
        # Idempotent-write identity: unique per client instance, with a
        # per-write sequence assigned once per logical write (stable
        # across retries) — the server's dedup key.
        self._client_id = uuid.uuid4().hex
        self._write_seq = 0

    def _next_write_seq(self) -> int:
        with self._lock:
            self._write_seq += 1
            return self._write_seq

    # -- pool -----------------------------------------------------------------

    def _connect(self) -> _Conn:
        sock = self._connector(self._address, timeout=self._timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        if self._op_timeout is not None:
            sock.settimeout(self._op_timeout)
        return _Conn(sock)

    def _checkout(self) -> _Conn:
        if self._closed:
            raise ClientClosedError("client is closed")
        try:
            conn = self._pool.get_nowait()
        except queue.Empty:
            pass
        else:
            if conn is _POOL_CLOSED:
                self._pool.put(_POOL_CLOSED)
                raise ClientClosedError("client is closed")
            return conn
        with self._lock:
            if self._created < self._pool_size:
                self._created += 1
                try:
                    return self._connect()
                except BaseException:
                    self._created -= 1
                    raise
        conn = self._pool.get()
        if conn is _POOL_CLOSED:
            self._pool.put(_POOL_CLOSED)
            raise ClientClosedError("client is closed")
        return conn

    def _release(self, conn: _Conn) -> None:
        if conn.broken or self._closed:
            self._discard(conn)
        else:
            self._pool.put(conn)

    def _discard(self, conn: _Conn) -> None:
        try:
            conn.sock.close()
        except OSError:
            pass
        with self._lock:
            self._created -= 1

    def close(self) -> None:
        """Close every pooled connection and fail pending/future calls.

        Threads blocked in checkout are woken with
        :class:`ClientClosedError` (the sentinel re-propagates through
        the pool), instead of hanging on an empty pool forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        while True:
            try:
                conn = self._pool.get_nowait()
            except queue.Empty:
                break
            if conn is not _POOL_CLOSED:
                self._discard(conn)
        self._pool.put(_POOL_CLOSED)

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- request plumbing -----------------------------------------------------

    def _call_once(self, op: str, args: list) -> Any:
        conn = self._checkout()
        try:
            request_id = conn.next_id
            conn.next_id += 1
            conn.sock.sendall(encode_frame(encode_value(
                [request_id, op, *args])))
            return _read_response(conn, request_id, self._max_frame_bytes)
        except (OSError, ProtocolError):
            conn.broken = True
            raise
        finally:
            self._release(conn)

    def _call_with_retry(self, op: str, args: list) -> Any:
        policy = self._retry
        assert policy is not None
        deadline = policy.clock() + policy.deadline
        attempt = 0
        while True:
            try:
                return self._call_once(op, args)
            except ClientClosedError:
                raise
            except _TRANSIENT as exc:
                last_error = exc
            now = policy.clock()
            if now >= deadline:
                raise last_error
            delay = min(policy.backoff(attempt), deadline - now)
            if delay > 0:
                policy.sleep(delay)
            attempt += 1

    def _call(self, op: str, args: list) -> Any:
        if self._retry is None:
            return self._call_once(op, args)
        return self._call_with_retry(op, args)

    def _call_write(self, op: str, args: list) -> Any:
        if self._retry is None:
            return self._call_once(op, args)
        # Envelope once, outside the retry loop: every attempt carries
        # the same (client_id, seq), which is what makes it deduplicable.
        envelope = [self._client_id, self._next_write_seq(), op, args]
        return self._call_with_retry("apply", envelope)

    # -- operations -----------------------------------------------------------

    def put(self, key: Any, value: Any) -> int:
        """Write one key; returns the committed sequence number."""
        return self._call_write("put", [key, value])

    def get(self, key: Any) -> Any:
        """Read one key; ``None`` if absent."""
        return self._call("get", [key])

    def delete(self, key: Any) -> int:
        """Delete one key; returns the tombstone's sequence number."""
        return self._call_write("delete", [key])

    def scan(self, low: Any = None, high: Any = None,
             limit: int | None = None) -> list:
        """One page of ``[key, value]`` pairs in ``[low, high)``."""
        return self._call("scan", [low, high, limit])

    def lookup(self, attribute: str, value: Any,
               k: int | None = None) -> list:
        """Secondary-index lookup: ``[key, document, seq]`` triples."""
        return self._call("lookup", [attribute, value, k])

    def range_lookup(self, attribute: str, low: Any, high: Any,
                     k: int | None = None) -> list:
        """Secondary-index range lookup: ``[key, document, seq]`` triples."""
        return self._call("rangelookup", [attribute, low, high, k])

    def stats(self) -> dict:
        """Server + engine stats (see ``DB.stats`` and ``ServerStats``)."""
        return self._call("stats", [])

    def pipeline(self) -> "Pipeline":
        """Batch requests on one dedicated connection (context manager)."""
        return Pipeline(self)


class Pipeline:
    """Buffered requests flushed as one burst on one connection.

    Not thread-safe; one pipeline belongs to one caller.  Exiting the
    ``with`` block flushes; :attr:`results` then holds one entry per
    queued op, in order.

    On a retrying client, a flush that hits a transport fault re-sends
    the *whole* burst on a fresh connection: queued writes were wrapped
    in dedup envelopes (sequence assigned at queue time, stable across
    attempts) so re-applying is impossible, and queued reads simply
    re-execute.  A torn burst therefore converges to exactly-once for
    every write, whatever prefix of it the server saw.
    """

    def __init__(self, client: Client) -> None:
        self._client = client
        self._conn: _Conn | None = None
        self._queued: list[tuple[str, list]] = []
        self.results: list[Any] = []

    # -- queuing --------------------------------------------------------------

    def _queue_op(self, op: str, args: list) -> int:
        """Queue one request; returns its index into :attr:`results`."""
        client = self._client
        if client._retry is not None and op in ("put", "delete"):
            args = [client._client_id, client._next_write_seq(), op, args]
            op = "apply"
        self._queued.append((op, args))
        return len(self._queued) - 1

    def put(self, key: Any, value: Any) -> int:
        return self._queue_op("put", [key, value])

    def get(self, key: Any) -> int:
        return self._queue_op("get", [key])

    def delete(self, key: Any) -> int:
        return self._queue_op("delete", [key])

    def lookup(self, attribute: str, value: Any,
               k: int | None = None) -> int:
        return self._queue_op("lookup", [attribute, value, k])

    def __len__(self) -> int:
        return len(self._queued)

    # -- flushing -------------------------------------------------------------

    def _attempt(self, queued: list[tuple[str, list]]
                 ) -> tuple[list[Any], RemoteError | None]:
        """One send-all/read-all pass; drops the connection on failure."""
        if self._conn is None:
            self._conn = self._client._checkout()
        conn = self._conn
        frames: list[bytes] = []
        request_ids: list[int] = []
        for op, args in queued:
            request_id = conn.next_id
            conn.next_id += 1
            request_ids.append(request_id)
            frames.append(encode_frame(encode_value([request_id, op, *args])))
        try:
            conn.sock.sendall(b"".join(frames))
            batch: list[Any] = []
            first_error: RemoteError | None = None
            for request_id in request_ids:
                try:
                    batch.append(_read_response(
                        conn, request_id, self._client._max_frame_bytes))
                except RemoteError as exc:
                    batch.append(exc)
                    if first_error is None:
                        first_error = exc
            return batch, first_error
        except (OSError, ProtocolError):
            conn.broken = True
            self._conn = None
            self._client._release(conn)
            raise

    def flush(self, raise_errors: bool = True) -> list:
        """Send everything queued, read every response, return results.

        All responses are drained before any error is raised, so the
        connection stays in sync and reusable.  With
        ``raise_errors=False`` failed ops yield :class:`RemoteError`
        *instances* in the result list instead of raising.
        """
        if not self._queued:
            return []
        queued, self._queued = self._queued, []
        policy = self._client._retry
        if policy is None:
            batch, first_error = self._attempt(queued)
        else:
            deadline = policy.clock() + policy.deadline
            attempt = 0
            while True:
                try:
                    batch, first_error = self._attempt(queued)
                    break
                except ClientClosedError:
                    raise
                except _TRANSIENT as exc:
                    last_error = exc
                now = policy.clock()
                if now >= deadline:
                    raise last_error
                delay = min(policy.backoff(attempt), deadline - now)
                if delay > 0:
                    policy.sleep(delay)
                attempt += 1
        self.results.extend(batch)
        if first_error is not None and raise_errors:
            raise first_error
        return batch

    def close(self) -> None:
        """Return the dedicated connection to the pool (unflushed ops drop)."""
        self._queued = []
        if self._conn is not None:
            self._client._release(self._conn)
            self._conn = None

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        try:
            if exc_type is None:
                self.flush()
        finally:
            self.close()

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)


def _read_response(conn: _Conn, request_id: int,
                   max_frame_bytes: int) -> Any:
    payload = read_frame(conn.sock, max_frame_bytes)
    if payload is None:
        raise ProtocolError("server closed the connection mid-request")
    response = decode_value(payload)
    if not isinstance(response, list) or len(response) != 3:
        raise ProtocolError("malformed response from server")
    echoed_id, status, body = response
    if status == STATUS_OK:
        if echoed_id != request_id:
            raise ProtocolError(
                f"response id {echoed_id} != request id {request_id}")
        return body
    remote_type, message = (body if isinstance(body, list)
                            and len(body) == 2 else ("ServerError", str(body)))
    raise RemoteError(str(remote_type), str(message))
