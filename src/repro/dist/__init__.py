"""Distributed secondary indexing — the paper's Appendix D, made concrete.

The paper's evaluation is deliberately single-node ("our focus is on a
single-machine storage engine ... the distribution techniques of HyperDex,
DynamoDB, Riak and Innesto can be viewed as complementary"), but its
Table 2 and related-work section lay out the two distribution strategies
industrial systems use:

**Local secondary indexes** (Riak, Cassandra): every data shard indexes
its own records.  Writes are one-shard operations, but a secondary LOOKUP
must scatter to *every* shard and gather/merge results.

**Global secondary indexes** (DynamoDB): one separate index ring,
partitioned by *attribute value*.  A LOOKUP touches a single index shard
(plus per-result GETs routed by primary key), but every write crosses
shard boundaries to maintain the index.

:class:`repro.dist.cluster.ShardedDB` composes the single-node engine into
both designs so their trade-off can be measured with the same I/O meters
as the paper's single-node experiments
(``benchmarks/bench_dist_local_vs_global.py``) — and, beyond the paper,
replicates each shard (:mod:`repro.dist.replication`), splits shards live
(:mod:`repro.dist.migration`) and repairs divergence with anti-entropy
passes, all drilled deterministically under the scheduler and fault VFS.
"""

from repro.dist.cluster import GlobalSecondaryIndex, SequenceOracle, ShardedDB
from repro.dist.migration import MigrationError, ShardSplit
from repro.dist.partitioner import (
    HashPartitioner,
    RangePartitioner,
    SplitHashRing,
)
from repro.dist.replication import (
    NoReplicaError,
    ReplicaDivergenceError,
    ReplicaSet,
    ReplicationError,
    SequenceChannel,
)

__all__ = [
    "GlobalSecondaryIndex",
    "HashPartitioner",
    "MigrationError",
    "NoReplicaError",
    "RangePartitioner",
    "ReplicaDivergenceError",
    "ReplicaSet",
    "ReplicationError",
    "SequenceChannel",
    "SequenceOracle",
    "ShardSplit",
    "ShardedDB",
    "SplitHashRing",
]
