"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure of the paper's
Section 5 at laptop scale.  The shared pieces here are:

* the scaled engine geometry (``BENCH_OPTIONS``) and dataset shape
  (``BENCH_PROFILE``: 200 users over 6000 tweets ≈ the paper's 30 tweets
  per user average);
* ``build_static`` — the Static-workload build phase for one index variant;
* ``ResultTable`` — collects paper-style rows and writes them under
  ``benchmarks/results/`` so `EXPERIMENTS.md` can cite exact numbers.

Latency is measured with pytest-benchmark; I/O is measured with the VFS
meters, which is the paper's primary metric (deterministic block counts
rather than hardware-dependent seek times).
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.options import Options
from repro.workloads.generator import StaticWorkload
from repro.workloads.tweets import SeedProfile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Scaled-down LevelDB geometry (see DESIGN.md §1 for the scaling argument).
BENCH_OPTIONS = Options(
    block_size=2048,
    sstable_target_size=16 * 1024,
    memtable_budget=16 * 1024,
    l1_target_size=64 * 1024,
)

#: 200 users, Zipf rank-frequency, ~30 tweets per user at N_TWEETS=6000 —
#: matching the seed dataset's "average number of tweets per user is 30".
BENCH_PROFILE = SeedProfile(num_users=200)

N_TWEETS = 6000

ALL_KINDS = [IndexKind.EMBEDDED, IndexKind.EAGER, IndexKind.LAZY,
             IndexKind.COMPOSITE, IndexKind.NOINDEX]
#: The variants the paper keeps after declaring Eager "unusable".
SURVIVOR_KINDS = [IndexKind.EMBEDDED, IndexKind.LAZY, IndexKind.COMPOSITE,
                  IndexKind.NOINDEX]
STANDALONE_KINDS = [IndexKind.EAGER, IndexKind.LAZY, IndexKind.COMPOSITE]

ATTRIBUTES = ("UserID", "CreationTime")


def bench_options(**overrides) -> Options:
    return replace(BENCH_OPTIONS, **overrides)


def build_static(kind: IndexKind, num_tweets: int = N_TWEETS,
                 attributes: tuple[str, ...] = ATTRIBUTES,
                 options: Options | None = None,
                 seed: int = 2018) -> tuple[SecondaryIndexedDB, StaticWorkload]:
    """The Static workload's build phase for one index variant."""
    workload = StaticWorkload(num_tweets=num_tweets, profile=BENCH_PROFILE,
                              seed=seed)
    db = SecondaryIndexedDB.open_memory(
        indexes={attr: kind for attr in attributes},
        options=options or BENCH_OPTIONS)
    for op in workload.load_phase():
        db.put(op.key, op.document)
    return db, workload


def index_io(db: SecondaryIndexedDB) -> dict[str, int]:
    """Aggregated index-table I/O meters (0s when no index table exists)."""
    read = write = compaction = 0
    seen = {id(db.primary.vfs)}
    for index in db.indexes.values():
        index_db = getattr(index, "index_db", None)
        if index_db is None or id(index_db.vfs) in seen:
            continue
        seen.add(id(index_db.vfs))
        stats = index_db.vfs.stats
        read += stats.read_blocks
        write += stats.write_blocks
        compaction += (stats.reads_by_category.get("compaction", 0)
                       + stats.writes_by_category.get("compaction", 0)
                       + stats.writes_by_category.get("flush", 0))
    return {"read": read, "write": write, "compaction": compaction}


_MIXED_CACHE: dict = {}

MIXED_NUM_OPS = 4000


def get_mixed_report(kind: IndexKind, workload_name: str):
    """Memoized Mixed-workload run (shared by the Figure 12 and 13-15
    benches, which report different views of the same experiment)."""
    key = (kind, workload_name)
    if key not in _MIXED_CACHE:
        from repro.workloads.generator import MIXED_RATIOS, MixedWorkload
        from repro.workloads.runner import WorkloadRunner

        workload = MixedWorkload(
            num_operations=MIXED_NUM_OPS,
            ratios=MIXED_RATIOS[workload_name],
            profile=BENCH_PROFILE,
            lookup_attribute="UserID",
            lookup_k=5,
            seed=31,
        )
        db = SecondaryIndexedDB.open_memory(
            indexes={"UserID": kind}, options=BENCH_OPTIONS)
        report = WorkloadRunner(db, sample_every=MIXED_NUM_OPS // 8).run(
            workload.operations())
        final_compaction = index_io(db)["compaction"]
        db.close()
        _MIXED_CACHE[key] = (report, final_compaction)
    return _MIXED_CACHE[key]


class ResultTable:
    """Fixed-width result table written to ``benchmarks/results/``."""

    def __init__(self, name: str, title: str, columns: list[str]) -> None:
        self.name = name
        self.title = title
        self.columns = columns
        self.rows: list[list[str]] = []
        self.notes: list[str] = []

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append([_fmt(value) for value in values])

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(col.ljust(widths[i])
                           for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }

    def write(self) -> str:
        """Write ``results/<name>.txt`` plus a machine-readable JSON twin.

        The ``.txt`` rendering is for humans and EXPERIMENTS.md citations;
        the ``.json`` twin (same rows, same order) is what trend tooling
        and the CI benchmark gate consume.
        """
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{self.name}.txt")
        with open(path, "w") as handle:
            handle.write(self.render())
        json_path = os.path.join(RESULTS_DIR, f"{self.name}.json")
        with open(json_path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def quartiles(samples: list[float]) -> tuple[float, float, float]:
    """(p25, median, p75) — the paper reports query latencies as
    box-and-whisker plots, so the benches report the box."""
    if not samples:
        return (0.0, 0.0, 0.0)
    ordered = sorted(samples)

    def pick(fraction: float) -> float:
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    return (pick(0.25), pick(0.5), pick(0.75))


def timed_queries(queries) -> tuple[list[float], float]:
    """Run callables one by one; returns (per-query µs, total seconds)."""
    import time

    latencies = []
    started = time.perf_counter()
    for query in queries:
        began = time.perf_counter()
        query()
        latencies.append((time.perf_counter() - began) * 1e6)
    return latencies, time.perf_counter() - started


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)
