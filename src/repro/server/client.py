"""Client for the serving layer: pooled connections, pipelining.

One :class:`Client` owns a pool of sockets.  Single-shot calls
(:meth:`Client.put`, :meth:`Client.get`, ...) check a connection out,
run one request/response round trip, and return it.  The pool is lazy
and LIFO — a single-threaded caller reuses one warm socket; ``pool_size``
threads can call concurrently without sharing a connection.

Pipelining batches round trips::

    with client.pipeline() as p:
        for key, value in items:
            p.put(key, value)
    seqs = p.results          # one result per queued op, in order

The pipeline sends every queued request in one write and then reads the
responses back in order (the server answers FIFO per connection).  On
the server side a pipelined run of writes is coalesced into a single
WriteBatch — one group-commit entry, one fsync — which is where the
serving layer's throughput comes from.

Failures inside a pipeline surface as :class:`RemoteError` after *all*
responses are drained, so the connection stays usable.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Any, Iterator

from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ProtocolError,
    STATUS_OK,
    decode_value,
    encode_frame,
    encode_value,
    read_frame,
)

__all__ = ["Client", "Pipeline", "RemoteError"]


class RemoteError(Exception):
    """The server answered a request with an error response.

    ``remote_type`` carries the exception class name raised server-side
    (e.g. ``"InvalidArgumentError"``).
    """

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


class _Conn:
    """One pooled socket plus its request-id counter."""

    __slots__ = ("sock", "next_id", "broken")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.next_id = 1
        self.broken = False


class Client:
    """Pooled client for one server address.

    Thread-safe: up to ``pool_size`` threads run requests in parallel,
    each on its own connection; further threads wait for a free one.
    """

    def __init__(self, host: str, port: int, *, pool_size: int = 4,
                 timeout: float | None = 30.0,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self._address = (host, port)
        self._timeout = timeout
        self._max_frame_bytes = max_frame_bytes
        self._pool: queue.LifoQueue[_Conn] = queue.LifoQueue()
        self._pool_size = pool_size
        self._created = 0
        self._lock = threading.Lock()
        self._closed = False

    # -- pool -----------------------------------------------------------------

    def _connect(self) -> _Conn:
        sock = socket.create_connection(self._address,
                                        timeout=self._timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        return _Conn(sock)

    def _checkout(self) -> _Conn:
        if self._closed:
            raise ProtocolError("client is closed")
        try:
            return self._pool.get_nowait()
        except queue.Empty:
            pass
        with self._lock:
            if self._created < self._pool_size:
                self._created += 1
                try:
                    return self._connect()
                except BaseException:
                    self._created -= 1
                    raise
        return self._pool.get()

    def _release(self, conn: _Conn) -> None:
        if conn.broken or self._closed:
            self._discard(conn)
        else:
            self._pool.put(conn)

    def _discard(self, conn: _Conn) -> None:
        try:
            conn.sock.close()
        except OSError:
            pass
        with self._lock:
            self._created -= 1

    def close(self) -> None:
        """Close every pooled connection; in-flight calls may fail."""
        self._closed = True
        while True:
            try:
                conn = self._pool.get_nowait()
            except queue.Empty:
                return
            self._discard(conn)

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- request plumbing -----------------------------------------------------

    def _call(self, op: str, args: list) -> Any:
        conn = self._checkout()
        try:
            request_id = conn.next_id
            conn.next_id += 1
            conn.sock.sendall(encode_frame(encode_value(
                [request_id, op, *args])))
            return _read_response(conn, request_id, self._max_frame_bytes)
        except (OSError, ProtocolError):
            conn.broken = True
            raise
        finally:
            self._release(conn)

    # -- operations -----------------------------------------------------------

    def put(self, key: Any, value: Any) -> int:
        """Write one key; returns the committed sequence number."""
        return self._call("put", [key, value])

    def get(self, key: Any) -> Any:
        """Read one key; ``None`` if absent."""
        return self._call("get", [key])

    def delete(self, key: Any) -> int:
        """Delete one key; returns the tombstone's sequence number."""
        return self._call("delete", [key])

    def scan(self, low: Any = None, high: Any = None,
             limit: int | None = None) -> list:
        """One page of ``[key, value]`` pairs in ``[low, high)``."""
        return self._call("scan", [low, high, limit])

    def lookup(self, attribute: str, value: Any,
               k: int | None = None) -> list:
        """Secondary-index lookup: ``[key, document, seq]`` triples."""
        return self._call("lookup", [attribute, value, k])

    def range_lookup(self, attribute: str, low: Any, high: Any,
                     k: int | None = None) -> list:
        """Secondary-index range lookup: ``[key, document, seq]`` triples."""
        return self._call("rangelookup", [attribute, low, high, k])

    def stats(self) -> dict:
        """Server + engine stats (see ``DB.stats`` and ``ServerStats``)."""
        return self._call("stats", [])

    def pipeline(self) -> "Pipeline":
        """Batch requests on one dedicated connection (context manager)."""
        return Pipeline(self)


class Pipeline:
    """Buffered requests flushed as one burst on one connection.

    Not thread-safe; one pipeline belongs to one caller.  Exiting the
    ``with`` block flushes; :attr:`results` then holds one entry per
    queued op, in order.
    """

    def __init__(self, client: Client) -> None:
        self._client = client
        self._conn: _Conn | None = None
        self._queued: list[tuple[int, bytes]] = []
        self.results: list[Any] = []

    # -- queuing --------------------------------------------------------------

    def _queue_op(self, op: str, args: list) -> int:
        """Queue one request; returns its index into :attr:`results`."""
        if self._conn is None:
            self._conn = self._client._checkout()
        request_id = self._conn.next_id
        self._conn.next_id += 1
        self._queued.append(
            (request_id, encode_frame(encode_value([request_id, op, *args]))))
        return len(self._queued) - 1

    def put(self, key: Any, value: Any) -> int:
        return self._queue_op("put", [key, value])

    def get(self, key: Any) -> int:
        return self._queue_op("get", [key])

    def delete(self, key: Any) -> int:
        return self._queue_op("delete", [key])

    def lookup(self, attribute: str, value: Any,
               k: int | None = None) -> int:
        return self._queue_op("lookup", [attribute, value, k])

    def __len__(self) -> int:
        return len(self._queued)

    # -- flushing -------------------------------------------------------------

    def flush(self, raise_errors: bool = True) -> list:
        """Send everything queued, read every response, return results.

        All responses are drained before any error is raised, so the
        connection stays in sync and reusable.  With
        ``raise_errors=False`` failed ops yield :class:`RemoteError`
        *instances* in the result list instead of raising.
        """
        if not self._queued:
            return []
        conn = self._conn
        assert conn is not None
        queued, self._queued = self._queued, []
        try:
            conn.sock.sendall(b"".join(frame for _, frame in queued))
            batch: list[Any] = []
            first_error: RemoteError | None = None
            for request_id, _ in queued:
                try:
                    batch.append(_read_response(
                        conn, request_id, self._client._max_frame_bytes))
                except RemoteError as exc:
                    batch.append(exc)
                    if first_error is None:
                        first_error = exc
        except (OSError, ProtocolError):
            conn.broken = True
            raise
        self.results.extend(batch)
        if first_error is not None and raise_errors:
            raise first_error
        return batch

    def close(self) -> None:
        """Return the dedicated connection to the pool (unflushed ops drop)."""
        self._queued = []
        if self._conn is not None:
            self._client._release(self._conn)
            self._conn = None

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        try:
            if exc_type is None:
                self.flush()
        finally:
            self.close()

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)


def _read_response(conn: _Conn, request_id: int,
                   max_frame_bytes: int) -> Any:
    payload = read_frame(conn.sock, max_frame_bytes)
    if payload is None:
        raise ProtocolError("server closed the connection mid-request")
    response = decode_value(payload)
    if not isinstance(response, list) or len(response) != 3:
        raise ProtocolError("malformed response from server")
    echoed_id, status, body = response
    if status == STATUS_OK:
        if echoed_id != request_id:
            raise ProtocolError(
                f"response id {echoed_id} != request id {request_id}")
        return body
    remote_type, message = (body if isinstance(body, list)
                            and len(body) == 2 else ("ServerError", str(body)))
    raise RemoteError(str(remote_type), str(message))
