"""Index self-healing: the primary record store is authoritative.

A quarantined secondary-index table is never repaired in place — the
whole index database is discarded and rebuilt by replaying every live
primary record through the index's own write path.  The healed index
must answer every query exactly like an index that was never corrupted
(verified against an uncorrupted twin built from the same writes).
"""

from __future__ import annotations

import random

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.vfs import MemoryVFS

from drill_utils import corruption_options


CITIES = [f"city{i}" for i in range(7)]


def build(vfs, kind=IndexKind.EAGER, rows=120, seed=None, **overrides):
    options = corruption_options(**overrides)
    db = SecondaryIndexedDB.open(vfs, "data", {"city": kind},
                                 options=options)
    rng = random.Random(seed)
    for i in range(rows):
        city = CITIES[i % 7] if seed is None else rng.choice(CITIES)
        db.put(f"user{i:04d}", {"name": f"u{i}", "city": city})
    if seed is not None:
        # A few overwrites and deletes so healing must respect versions.
        for i in rng.sample(range(rows), rows // 10):
            db.put(f"user{i:04d}", {"name": f"u{i}!", "city":
                                    rng.choice(CITIES)})
        for i in rng.sample(range(rows), rows // 20):
            db.delete(f"user{i:04d}")
    db.flush()
    return db


def corrupt_index_table(vfs, kind=IndexKind.EAGER):
    """Rot every index table: older ones may be fully shadowed by newer
    versions (and so never read), corrupting all of them guarantees the
    next lookup trips on a bad block whichever table it consults."""
    prefix = f"data/index-{kind.value}-city/"
    names = [n for n in vfs.list_dir(prefix) if n.endswith(".ldb")]
    assert names, "the index flushed at least one table"
    for name in names:
        vfs._files[name][40] ^= 0xFF


def lookup_keys(db, city):
    return sorted(r.key for r in
                  db.lookup("city", city, early_termination=False))


class TestInlineQuarantineHeal:
    def test_paranoid_read_quarantines_then_heals_to_parity(self):
        victim_vfs, control_vfs = MemoryVFS(), MemoryVFS()
        victim = build(victim_vfs, paranoid_checks=True)
        control = build(control_vfs, paranoid_checks=True)
        corrupt_index_table(victim_vfs)
        # Queries before healing never raise and never return a wrong
        # row — the quarantined table's postings are simply missing.
        for city in CITIES:
            assert set(lookup_keys(victim, city)) <= \
                set(lookup_keys(control, city))
        assert victim.quarantined_indexes() == ["city"]
        healed = victim.heal_indexes()
        assert healed == {"city": 120}
        assert victim.quarantined_indexes() == []
        for city in CITIES:
            assert lookup_keys(victim, city) == lookup_keys(control, city)
        victim.close()
        control.close()

    def test_scrub_route_heals_without_paranoid_reads(self):
        victim_vfs, control_vfs = MemoryVFS(), MemoryVFS()
        victim = build(victim_vfs)
        control = build(control_vfs)
        corrupt_index_table(victim_vfs)
        report = victim.indexes["city"].index_db.scrub()
        assert report.quarantined
        assert victim.quarantined_indexes() == ["city"]
        victim.heal_indexes()
        for city in CITIES:
            assert lookup_keys(victim, city) == lookup_keys(control, city)
        victim.close()
        control.close()


class TestRebuildSemantics:
    def test_rebuild_unquarantined_index_is_safe(self):
        vfs = MemoryVFS()
        db = build(vfs)
        before = {city: lookup_keys(db, city) for city in CITIES}
        assert db.rebuild_index("city") == 120
        after = {city: lookup_keys(db, city) for city in CITIES}
        assert after == before
        db.close()

    def test_embedded_index_has_nothing_to_rebuild(self):
        vfs = MemoryVFS()
        db = build(vfs, kind=IndexKind.EMBEDDED)
        assert db.rebuild_index("city") == 0
        assert db.quarantined_indexes() == []
        db.close()

    def test_heal_with_no_damage_is_a_noop(self):
        vfs = MemoryVFS()
        db = build(vfs)
        assert db.heal_indexes() == {}
        db.close()

    @pytest.mark.parametrize("kind", [IndexKind.EAGER, IndexKind.LAZY,
                                      IndexKind.COMPOSITE])
    def test_every_standalone_kind_heals(self, kind):
        victim_vfs, control_vfs = MemoryVFS(), MemoryVFS()
        victim = build(victim_vfs, kind=kind, paranoid_checks=True)
        control = build(control_vfs, kind=kind, paranoid_checks=True)
        corrupt_index_table(victim_vfs, kind=kind)
        for city in CITIES:
            lookup_keys(victim, city)  # trip the quarantine
        assert victim.quarantined_indexes() == ["city"]
        victim.heal_indexes()
        for city in CITIES:
            assert lookup_keys(victim, city) == lookup_keys(control, city)
        victim.close()
        control.close()


class TestPropertyParity:
    """Across randomized workloads (overwrites and deletes included),
    quarantine + rebuild always converges back to the uncorrupted twin."""

    @pytest.mark.parametrize("seed", [7, 23, 1009])
    def test_healed_equals_uncorrupted_twin(self, seed):
        victim_vfs, control_vfs = MemoryVFS(), MemoryVFS()
        victim = build(victim_vfs, rows=150, seed=seed,
                       paranoid_checks=True)
        control = build(control_vfs, rows=150, seed=seed,
                        paranoid_checks=True)
        corrupt_index_table(victim_vfs)
        for city in CITIES:
            degraded = lookup_keys(victim, city)
            assert set(degraded) <= set(lookup_keys(control, city))
        if victim.quarantined_indexes():
            victim.heal_indexes()
        for city in CITIES:
            assert lookup_keys(victim, city) == lookup_keys(control, city)
        # Range queries exercise the index's ordered structure too.
        victim_range = sorted(
            r.key for r in victim.range_lookup(
                "city", "city0", "city6", early_termination=False))
        control_range = sorted(
            r.key for r in control.range_lookup(
                "city", "city0", "city6", early_termination=False))
        assert victim_range == control_range
        victim.close()
        control.close()
