"""Thread-safe wrapper: hammered from many threads, still consistent."""

import threading

from conftest import open_db

from repro.core.base import IndexKind
from repro.core.concurrent import ThreadSafeDB


def _wrapped(index_options, kind=IndexKind.LAZY):
    return ThreadSafeDB(open_db(kind, index_options))


class TestBasicDelegation:
    def test_operations_pass_through(self, index_options):
        db = _wrapped(index_options)
        db.put("t1", {"UserID": "u1"})
        assert db.get("t1") == {"UserID": "u1"}
        assert [r.key for r in db.lookup("UserID", "u1")] == ["t1"]
        assert db.range_lookup("UserID", "u0", "u9")[0].key == "t1"
        db.delete("t1")
        assert db.get("t1") is None
        db.flush()
        db.compact_all()
        assert db.total_size() == sum(db.size_breakdown().values())
        assert "primary" in db.io_stats()
        db.close()

    def test_context_manager(self, index_options):
        with _wrapped(index_options) as db:
            db.put("t1", {"UserID": "u1"})


class TestConcurrency:
    def test_parallel_writers_and_readers(self, index_options):
        db = _wrapped(index_options)
        num_threads = 6
        per_thread = 150
        errors: list[BaseException] = []

        def writer(thread_id: int) -> None:
            try:
                for i in range(per_thread):
                    key = f"t{thread_id:02d}-{i:04d}"
                    db.put(key, {"UserID": f"u{thread_id}"})
                    if i % 10 == 0:
                        db.lookup("UserID", f"u{thread_id}", k=3)
                        db.get(key)
            except BaseException as exc:  # noqa: BLE001 - collect for assert
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        # Post-hoc consistency: every thread's writes are all present.
        for thread_id in range(num_threads):
            got = db.lookup("UserID", f"u{thread_id}",
                            early_termination=False)
            assert len(got) == per_thread, thread_id
        db.close()

    def test_concurrent_updates_single_key(self, index_options):
        db = _wrapped(index_options)
        barrier = threading.Barrier(4)

        def updater(thread_id: int) -> None:
            barrier.wait()
            for i in range(100):
                db.put("contested", {"UserID": f"u{thread_id}",
                                     "round": i})

        threads = [threading.Thread(target=updater, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly one version is visible, and the index agrees with it.
        final = db.get("contested")
        assert final is not None
        winner = final["UserID"]
        results = db.lookup("UserID", winner, early_termination=False)
        assert [r.key for r in results] == ["contested"]
        for loser in range(4):
            user = f"u{loser}"
            if user == winner:
                continue
            assert db.lookup("UserID", user, early_termination=False) == []
        db.close()
