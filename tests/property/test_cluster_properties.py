"""Hypothesis properties for the distributed layer."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.base import IndexKind
from repro.dist.cluster import ShardedDB
from repro.dist.partitioner import HashPartitioner, RangePartitioner
from repro.lsm.options import Options
from repro.lsm.zonemap import encode_attribute

_SETTINGS = settings(max_examples=15, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _options():
    return Options(block_size=512, sstable_target_size=2 * 1024,
                   memtable_budget=2 * 1024, l1_target_size=8 * 1024,
                   compression="none")


_ops = st.lists(
    st.tuples(st.sampled_from(["put", "delete"]),
              st.integers(min_value=0, max_value=40),
              st.integers(min_value=0, max_value=6)),
    max_size=120)


class TestClusterEqualsModel:
    @given(_ops, st.sampled_from(["local", "global"]),
           st.integers(min_value=1, max_value=5))
    @_SETTINGS
    def test_cluster_matches_dict_model(self, operations, scope,
                                        num_shards):
        if scope == "local":
            cluster = ShardedDB.open_memory(
                num_shards=num_shards,
                local_indexes={"u": IndexKind.LAZY}, options=_options())
        else:
            cluster = ShardedDB.open_memory(
                num_shards=num_shards, global_indexes=("u",),
                options=_options())
        model = {}
        for op, key_id, value_id in operations:
            key = f"k{key_id:03d}"
            if op == "put":
                doc = {"u": f"u{value_id}"}
                cluster.put(key, doc)
                model[key] = doc
            else:
                cluster.delete(key)
                model.pop(key, None)
        for key_id in range(41):
            key = f"k{key_id:03d}"
            assert cluster.get(key) == model.get(key)
        for value_id in range(7):
            value = f"u{value_id}"
            got = {r.key for r in cluster.lookup(
                "u", value, early_termination=False)}
            want = {key for key, doc in model.items() if doc["u"] == value}
            assert got == want
        cluster.close()


class TestPartitionerProperties:
    @given(st.binary(max_size=30), st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_hash_in_range_and_stable(self, key, num_shards):
        partitioner = HashPartitioner(num_shards)
        shard = partitioner.shard_of(key)
        assert 0 <= shard < num_shards
        assert shard == partitioner.shard_of(key)

    @given(st.sets(st.integers(min_value=-1000, max_value=1000),
                   min_size=1, max_size=10),
           st.integers(min_value=-1200, max_value=1200))
    @settings(max_examples=100, deadline=None)
    def test_range_shard_of_consistent_with_overlap(self, splits, probe):
        encoded_splits = sorted(encode_attribute(s) for s in splits)
        partitioner = RangePartitioner(encoded_splits)
        encoded = encode_attribute(probe)
        shard = partitioner.shard_of(encoded)
        assert 0 <= shard < partitioner.num_shards
        # The single-point "range" must resolve to exactly that shard.
        assert partitioner.shards_overlapping(encoded, encoded) == [shard]

    @given(st.sets(st.integers(min_value=0, max_value=100), min_size=1,
                   max_size=8),
           st.integers(min_value=-10, max_value=110),
           st.integers(min_value=-10, max_value=110))
    @settings(max_examples=100, deadline=None)
    def test_range_overlap_covers_every_member_shard(self, splits, a, b):
        low, high = (a, b) if a <= b else (b, a)
        encoded_splits = sorted(encode_attribute(s) for s in splits)
        partitioner = RangePartitioner(encoded_splits)
        overlap = partitioner.shards_overlapping(
            encode_attribute(low), encode_attribute(high))
        for value in range(low, high + 1):
            assert partitioner.shard_of(encode_attribute(value)) in overlap
