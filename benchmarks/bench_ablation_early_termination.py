"""Ablation: the Lazy index's level-at-a-time early termination.

"As levels are sorted based on time in the LSM tree, if we already find
top-k during a scan in one level, LOOKUP can stop there" (Section 4.1.2) —
the property that gives Lazy its small-K edge over Composite.  The
ablation disables the stop and measures the extra levels visited and the
extra index I/O.
"""

import pytest

from harness import BENCH_PROFILE, ResultTable, bench_options

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.workloads.tweets import TweetGenerator

_N = 4000
_RESULTS: dict = {}

_TABLE = ResultTable(
    "ablation_early_termination",
    "Ablation — Lazy LOOKUP early termination (K=5, hot users)",
    ["early_termination", "levels_visited_per_lookup",
     "index_read_blocks_per_lookup", "validation_gets_per_lookup"])


@pytest.fixture(scope="module")
def lazy_db():
    generator = TweetGenerator(BENCH_PROFILE, seed=61)
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY}, options=bench_options())
    for key, doc in generator.tweets(_N):
        db.put(key, doc)
    yield db
    db.close()


@pytest.mark.parametrize("early", [True, False], ids=["stop", "no-stop"])
def test_ablation_early_termination(benchmark, lazy_db, early):
    db = lazy_db
    index = db.indexes["UserID"]
    users = [f"u{r:05d}" for r in range(15)]

    # Warm-up: load every table's index/filter metadata so neither
    # parametrisation is charged for one-time table opens.
    for user in users:
        db.lookup("UserID", user, 5, early_termination=False)

    index.levels_visited = 0
    gets_before = db.checker.validation_gets
    reads_before = index.index_db.vfs.stats.read_blocks

    def run_lookups():
        for user in users:
            db.lookup("UserID", user, 5, early_termination=early)

    benchmark.pedantic(run_lookups, rounds=2, iterations=1)
    levels = index.levels_visited / (2 * len(users))
    reads = (index.index_db.vfs.stats.read_blocks - reads_before) \
        / (2 * len(users))
    gets = (db.checker.validation_gets - gets_before) / (2 * len(users))
    _TABLE.add("on" if early else "off", f"{levels:.2f}", f"{reads:.2f}",
               f"{gets:.2f}")
    _RESULTS[early] = {"levels": levels, "reads": reads}
    if len(_RESULTS) == 2:
        _TABLE.write()
        assert _RESULTS[True]["levels"] < _RESULTS[False]["levels"]
        assert _RESULTS[True]["reads"] <= _RESULTS[False]["reads"]
