"""``SecondaryIndexedDB`` — the LevelDB++ facade.

One primary data table plus any number of secondary indexes, kept
consistent through the write path and queried through the paper's five
operations (Table 1)::

    db = SecondaryIndexedDB.open_memory(indexes={
        "user_id": IndexKind.LAZY,
        "creation_time": IndexKind.EMBEDDED,
    })
    db.put("t1", {"user_id": "u1", "creation_time": 17, "text": "..."})
    db.lookup("user_id", "u1", k=10)
    db.range_lookup("creation_time", 10, 20, k=10)

Each stand-alone index lives in its *own* LSM table ("column family"), by
default on its own metered VFS so that the paper's per-table I/O series
(data-table GETs vs index compaction, Figures 9 and 13-15) fall directly
out of the meters.

Consistency model (Section 1's "managing the consistency between secondary
indexes and data tables"): the data table is written first and is always
authoritative; index maintenance follows synchronously in the same call.
Stale index entries left behind by updates are filtered at query time by
validating every candidate against the data table — the same design as the
paper's LevelDB++.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

from repro.core.base import IndexKind, LookupResult, SecondaryIndex
from repro.core.composite import CompositeIndex
from repro.core.eager import EagerIndex
from repro.core.embedded import EmbeddedIndex
from repro.core.lazy import LazyIndex
from repro.core.noindex import NoIndex
from repro.core.posting import posting_merge_operator
from repro.core.records import (
    Document,
    attribute_of,
    decode_document,
    encode_document,
    key_to_bytes,
)
from repro.core.validity import ValidityChecker
from repro.lsm.db import DB
from repro.lsm.errors import InvalidArgumentError
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS, VFS


class SecondaryIndexedDB:
    """A NoSQL store with pluggable secondary indexes (the paper's system)."""

    def __init__(self, primary: DB, indexes: dict[str, SecondaryIndex],
                 checker: ValidityChecker,
                 index_specs: dict[str, tuple] | None = None) -> None:
        """Assembled by :meth:`open` / :meth:`open_memory`."""
        self.primary = primary
        self.indexes = indexes
        self.checker = checker
        # attribute -> (kind, table_vfs, table_name, index_options) for
        # every stand-alone index: everything needed to drop and re-create
        # its table when corruption quarantines it (see rebuild_index).
        self._index_specs: dict[str, tuple] = index_specs or {}
        self._needs_old_doc_on_delete = any(
            index.kind in (IndexKind.EAGER, IndexKind.LAZY,
                           IndexKind.COMPOSITE)
            for index in indexes.values())
        self._closed = False

    # -- construction ------------------------------------------------------------

    @classmethod
    def open(cls, vfs: VFS, name: str = "data",
             indexes: Mapping[str, IndexKind] | None = None,
             options: Options | None = None,
             index_vfs_factory=None) -> "SecondaryIndexedDB":
        """Open the primary table and one index table per stand-alone index.

        ``indexes`` maps attribute name to technique.  ``index_vfs_factory``
        (``lambda table_name: VFS``) lets callers give each index table its
        own metered filesystem; by default index tables share ``vfs``.
        """
        indexes = dict(indexes or {})
        base_options = options or Options()
        embedded_attrs = tuple(sorted(
            attr for attr, kind in indexes.items()
            if kind == IndexKind.EMBEDDED))
        primary_options = replace(base_options,
                                  indexed_attributes=embedded_attrs,
                                  merge_operator=None)
        primary = DB.open(vfs, f"{name}/primary", primary_options)
        checker = ValidityChecker(primary)

        built: dict[str, SecondaryIndex] = {}
        specs: dict[str, tuple] = {}
        for attribute, kind in indexes.items():
            built[attribute], spec = cls._build_index(
                attribute, kind, primary, checker, base_options,
                vfs, name, index_vfs_factory)
            if spec is not None:
                specs[attribute] = spec
        return cls(primary, built, checker, index_specs=specs)

    @classmethod
    def open_memory(cls, indexes: Mapping[str, IndexKind] | None = None,
                    options: Options | None = None,
                    name: str = "data",
                    shared_vfs: bool = False) -> "SecondaryIndexedDB":
        """In-memory database; each table gets its own meters by default."""
        vfs = MemoryVFS()
        factory = None if shared_vfs else (lambda _table_name: MemoryVFS())
        return cls.open(vfs, name, indexes, options,
                        index_vfs_factory=factory)

    @classmethod
    def _build_index(cls, attribute: str, kind: IndexKind, primary: DB,
                     checker: ValidityChecker, base_options: Options,
                     vfs: VFS, name: str, index_vfs_factory
                     ) -> tuple[SecondaryIndex, tuple | None]:
        """Returns ``(index, rebuild_spec)``.

        The spec — ``(kind, table_vfs, table_name, index_options)`` — is
        ``None`` for index kinds that live inside the primary table and
        therefore have no table of their own to rebuild.
        """
        if not isinstance(kind, IndexKind):
            raise InvalidArgumentError(f"unknown index kind: {kind!r}")
        if kind == IndexKind.EMBEDDED:
            return EmbeddedIndex(attribute, primary, checker), None
        if kind == IndexKind.NOINDEX:
            return NoIndex(attribute, primary), None
        table_name = f"{name}/index-{kind.value}-{attribute}"
        table_vfs = vfs if index_vfs_factory is None \
            else index_vfs_factory(table_name)
        merge_operator = posting_merge_operator \
            if kind == IndexKind.LAZY else None
        index_options = replace(base_options,
                                indexed_attributes=(),
                                merge_operator=merge_operator)
        index_db = DB.open(table_vfs, table_name, index_options)
        spec = (kind, table_vfs, table_name, index_options)
        if kind == IndexKind.EAGER:
            return EagerIndex(attribute, index_db, checker), spec
        if kind == IndexKind.LAZY:
            return LazyIndex(attribute, index_db, checker), spec
        if kind == IndexKind.COMPOSITE:
            return CompositeIndex(attribute, index_db, checker), spec
        raise InvalidArgumentError(f"unknown index kind: {kind!r}")

    # -- base operations (Table 1) ----------------------------------------------

    def put(self, key: str | bytes, document: Document) -> int:
        """PUT(k, v): write (or overwrite) and maintain every index."""
        self._check_open()
        key_bytes = key_to_bytes(key)
        # The commit returns this write's own sequence number; reading
        # versions.last_sequence afterwards would race a concurrent writer
        # under the background pipeline and stamp the index entries with a
        # stranger's sequence.
        seq = self.primary.put(key_bytes, encode_document(document))
        for index in self.indexes.values():
            index.on_put(key_bytes, document, seq)
        return seq

    def get(self, key: str | bytes) -> Document | None:
        """GET(k): the live document, or ``None``."""
        self._check_open()
        value = self.primary.get(key_to_bytes(key))
        if value is None:
            return None
        return decode_document(value)

    def delete(self, key: str | bytes) -> int:
        """DEL(k): remove the record and maintain every index.

        Stand-alone indexes need the dying record's attribute values to
        target the right posting list / composite key, so their presence
        costs one data-table GET here (the paper's Table 5 read column).
        Returns the tombstone's sequence number.
        """
        self._check_open()
        key_bytes = key_to_bytes(key)
        old_document: Document | None = None
        if self._needs_old_doc_on_delete:
            old_value = self.primary.get(key_bytes)
            if old_value is not None:
                old_document = decode_document(old_value)
        seq = self.primary.delete(key_bytes)
        for index in self.indexes.values():
            index.on_delete(key_bytes, old_document, seq)
        return seq

    # -- secondary queries (Table 1) -----------------------------------------------

    def lookup(self, attribute: str, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        """LOOKUP(A, a, K): K most recent live records with val(A) = a."""
        self._check_open()
        return self._index_for(attribute).lookup(value, k, early_termination)

    def range_lookup(self, attribute: str, low: Any, high: Any,
                     k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        """RANGELOOKUP(A, a, b, K): K most recent with a <= val(A) <= b."""
        self._check_open()
        return self._index_for(attribute).range_lookup(
            low, high, k, early_termination)

    def multi_lookup(self, conditions: Mapping[str, Any],
                     k: int | None = None) -> list[LookupResult]:
        """Conjunctive query: records matching *every* ``attr == value``.

        Executes the single LOOKUP the planner judges most selective
        (fewest matches under the cost model's proxy: the index with the
        cheapest exhaustive lookup — ties broken by attribute name) and
        filters its results by the remaining conditions; every attribute
        must be indexed.  This is the classic index-intersection plan
        reduced to probe-one-filter-rest, which is optimal here because
        all results carry the full document.
        """
        self._check_open()
        if not conditions:
            raise InvalidArgumentError("multi_lookup needs >= 1 condition")
        for attribute in conditions:
            self._index_for(attribute)  # validate up front
        # Drive from the attribute whose index kind answers exhaustive
        # lookups cheapest: stand-alone kinds before EMBEDDED before
        # NOINDEX (full scan only as a last resort).
        preference = {
            IndexKind.EAGER: 0, IndexKind.LAZY: 1, IndexKind.COMPOSITE: 1,
            IndexKind.EMBEDDED: 2, IndexKind.NOINDEX: 3,
        }
        driver = min(conditions,
                     key=lambda attr: (preference[self.indexes[attr].kind],
                                       attr))
        results = []
        for result in self.indexes[driver].lookup(
                conditions[driver], None, early_termination=False):
            if all(attribute_of(result.document, attribute) == value
                   for attribute, value in conditions.items()):
                results.append(result)
                if k is not None and len(results) >= k:
                    break
        return results

    def scan(self, low: str | bytes | None = None,
             high: str | bytes | None = None):
        """Ordered iteration over live ``(key, document)`` pairs.

        A primary-key range scan (LevelDB's iterator API); bounds are
        inclusive, ``None`` means unbounded.
        """
        self._check_open()
        low_bytes = key_to_bytes(low) if low is not None else None
        high_bytes = key_to_bytes(high) if high is not None else None
        for key, value in self.primary.scan(low_bytes, high_bytes):
            yield key.decode("utf-8", errors="replace"), \
                decode_document(value)

    def _index_for(self, attribute: str) -> SecondaryIndex:
        try:
            return self.indexes[attribute]
        except KeyError:
            raise InvalidArgumentError(
                f"no secondary index on attribute {attribute!r}; "
                f"indexed: {sorted(self.indexes)}") from None

    # -- maintenance & introspection ---------------------------------------------

    def flush(self) -> None:
        """Flush the primary table and every index table."""
        self._check_open()
        self.primary.flush()
        for index in self.indexes.values():
            index.flush()

    def compact_all(self) -> None:
        """Full manual compaction of all tables (for static experiments)."""
        self._check_open()
        self.primary.compact_range()
        for index in self.indexes.values():
            index.compact()

    def quarantined_indexes(self) -> list[str]:
        """Attributes whose stand-alone index has quarantined tables.

        Only meaningful under ``on_corruption="quarantine"``; the embedded
        kind reports through the primary table instead (its structures are
        advisory and degrade in place rather than quarantining).
        """
        self._check_open()
        damaged = []
        for attribute, index in self.indexes.items():
            index_db = getattr(index, "index_db", None)
            if index_db is not None and index_db.quarantined_tables():
                damaged.append(attribute)
        return sorted(damaged)

    def rebuild_index(self, attribute: str) -> int:
        """Rebuild ``attribute``'s stand-alone index from the primary table.

        The primary record store is authoritative: a quarantined (or merely
        suspect) index table can always be regenerated by replaying every
        live record through the index's own write path.  The old index
        database is discarded wholesale — bad blocks and all — and a fresh
        one is built in its place, so the rebuilt index answers queries
        exactly as an index that had never been corrupted.

        Returns the number of records replayed.  Embedded/NOINDEX
        attributes have nothing to rebuild and return 0.
        """
        self._check_open()
        index = self._index_for(attribute)
        spec = self._index_specs.get(attribute)
        if spec is None:
            return 0  # embedded or noindex: lives inside the primary table
        _kind, table_vfs, table_name, index_options = spec
        index.index_db.close()
        for name in list(table_vfs.list_dir(table_name + "/")):
            table_vfs.delete_if_exists(name)
        index.index_db = DB.open(table_vfs, table_name, index_options)
        replayed = 0
        for key_bytes, value, seq in self.primary.scan_with_seq():
            index.on_put(key_bytes, decode_document(value), seq)
            replayed += 1
        index.flush()
        return replayed

    def heal_indexes(self) -> dict[str, int]:
        """Rebuild every quarantined stand-alone index; see :meth:`rebuild_index`.

        Returns ``{attribute: records_replayed}`` for each index healed.
        """
        return {attribute: self.rebuild_index(attribute)
                for attribute in self.quarantined_indexes()}

    def checkpoint(self, dest_vfs: VFS, name: str = "data") -> int:
        """Copy the primary table and every index table to ``dest_vfs``.

        Table names follow :meth:`open`'s layout, so the checkpoint opens
        with ``SecondaryIndexedDB.open(dest_vfs, name, same_indexes)``.
        Returns the total number of files copied.
        """
        self._check_open()
        copied = self.primary.checkpoint(dest_vfs, f"{name}/primary")
        for attribute, index in self.indexes.items():
            index_db = getattr(index, "index_db", None)
            if index_db is None:
                continue
            index.flush()
            copied += index_db.checkpoint(
                dest_vfs, f"{name}/index-{index.kind.value}-{attribute}")
        return copied

    def verify_integrity(self) -> dict[str, Any]:
        """Offline checker over the primary table and every index table.

        Returns ``{"primary" | "index:attr": IntegrityReport}``; all
        reports ``.ok`` means every block checksum, table reference and
        manifest entry verified.
        """
        self._check_open()
        reports: dict[str, Any] = {"primary": self.primary.verify_integrity()}
        for attribute, index in self.indexes.items():
            index_db = getattr(index, "index_db", None)
            if index_db is not None:
                reports[f"index:{attribute}"] = index_db.verify_integrity()
        return reports

    def size_breakdown(self) -> dict[str, int]:
        """Bytes per table — the paper's Figure 8a decomposition.

        The Embedded index reports 0 here because its structures live
        inside the primary table's files ("more space efficient ... close
        to having no index").
        """
        breakdown = {"primary": self.primary.approximate_size()}
        for attribute, index in self.indexes.items():
            breakdown[f"index:{attribute}"] = index.size_bytes()
        return breakdown

    def total_size(self) -> int:
        return sum(self.size_breakdown().values())

    def io_stats(self) -> dict[str, Any]:
        """Per-table I/O meters plus validation-GET counters."""
        stats: dict[str, Any] = {"primary": self.primary.vfs.stats}
        for attribute, index in self.indexes.items():
            index_db = getattr(index, "index_db", None)
            if index_db is not None:
                stats[f"index:{attribute}"] = index_db.vfs.stats
        stats["validation_gets"] = self.checker.validation_gets
        return stats

    def close(self) -> None:
        if self._closed:
            return
        for index in self.indexes.values():
            index.close()
        self.primary.close()
        self._closed = True

    def __enter__(self) -> "SecondaryIndexedDB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            from repro.lsm.errors import DBClosedError

            raise DBClosedError("database is closed")
