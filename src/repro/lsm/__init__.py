"""A LevelDB-style LSM-tree storage engine, written from scratch in Python.

This subpackage is the substrate on which the paper's five secondary-index
techniques are implemented.  It mirrors the architecture of Google's LevelDB
(the base system of the paper's LevelDB++):

* an in-memory **MemTable** backed by a skip list (:mod:`repro.lsm.memtable`),
* a **write-ahead log** with CRC-protected, block-fragmented records
  (:mod:`repro.lsm.wal`),
* immutable **SSTables** partitioned into prefix-compressed data blocks, with
  a filter meta block (bloom filters), secondary filter/zone-map meta blocks
  (the LevelDB++ extension of the paper's Figure 3), an index block and a
  footer (:mod:`repro.lsm.sstable`),
* **leveled compaction** with round-robin key-range pointers and 10x level
  fan-out (:mod:`repro.lsm.compaction`),
* a versioned **manifest** for crash-consistent metadata
  (:mod:`repro.lsm.version`, :mod:`repro.lsm.manifest`), and
* a **virtual filesystem** that meters every block read and write so that
  experiments report deterministic I/O counts (:mod:`repro.lsm.vfs`), plus a
  **fault-injecting** variant that simulates power loss and torn writes for
  crash-recovery drills (:mod:`repro.lsm.faults`).

The public entry point is :class:`repro.lsm.db.DB`.
"""

from repro.lsm.db import DB
from repro.lsm.errors import (
    CorruptionError,
    FaultInjectedError,
    InvalidArgumentError,
    LSMError,
    SimulatedCrashError,
)
from repro.lsm.faults import FaultInjectingVFS
from repro.lsm.options import Options
from repro.lsm.vfs import IOStats, LocalVFS, MemoryVFS

__all__ = [
    "DB",
    "CorruptionError",
    "FaultInjectedError",
    "FaultInjectingVFS",
    "InvalidArgumentError",
    "IOStats",
    "LSMError",
    "LocalVFS",
    "MemoryVFS",
    "Options",
    "SimulatedCrashError",
]
