"""The workload runner's measurement plumbing."""

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.options import Options
from repro.workloads.generator import MIXED_RATIOS, MixedWorkload
from repro.workloads.ops import Delete, Get, Lookup, Put, RangeLookup
from repro.workloads.runner import WorkloadRunner


@pytest.fixture
def db():
    options = Options(block_size=1024, sstable_target_size=4 * 1024,
                      memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    handle = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY}, options=options)
    yield handle
    handle.close()


class TestRunner:
    def test_all_operation_types_apply(self, db):
        ops = [
            Put("t1", {"UserID": "u1"}),
            Put("t2", {"UserID": "u2"}),
            Get("t1"),
            Lookup("UserID", "u1", 5),
            RangeLookup("UserID", "u1", "u2", 5),
            Delete("t2"),
        ]
        report = WorkloadRunner(db).run(ops)
        assert report.op_counts == {"put": 2, "get": 1, "lookup": 1,
                                    "range_lookup": 1, "delete": 1}
        assert report.total_ops == 6
        assert db.get("t1") is not None
        assert db.get("t2") is None

    def test_unknown_operation_rejected(self, db):
        with pytest.raises(TypeError):
            WorkloadRunner(db).run([object()])

    def test_mean_micros(self, db):
        report = WorkloadRunner(db).run(
            [Put(f"t{i}", {"UserID": "u1"}) for i in range(50)])
        assert report.mean_micros() > 0
        assert report.mean_micros("put") == report.mean_micros()
        assert report.mean_micros("get") == 0.0

    def test_sampling_interval(self, db):
        ops = [Put(f"t{i}", {"UserID": "u1"}) for i in range(100)]
        report = WorkloadRunner(db, sample_every=25).run(ops)
        # 4 interval samples + 1 final sample
        assert len(report.samples) == 5
        assert [s.ops_done for s in report.samples] == [25, 50, 75, 100, 100]

    def test_samples_monotone_io(self, db):
        workload = MixedWorkload(num_operations=1500,
                                 ratios=MIXED_RATIOS["write_heavy"], seed=2)
        report = WorkloadRunner(db, sample_every=300).run(
            workload.operations())
        writes = [s.primary_write_blocks for s in report.samples]
        assert writes == sorted(writes)
        assert writes[-1] > 0
        index_writes = [s.index_write_blocks for s in report.samples]
        assert index_writes == sorted(index_writes)
        assert index_writes[-1] > 0

    def test_compaction_blocks_tracked(self, db):
        workload = MixedWorkload(num_operations=2500,
                                 ratios=MIXED_RATIOS["write_heavy"], seed=3)
        report = WorkloadRunner(db, sample_every=500).run(
            workload.operations())
        assert report.samples[-1].primary_compaction_blocks > 0
        assert report.samples[-1].index_compaction_blocks > 0

    def test_per_op_io_attribution(self, db):
        """Figures 13-15 depend on reads being attributed to the op type
        that caused them."""
        ops = [Put(f"t{i:04d}", {"UserID": f"u{i % 5}"}) for i in range(600)]
        report = WorkloadRunner(db).run(ops)
        db.flush()
        report2 = WorkloadRunner(db).run(
            [Get(f"t{i:04d}") for i in range(0, 600, 10)]
            + [Lookup("UserID", "u1", 5) for _ in range(5)])
        # Reads from GETs and LOOKUPs land in their own buckets; writes
        # belong to the PUT phase only.
        assert report2.read_blocks_by_op.get("get", 0) > 0
        assert report2.read_blocks_by_op.get("lookup", 0) > 0
        assert report2.write_blocks_by_op.get("get", 0) == 0
        assert report.write_blocks_by_op.get("put", 0) > 0
