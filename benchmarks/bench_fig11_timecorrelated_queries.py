"""Figure 11: queries on the time-correlated CreationTime index.

Here zone maps shine: the Embedded index prunes whole files via the
manifest-resident file-level zone maps and answers RANGELOOKUPs with disk
cost close to K — competitive with (often beating) the Stand-Alone
indexes, which is the paper's headline argument for the Embedded design.
Eager is included, as in the paper's Figure 11.
"""

import pytest

from harness import ALL_KINDS, ResultTable, quartiles, timed_queries

from repro.core.base import IndexKind

_TOP_KS = [5, 10, None]
# The paper uses 1- and 10-minute windows against a dataset spanning weeks;
# our 6000-tweet dataset spans ~3 minutes, so the windows scale to 3 s and
# 15 s (~2% and ~9% of the time axis, similar selectivity ratios).
_WINDOW_SECONDS = [3, 15]
_QUERIES_PER_CONFIG = 20
_RESULTS: dict = {}

_LOOKUP_TABLE = ResultTable(
    "fig11a_lookup",
    "Figure 11a — CreationTime LOOKUP latency (box quartiles) and I/O",
    ["variant", "top_k", "p25_us", "median_us", "p75_us",
     "read_blocks_per_lookup"])
_RANGE_TABLE = ResultTable(
    "fig11bc_rangelookup",
    "Figure 11b/c — CreationTime RANGELOOKUP (box quartiles) vs "
    "selectivity/top-K",
    ["variant", "window_seconds", "top_k", "p25_us", "median_us", "p75_us",
     "read_blocks_per_query"])


def _total_reads(db):
    total = db.primary.vfs.stats.read_blocks
    seen = {id(db.primary.vfs)}
    for index in db.indexes.values():
        index_db = getattr(index, "index_db", None)
        if index_db is not None and id(index_db.vfs) not in seen:
            seen.add(id(index_db.vfs))
            total += index_db.vfs.stats.read_blocks
    return total


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_fig11_timecorrelated_queries(benchmark, static_cache, kind):
    db, workload = static_cache.get(kind)
    lookups = list(workload.lookups(_QUERIES_PER_CONFIG, "CreationTime"))

    measurements = {}
    for top_k in _TOP_KS:
        reads_before = _total_reads(db)
        latencies, seconds = timed_queries(
            [(lambda op=op, k=top_k: db.lookup("CreationTime", op.value, k))
             for op in lookups])
        p25, median, p75 = quartiles(latencies)
        measurements[("lookup", top_k)] = {
            "us": seconds * 1e6 / len(lookups),
            "reads": (_total_reads(db) - reads_before) / len(lookups),
        }
        _LOOKUP_TABLE.add(
            kind.value, "all" if top_k is None else top_k,
            f"{p25:.0f}", f"{median:.0f}", f"{p75:.0f}",
            f"{measurements[('lookup', top_k)]['reads']:.1f}")

    for window in _WINDOW_SECONDS:
        ranges = list(workload.time_range_lookups(_QUERIES_PER_CONFIG,
                                                  window / 60.0))
        for top_k in _TOP_KS:
            reads_before = _total_reads(db)
            latencies, seconds = timed_queries(
                [(lambda op=op, k=top_k:
                  db.range_lookup("CreationTime", op.low, op.high, k))
                 for op in ranges])
            p25, median, p75 = quartiles(latencies)
            measurements[("range", window, top_k)] = {
                "us": seconds * 1e6 / len(ranges),
                "reads": (_total_reads(db) - reads_before) / len(ranges),
            }
            _RANGE_TABLE.add(
                kind.value, window, "all" if top_k is None else top_k,
                f"{p25:.0f}", f"{median:.0f}", f"{p75:.0f}",
                f"{measurements[('range', window, top_k)]['reads']:.1f}")

    benchmark.pedantic(
        lambda: [db.range_lookup("CreationTime", op.low, op.high, 10)
                 for op in list(workload.time_range_lookups(10, 0.05))],
        rounds=2, iterations=1)

    _RESULTS[kind] = measurements
    if len(_RESULTS) == len(ALL_KINDS):
        _finalize()


def _finalize():
    _LOOKUP_TABLE.write()
    _RANGE_TABLE.write()
    res = _RESULTS
    embedded = res[IndexKind.EMBEDDED]
    noindex = res[IndexKind.NOINDEX]

    # Zone maps prune aggressively on a time-correlated attribute: range
    # I/O is a small fraction of the NoIndex full scan.
    assert embedded[("range", 3, 10)]["reads"] < \
        noindex[("range", 3, 10)]["reads"] / 5
    # Embedded is competitive with the stand-alone variants here (within
    # a small factor on I/O), unlike on UserID.
    for kind in (IndexKind.LAZY, IndexKind.COMPOSITE):
        standalone_reads = res[kind][("range", 3, 10)]["reads"]
        assert embedded[("range", 3, 10)]["reads"] < \
            max(4 * standalone_reads, standalone_reads + 12)
    # Every index beats NoIndex for time-window queries.
    for kind in (IndexKind.EMBEDDED, IndexKind.EAGER, IndexKind.LAZY,
                 IndexKind.COMPOSITE):
        assert res[kind][("range", 3, 10)]["us"] < \
            noindex[("range", 3, 10)]["us"]
