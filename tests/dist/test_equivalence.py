"""Equivalence properties pinning the refactor's compatibility promises.

``ShardedDB(replication_factor=1)`` must answer every query — GET,
LOOKUP, RANGELOOKUP, SCAN — identically to a single-node
``SecondaryIndexedDB`` over the same operation history, for all five
index kinds; raising the replication factor must not change any answer;
and the elastic ring must route exactly like the static hash ring it
replaced until the first split.
"""

import random

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.dist.cluster import ShardedDB
from repro.dist.partitioner import HashPartitioner, SplitHashRing
from repro.lsm.options import Options

ALL_KINDS = [IndexKind.EAGER, IndexKind.LAZY, IndexKind.COMPOSITE,
             IndexKind.EMBEDDED, IndexKind.NOINDEX]


def _options():
    return Options(block_size=512, sstable_target_size=2 * 1024,
                   memtable_budget=2 * 1024, l1_target_size=8 * 1024)


def _apply_workload(store, seed, num_ops, num_keys=120, num_users=8):
    rng = random.Random(seed)
    for i in range(num_ops):
        key = f"t{rng.randrange(num_keys):05d}"
        if rng.random() < 0.15:
            store.delete(key)
        else:
            store.put(key, {"UserID": f"u{rng.randrange(num_users):03d}",
                            "Body": "x" * rng.randrange(20)})


def _answers(store, num_keys=120, num_users=8):
    """Every query the store can answer, as comparable values.

    Lookup/range results compare as ordered ``(key, document)`` lists:
    both stores see the same serial operation history, so their recency
    orders must agree even though absolute seqs differ (the cluster
    spends extra sequence numbers on index maintenance).
    """
    answers = {"scan": list(store.scan())}
    answers["gets"] = [store.get(f"t{i:05d}") for i in range(num_keys)]
    for u in range(num_users):
        value = f"u{u:03d}"
        answers[f"lookup:{value}"] = [
            (r.key, r.document)
            for r in store.lookup("UserID", value, early_termination=False)]
        answers[f"lookup3:{value}"] = [
            (r.key, r.document)
            for r in store.lookup("UserID", value, k=3)]
    for lo, hi in (("u000", "u003"), ("u002", "u007"), ("u000", "u999")):
        answers[f"range:{lo}:{hi}"] = [
            (r.key, r.document)
            for r in store.range_lookup("UserID", lo, hi,
                                        early_termination=False)]
    return answers


class TestSingleCopyEquivalence:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.name)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_cluster_matches_single_node_for_every_kind(self, kind, seed):
        single = SecondaryIndexedDB.open_memory(
            indexes={"UserID": kind}, options=_options())
        cluster = ShardedDB.open_memory(
            num_shards=3, replication_factor=1,
            local_indexes={"UserID": kind}, options=_options())
        try:
            _apply_workload(single, seed, 220)
            _apply_workload(cluster, seed, 220)
            assert _answers(cluster) == _answers(single)
        finally:
            single.close()
            cluster.close()

    @pytest.mark.parametrize("seed", [0, 7])
    def test_replication_factor_does_not_change_answers(self, seed):
        rf1 = ShardedDB.open_memory(
            num_shards=3, replication_factor=1,
            local_indexes={"UserID": IndexKind.LAZY}, options=_options())
        rf3 = ShardedDB.open_memory(
            num_shards=3, replication_factor=3,
            local_indexes={"UserID": IndexKind.LAZY}, options=_options())
        try:
            _apply_workload(rf1, seed, 220)
            _apply_workload(rf3, seed, 220)
            assert _answers(rf3) == _answers(rf1)
        finally:
            rf1.close()
            rf3.close()

    def test_global_index_equivalent_under_replication(self):
        rf1 = ShardedDB.open_memory(num_shards=3, replication_factor=1,
                                    global_indexes=("UserID",),
                                    options=_options())
        rf2 = ShardedDB.open_memory(num_shards=3, replication_factor=2,
                                    global_indexes=("UserID",),
                                    options=_options())
        try:
            _apply_workload(rf1, 3, 180)
            _apply_workload(rf2, 3, 180)
            assert _answers(rf2) == _answers(rf1)
        finally:
            rf1.close()
            rf2.close()


class TestRoutingEquivalence:
    def test_unsplit_ring_routes_exactly_like_the_static_ring(self):
        for num_shards in (1, 2, 4, 7):
            static = HashPartitioner(num_shards)
            elastic = SplitHashRing(num_shards)
            for i in range(3000):
                key = f"key{i}".encode()
                assert elastic.shard_of(key) == static.shard_of(key)

    def test_cluster_places_records_where_the_static_ring_says(self):
        static = HashPartitioner(4)
        with ShardedDB.open_memory(num_shards=4,
                                   options=_options()) as cluster:
            for i in range(80):
                cluster.put(f"k{i:03d}", {"n": i})
            cluster.flush()
            for i in range(80):
                key = f"k{i:03d}".encode()
                home = static.shard_of(key)
                for shard_id, group in enumerate(cluster.data_shards):
                    found = group.primary.get_with_seq(key)
                    if shard_id == home:
                        assert found is not None
                    else:
                        assert found is None
