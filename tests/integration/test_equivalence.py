"""Randomized equivalence: every index variant vs a brute-force oracle.

The defining correctness property of the paper's system: all five
techniques answer LOOKUP and RANGELOOKUP identically (they differ only in
cost).  A randomized stream of PUTs, updates and DELs is applied through
the facade, and exhaustive queries are compared against an in-memory model.
"""

import random

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.options import Options
from repro.lsm.zonemap import encode_attribute

ALL_KINDS = [IndexKind.EMBEDDED, IndexKind.EAGER, IndexKind.LAZY,
             IndexKind.COMPOSITE, IndexKind.NOINDEX]


def _options():
    return Options(block_size=1024, sstable_target_size=4 * 1024,
                   memtable_budget=4 * 1024, l1_target_size=16 * 1024)


def _apply_random_ops(db, seed, num_ops, num_keys=400, num_users=20):
    rng = random.Random(seed)
    oracle = {}
    for i in range(num_ops):
        key = f"t{rng.randrange(num_keys):05d}"
        roll = rng.random()
        if roll < 0.10:
            db.delete(key)
            oracle.pop(key, None)
        else:
            doc = {"UserID": f"u{rng.randrange(num_users):03d}",
                   "CreationTime": i,
                   "Body": "x" * rng.randrange(30)}
            seq = db.put(key, doc)
            oracle[key] = (doc, seq)
    return oracle


def _oracle_lookup(oracle, attribute, value):
    matches = [(seq, key) for key, (doc, seq) in oracle.items()
               if doc.get(attribute) == value]
    return sorted(matches, reverse=True)


def _oracle_range(oracle, attribute, low, high):
    low_encoded = encode_attribute(low)
    high_encoded = encode_attribute(high)
    matches = []
    for key, (doc, seq) in oracle.items():
        attr_value = doc.get(attribute)
        if attr_value is None:
            continue
        if low_encoded <= encode_attribute(attr_value) <= high_encoded:
            matches.append((seq, key))
    return sorted(matches, reverse=True)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
class TestLookupEquivalence:
    def test_exhaustive_lookups(self, kind):
        db = SecondaryIndexedDB.open_memory(
            indexes={"UserID": kind, "CreationTime": kind},
            options=_options())
        oracle = _apply_random_ops(db, seed=101, num_ops=2000)
        for user_index in range(20):
            value = f"u{user_index:03d}"
            got = [(r.seq, r.key) for r in db.lookup(
                "UserID", value, early_termination=False)]
            assert got == _oracle_lookup(oracle, "UserID", value)
        db.close()

    def test_finite_k_exhaustive_scan(self, kind):
        db = SecondaryIndexedDB.open_memory(
            indexes={"UserID": kind}, options=_options())
        oracle = _apply_random_ops(db, seed=102, num_ops=1500)
        for k in (1, 3, 10):
            for user_index in range(0, 20, 4):
                value = f"u{user_index:03d}"
                got = [(r.seq, r.key) for r in db.lookup(
                    "UserID", value, k=k, early_termination=False)]
                assert got == _oracle_lookup(oracle, "UserID", value)[:k]
        db.close()

    def test_range_lookups(self, kind):
        db = SecondaryIndexedDB.open_memory(
            indexes={"UserID": kind, "CreationTime": kind},
            options=_options())
        oracle = _apply_random_ops(db, seed=103, num_ops=1500)
        got = [(r.seq, r.key) for r in db.range_lookup(
            "UserID", "u005", "u012", early_termination=False)]
        assert got == _oracle_range(oracle, "UserID", "u005", "u012")
        got = [(r.seq, r.key) for r in db.range_lookup(
            "CreationTime", 500, 900, early_termination=False)]
        assert got == _oracle_range(oracle, "CreationTime", 500, 900)
        db.close()

    def test_early_termination_results_are_valid_and_ordered(self, kind):
        """With early termination (the paper's default), finite-K answers
        must still be correctly ordered live matches — the approximation
        only concerns *which* of the oldest qualifying records appear."""
        db = SecondaryIndexedDB.open_memory(
            indexes={"UserID": kind}, options=_options())
        oracle = _apply_random_ops(db, seed=104, num_ops=1500)
        for user_index in range(0, 20, 3):
            value = f"u{user_index:03d}"
            results = db.lookup("UserID", value, k=5)
            truth = _oracle_lookup(oracle, "UserID", value)
            assert len(results) == min(5, len(truth))
            seqs = [r.seq for r in results]
            assert seqs == sorted(seqs, reverse=True)
            truth_map = dict((key, seq) for seq, key in truth)
            for result in results:
                assert truth_map.get(result.key) == result.seq
        db.close()


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_equivalence_after_full_compaction(kind):
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": kind}, options=_options())
    oracle = _apply_random_ops(db, seed=105, num_ops=1200)
    db.compact_all()
    for user_index in range(0, 20, 2):
        value = f"u{user_index:03d}"
        got = [(r.seq, r.key) for r in db.lookup(
            "UserID", value, early_termination=False)]
        assert got == _oracle_lookup(oracle, "UserID", value)
        # Post-compaction, even paper-default early termination is exact
        # for top-K lookups.
        got_k = [(r.seq, r.key) for r in db.lookup("UserID", value, k=4)]
        assert got_k == _oracle_lookup(oracle, "UserID", value)[:4]
    db.close()
