"""Caches: a block cache for decompressed blocks and an OS buffer-cache model.

Two distinct caches appear in the paper:

* LevelDB's optional **block cache** holds decompressed data blocks.  The
  paper ran with it *disabled* ("No block cache was used"), so
  :class:`LRUCache` defaults to off, but it is available for the cache-size
  ablation bench.

* The **OS buffer cache** caches raw device blocks and is responsible for
  the inflection points in Figure 12: once the database outgrows RAM, GETs
  start missing the page cache, and every compaction rewrites files at new
  offsets which invalidates previously cached pages.
  :class:`BufferCacheSimulator` wraps a VFS and models exactly that —
  page-granular LRU with whole-file invalidation on delete — serving hits
  without charging the I/O meters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.lsm.vfs import (
    DEVICE_BLOCK_SIZE,
    Category,
    RandomAccessFile,
    VFS,
    WritableFile,
)


class LRUCache:
    """Size-bounded LRU map used as the (decompressed-)block cache."""

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity = capacity_bytes
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: Hashable, value: Any, size: int) -> None:
        if self.capacity <= 0 or size > self.capacity:
            # The new value is uncacheable, but a previously cached value
            # under the same key is now stale and must not be served.
            stale = self._entries.pop(key, None)
            if stale is not None:
                self._used -= stale[1]
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._used -= old[1]
        self._entries[key] = (value, size)
        self._used += size
        while self._used > self.capacity:
            _evicted_key, (_value, evicted_size) = self._entries.popitem(last=False)
            self._used -= evicted_size

    def evict(self, key: Hashable) -> bool:
        """Drop ``key`` if cached (a poisoned or stale entry); True if it was.

        A block whose re-read failed CRC must never be served from cache
        again — not even after the underlying file heals — so corruption
        handling evicts eagerly rather than waiting for LRU pressure.
        """
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._used -= entry[1]
        return True

    def evict_file(self, file_number: int) -> int:
        """Drop every cached block of one table file; returns the count.

        Block-cache keys are ``(file_number, block_offset)`` tuples; used
        when a whole table is quarantined so none of its blocks — possibly
        decoded from rotten bytes before detection — survive in cache.
        """
        stale = [key for key in self._entries
                 if isinstance(key, tuple) and key and key[0] == file_number]
        for key in stale:
            self._used -= self._entries.pop(key)[1]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used


class BufferCacheSimulator(VFS):
    """VFS wrapper modelling the operating system's page cache.

    Reads whose device pages are all resident are served without charging
    the underlying I/O meters (a "RAM hit"); missing pages are charged and
    then inserted.  Writes populate the cache (a freshly written page is hot
    in a real page cache too).  Deleting a file drops all of its pages —
    this is the compaction-invalidates-the-cache effect the paper discusses
    around Figure 12.
    """

    def __init__(self, base: VFS, capacity_bytes: int) -> None:
        super().__init__()
        self.base = base
        self.stats = base.stats  # shared meters: misses charge the base VFS
        self._pages: OrderedDict[tuple[str, int], None] = OrderedDict()
        self._capacity_pages = max(0, capacity_bytes // DEVICE_BLOCK_SIZE)
        self.hits = 0
        self.misses = 0

    # -- page bookkeeping ---------------------------------------------------

    def _touch(self, name: str, page: int) -> bool:
        """Mark ``(name, page)`` accessed; returns True if it was resident."""
        key = (name, page)
        if key in self._pages:
            self._pages.move_to_end(key)
            return True
        if self._capacity_pages > 0:
            self._pages[key] = None
            while len(self._pages) > self._capacity_pages:
                self._pages.popitem(last=False)
        return False

    def _drop_file(self, name: str) -> None:
        stale = [key for key in self._pages if key[0] == name]
        for key in stale:
            del self._pages[key]

    def invalidate_file(self, name: str) -> None:
        """Drop every resident page of ``name`` (corruption containment).

        When a table is quarantined its pages may hold rotten bytes; a
        later re-read must go to the device, not be served "from RAM".
        """
        self._drop_file(name)

    def _access(self, name: str, offset: int, length: int,
                category: Category, populate_only: bool) -> int:
        """Process an access; returns the number of *missing* pages.

        ``populate_only`` (writes) inserts pages without counting hit/miss.
        """
        if length <= 0:
            return 0
        first = offset // DEVICE_BLOCK_SIZE
        last = (offset + length - 1) // DEVICE_BLOCK_SIZE
        missing = 0
        for page in range(first, last + 1):
            resident = self._touch(name, page)
            if populate_only:
                continue
            if resident:
                self.hits += 1
            else:
                self.misses += 1
                missing += 1
        return missing

    # -- VFS interface ------------------------------------------------------

    def create(self, name: str) -> WritableFile:
        return _CachedWritable(self, name, self.base.create(name))

    def open_random(self, name: str) -> RandomAccessFile:
        return _CachedRandomAccess(self, name, self.base.open_random(name))

    def exists(self, name: str) -> bool:
        return self.base.exists(name)

    def delete(self, name: str) -> None:
        self.base.delete(name)
        self._drop_file(name)

    def rename(self, old: str, new: str) -> None:
        self.base.rename(old, new)
        self._drop_file(old)
        self._drop_file(new)

    def list_dir(self, prefix: str = "") -> list[str]:
        return self.base.list_dir(prefix)

    def file_size(self, name: str) -> int:
        return self.base.file_size(name)

    def reset_stats(self) -> None:
        """Start a fresh measurement epoch: zero I/O meters and hit/miss.

        Resident pages deliberately survive — a real OS page cache stays
        warm across an experiment's measurement boundary; only the
        counters are epoch-scoped.
        """
        self.base.reset_stats()
        self.stats = self.base.stats
        self.hits = 0
        self.misses = 0


class _CachedWritable(WritableFile):
    def __init__(self, cache: BufferCacheSimulator, name: str,
                 base: WritableFile) -> None:
        self._cache = cache
        self._name = name
        self._base = base

    def append(self, data: bytes, category: Category = Category.OTHER) -> None:
        offset = self._base.size
        self._base.append(data, category)
        self._cache._access(self._name, offset, len(data), category,
                            populate_only=True)

    def flush(self) -> None:
        self._base.flush()

    def sync(self) -> None:
        self._base.sync()

    def close(self) -> None:
        self._base.close()

    @property
    def size(self) -> int:
        return self._base.size


class _CachedRandomAccess(RandomAccessFile):
    def __init__(self, cache: BufferCacheSimulator, name: str,
                 base: RandomAccessFile) -> None:
        self._cache = cache
        self._name = name
        self._base = base

    def read_at(self, offset: int, length: int,
                category: Category = Category.DATA,
                charge: bool = True) -> bytes:
        if not charge:
            return self._base.read_at(offset, length, category, charge=False)
        missing = self._cache._access(self._name, offset, length, category,
                                      populate_only=False)
        if missing == 0:
            # Fully resident: serve "from RAM" — no device I/O charged.
            return self._base.read_at(offset, length, category, charge=False)
        data = self._base.read_at(offset, length, category, charge=False)
        self._cache.stats.record_read(missing * DEVICE_BLOCK_SIZE, category)
        return data

    def close(self) -> None:
        self._base.close()

    @property
    def size(self) -> int:
        return self._base.size
