"""Helpers shared by the corruption-survival drills.

Kept out of ``conftest.py`` so test modules can import them directly
(the test tree is not a package; pytest puts this directory on
``sys.path``).
"""

from __future__ import annotations

from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectingVFS
from repro.lsm.options import Options


def corruption_options(**overrides) -> Options:
    """Tiny multi-table geometry, compression off, quarantine policy."""
    defaults = dict(
        block_size=1024,
        sstable_target_size=4 * 1024,
        memtable_budget=4 * 1024,
        l1_target_size=16 * 1024,
        compression="none",
        on_corruption="quarantine",
        read_retry_backoff_seconds=0.0,
    )
    defaults.update(overrides)
    return Options(**defaults)


def populate(db: DB, rows: int = 300) -> dict[bytes, bytes]:
    """Write ``rows`` records, flush, and return the expected contents."""
    expected = {}
    for i in range(rows):
        key = f"k{i:04d}".encode()
        value = f"value-{i:04d}".encode() * 3
        db.put(key, value)
        expected[key] = value
    db.flush()
    return expected


def table_files(vfs: FaultInjectingVFS, name: str = "db") -> list[str]:
    return sorted(n for n in vfs.list_dir(name + "/") if n.endswith(".ldb"))


def wal_files(vfs: FaultInjectingVFS, name: str = "db") -> list[str]:
    return sorted(n for n in vfs.list_dir(name + "/") if n.endswith(".log"))
