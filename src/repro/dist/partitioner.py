"""Partitioners: deciding which shard owns a key.

*Hash* partitioning (stable blake2b modulo a fixed shard count) is what
the paper's referenced systems use for primary keys (DynamoDB, Riak,
Cassandra) and for global-index partition keys (DynamoDB GSIs) — perfect
balance, but value ranges scatter across every shard.

*Range* partitioning (HBase/Spanner style: sorted split points) keeps
adjacent values on the same shard, so a global index partitioned by range
can answer RANGELOOKUPs from only the overlapping shards — at the price
of hand-chosen (or rebalanced) boundaries and skew exposure.
"""

from __future__ import annotations

import bisect
import hashlib


class HashPartitioner:
    """Stable hash partitioning of byte keys over ``num_shards`` shards."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, key: bytes) -> int:
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_shards

    def shards_overlapping(self, low: bytes, high: bytes) -> list[int]:
        """Hashing scatters ranges: every shard may hold in-range keys."""
        return list(range(self.num_shards))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashPartitioner(num_shards={self.num_shards})"


class RangePartitioner:
    """Split-point partitioning: shard *i* owns ``[splits[i-1], splits[i])``.

    ``split_points`` must be sorted encoded byte keys; ``len(splits) + 1``
    shards result.  Keys below the first split go to shard 0, keys at or
    above the last to the final shard.
    """

    def __init__(self, split_points: list[bytes]) -> None:
        if sorted(split_points) != list(split_points):
            raise ValueError("split points must be sorted")
        if len(set(split_points)) != len(split_points):
            raise ValueError("split points must be distinct")
        self.split_points = list(split_points)
        self.num_shards = len(split_points) + 1

    def shard_of(self, key: bytes) -> int:
        return bisect.bisect_right(self.split_points, key)

    def shards_overlapping(self, low: bytes, high: bytes) -> list[int]:
        """Only the shards whose intervals intersect ``[low, high]``."""
        if low > high:
            return []
        first = self.shard_of(low)
        last = self.shard_of(high)
        return list(range(first, last + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangePartitioner(num_shards={self.num_shards})"
