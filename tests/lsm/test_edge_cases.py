"""Engine edge cases: huge values, odd keys, block cache, stress shapes."""

import random

from repro.lsm.db import DB
from repro.lsm.options import Options


def _options(**overrides):
    base = dict(block_size=1024, sstable_target_size=4 * 1024,
                memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    base.update(overrides)
    return Options(**base)


class TestLargeValues:
    def test_value_larger_than_block(self):
        db = DB.open_memory(_options())
        big = bytes(range(256)) * 40  # 10 KiB >> 1 KiB blocks
        db.put(b"big", big)
        db.flush()
        assert db.get(b"big") == big
        db.close()

    def test_value_larger_than_sstable_target(self):
        db = DB.open_memory(_options())
        huge = b"payload" * 3000  # 21 KiB >> 4 KiB target
        db.put(b"huge", huge)
        db.put(b"small", b"x")
        db.compact_range()
        assert db.get(b"huge") == huge
        assert db.get(b"small") == b"x"
        db.close()

    def test_many_large_values_compact_correctly(self):
        db = DB.open_memory(_options())
        rng = random.Random(8)
        model = {}
        for i in range(60):
            key = f"k{i:03d}".encode()
            value = bytes(rng.randrange(256) for _ in range(2000))
            db.put(key, value)
            model[key] = value
        db.compact_range()
        assert dict(db.scan()) == model
        db.close()


class TestOddKeys:
    def test_empty_key(self):
        db = DB.open_memory(_options())
        db.put(b"", b"empty-key-value")
        db.flush()
        assert db.get(b"") == b"empty-key-value"
        assert dict(db.scan())[b""] == b"empty-key-value"
        db.close()

    def test_binary_keys_with_nulls_and_ff(self):
        db = DB.open_memory(_options())
        keys = [b"\x00", b"\x00\x00", b"\xff", b"\xff\xff", b"a\x00b",
                b"\x00\xff\x00"]
        for i, key in enumerate(keys):
            db.put(key, str(i).encode())
        db.flush()
        for i, key in enumerate(keys):
            assert db.get(key) == str(i).encode()
        assert [k for k, _v in db.scan()] == sorted(keys)
        db.close()

    def test_long_keys(self):
        db = DB.open_memory(_options())
        long_key = b"k" * 5000
        db.put(long_key, b"v")
        db.flush()
        assert db.get(long_key) == b"v"
        db.close()

    def test_adjacent_prefix_keys(self):
        db = DB.open_memory(_options())
        keys = [b"a" * n for n in range(1, 40)]
        for key in keys:
            db.put(key, key)
        db.compact_range()
        for key in keys:
            assert db.get(key) == key
        db.close()


class TestBlockCache:
    def test_cached_reads_still_correct(self):
        db = DB.open_memory(_options(block_cache_size=256 * 1024))
        for i in range(800):
            db.put(f"k{i:05d}".encode(), str(i).encode())
        db.flush()
        for _round in range(3):
            for i in range(0, 800, 13):
                assert db.get(f"k{i:05d}".encode()) == str(i).encode()
        cache = db.table_cache.block_cache
        assert cache is not None
        assert cache.hits > 0
        db.close()

    def test_cache_reduces_io(self):
        def run(cache_size):
            db = DB.open_memory(_options(block_cache_size=cache_size))
            for i in range(600):
                db.put(f"k{i:05d}".encode(), b"x" * 50)
            db.flush()
            before = db.vfs.stats.read_blocks
            for _round in range(4):
                for i in range(0, 600, 7):
                    db.get(f"k{i:05d}".encode())
            reads = db.vfs.stats.read_blocks - before
            db.close()
            return reads

        assert run(512 * 1024) < run(0)

    def test_cache_invalidation_by_file_identity(self):
        """Compaction outputs new file numbers: stale cache entries can
        never serve reads for new files."""
        db = DB.open_memory(_options(block_cache_size=256 * 1024))
        for i in range(400):
            db.put(f"k{i:05d}".encode(), b"v1" * 20)
        db.flush()
        for i in range(0, 400, 2):
            db.get(f"k{i:05d}".encode())  # warm cache
        for i in range(400):
            db.put(f"k{i:05d}".encode(), b"v2" * 20)
        db.compact_range()
        for i in range(0, 400, 7):
            assert db.get(f"k{i:05d}".encode()) == b"v2" * 20
        db.close()


class TestStressShapes:
    def test_single_hot_key_many_versions(self):
        db = DB.open_memory(_options())
        for i in range(3000):
            db.put(b"hot", f"version-{i}".encode())
        assert db.get(b"hot") == b"version-2999"
        db.compact_range()
        assert db.get(b"hot") == b"version-2999"
        entries = sum(meta.num_entries
                      for _lvl, meta in db.versions.current.all_files())
        assert entries == 1
        db.close()

    def test_sequential_then_reverse_writes(self):
        db = DB.open_memory(_options())
        for i in range(700):
            db.put(f"a{i:05d}".encode(), b"fwd")
        for i in range(699, -1, -1):
            db.put(f"b{i:05d}".encode(), b"rev")
        assert len(dict(db.scan())) == 1400
        db.close()

    def test_interleaved_flush_heavy(self):
        db = DB.open_memory(_options(memtable_budget=512))
        model = {}
        for i in range(400):
            key = f"k{i % 50:03d}".encode()
            value = f"v{i}".encode()
            db.put(key, value)
            model[key] = value
        assert dict(db.scan()) == model
        db.close()
