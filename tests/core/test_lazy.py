"""Stand-Alone Lazy Index: append-only fragments, compaction merging."""

from conftest import load_tweets, open_db

from repro.core.base import IndexKind
from repro.core.posting import decode_posting_list
from repro.lsm.keys import KIND_MERGE
from repro.lsm.zonemap import encode_attribute


class TestFragmentWrites:
    def test_put_issues_blind_fragment(self, index_options):
        """Example 1: PUT(u1, {t4}) without reading the existing list."""
        db = open_db(IndexKind.LAZY, index_options)
        db.put("t1", {"UserID": "u1"})
        index = db.indexes["UserID"]
        reads_before = index.index_db.vfs.stats.read_blocks
        db.put("t2", {"UserID": "u1"})
        assert index.index_db.vfs.stats.read_blocks == reads_before
        db.close()

    def test_fragments_scattered_then_merged(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        load_tweets(db, 400, users=4)
        index = db.indexes["UserID"]
        # Force everything into one level: fragments must fold into one
        # complete list.
        db.compact_all()
        fragments = index.index_db.fragments_by_level(encode_attribute("u1"))
        assert len(fragments) == 1
        _level, entries = fragments[0]
        postings = decode_posting_list(entries[0][2])
        live = [p for p in postings if not p.deleted]
        assert [p.key for p in live] == [
            f"t{i:05d}" for i in range(399, -1, -1) if i % 4 == 1]
        db.close()

    def test_memtable_fragment_is_merge_kind(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        db.put("t1", {"UserID": "u1"})
        index = db.indexes["UserID"]
        fragments = index.index_db.fragments_by_level(encode_attribute("u1"))
        assert fragments[0][0] == -1
        assert fragments[0][1][0][0] == KIND_MERGE
        db.close()

    def test_delete_writes_marker(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        db.put("t1", {"UserID": "u1"})
        db.put("t2", {"UserID": "u1"})
        db.delete("t1")
        assert [r.key for r in db.lookup("UserID", "u1")] == ["t2"]
        db.compact_all()
        assert [r.key for r in db.lookup("UserID", "u1")] == ["t2"]
        db.close()

    def test_reinsert_after_delete(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        db.put("t1", {"UserID": "u1"})
        db.delete("t1")
        db.put("t1", {"UserID": "u1"})
        assert [r.key for r in db.lookup("UserID", "u1")] == ["t1"]
        db.close()


class TestQueries:
    def test_lookup_newest_first(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        load_tweets(db, 60, users=6)
        results = db.lookup("UserID", "u3")
        assert [r.key for r in results] == [
            f"t{i:05d}" for i in range(59, -1, -1) if i % 6 == 3]
        db.close()

    def test_lookup_early_termination_visits_fewer_levels(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        load_tweets(db, 800, users=4)
        index = db.indexes["UserID"]
        index.levels_visited = 0
        db.lookup("UserID", "u1", k=2)
        early_levels = index.levels_visited
        index.levels_visited = 0
        db.lookup("UserID", "u1", k=2, early_termination=False)
        full_levels = index.levels_visited
        assert early_levels <= full_levels
        db.close()

    def test_update_invalidates_old_value(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        db.put("t1", {"UserID": "u1"})
        db.put("t1", {"UserID": "u2"})
        assert db.lookup("UserID", "u1") == []
        assert [r.key for r in db.lookup("UserID", "u2")] == ["t1"]
        db.close()

    def test_range_lookup(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        load_tweets(db, 50, users=10)
        results = db.range_lookup("UserID", "u3", "u5",
                                  early_termination=False)
        want = [f"t{i:05d}" for i in range(49, -1, -1) if i % 10 in (3, 4, 5)]
        assert [r.key for r in results] == want
        db.close()

    def test_range_lookup_with_updates_no_duplicates(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        db.put("t1", {"UserID": "u3"})
        db.put("t1", {"UserID": "u4"})  # moved within the queried range
        results = db.range_lookup("UserID", "u3", "u5",
                                  early_termination=False)
        assert [r.key for r in results] == ["t1"]
        assert results[0].document["UserID"] == "u4"
        db.close()

    def test_lookup_after_heavy_compaction(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        state = load_tweets(db, 600, users=3)
        load_tweets(db, 600, users=3)  # overwrite all: same docs again
        results = db.lookup("UserID", "u0", k=5)
        assert len(results) == 5
        assert all(state[r.key]["UserID"] == "u0" for r in results)
        db.close()

    def test_would_accept_prunes_validation_gets(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        load_tweets(db, 200, users=2)
        db.flush()
        before = db.checker.validation_gets
        db.lookup("UserID", "u1", k=3, early_termination=False)
        fetched = db.checker.validation_gets - before
        # 100 matches exist, but only a handful should be validated.
        assert fetched < 100
        db.close()
