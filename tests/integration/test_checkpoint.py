"""Checkpoints: consistent copies, isolated from later writes."""

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.checker import verify_integrity
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS


def _options(**overrides):
    base = dict(block_size=1024, sstable_target_size=4 * 1024,
                memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    base.update(overrides)
    return Options(**base)


class TestDBCheckpoint:
    def test_copy_opens_with_same_content(self):
        db = DB.open_memory(_options())
        for i in range(600):
            db.put(f"k{i:05d}".encode(), str(i).encode())
        dest = MemoryVFS()
        copied = db.checkpoint(dest, "backup")
        assert copied > 0
        restored = DB.open(dest, "backup", _options())
        assert dict(restored.scan()) == dict(db.scan())
        assert verify_integrity(restored).ok
        restored.close()
        db.close()

    def test_unflushed_memtable_included(self):
        db = DB.open_memory(_options(memtable_budget=10**6))
        db.put(b"only-in-memtable", b"v")
        dest = MemoryVFS()
        db.checkpoint(dest, "backup")
        restored = DB.open(dest, "backup", _options())
        assert restored.get(b"only-in-memtable") == b"v"
        restored.close()
        db.close()

    def test_later_writes_do_not_leak_into_copy(self):
        db = DB.open_memory(_options())
        for i in range(300):
            db.put(f"k{i:05d}".encode(), b"before")
        dest = MemoryVFS()
        db.checkpoint(dest, "backup")
        for i in range(300):
            db.put(f"k{i:05d}".encode(), b"after")
        db.put(b"new-key", b"after")
        db.compact_range()
        restored = DB.open(dest, "backup", _options())
        assert restored.get(b"k00000") == b"before"
        assert restored.get(b"new-key") is None
        restored.close()
        db.close()

    def test_copy_is_writable_independently(self):
        db = DB.open_memory(_options())
        for i in range(300):
            db.put(f"k{i:05d}".encode(), b"v")
        dest = MemoryVFS()
        db.checkpoint(dest, "backup")
        restored = DB.open(dest, "backup", _options())
        restored.put(b"copy-only", b"x")
        restored.compact_range()
        assert restored.get(b"copy-only") == b"x"
        assert db.get(b"copy-only") is None
        # Sequence numbers in the copy continue past the source's.
        assert restored.versions.last_sequence > 300
        restored.close()
        db.close()


class TestFacadeCheckpoint:
    @pytest.mark.parametrize(
        "kind", [IndexKind.EMBEDDED, IndexKind.LAZY, IndexKind.COMPOSITE],
        ids=lambda k: k.value)
    def test_checkpoint_with_indexes(self, kind):
        db = SecondaryIndexedDB.open_memory(
            indexes={"UserID": kind}, options=_options(), shared_vfs=True)
        for i in range(300):
            db.put(f"t{i:05d}", {"UserID": f"u{i % 5}"})
        dest = MemoryVFS()
        db.checkpoint(dest, "data")
        db.put("t99999", {"UserID": "u0"})  # after the checkpoint

        restored = SecondaryIndexedDB.open(
            dest, "data", {"UserID": kind}, _options())
        got = [r.key for r in restored.lookup("UserID", "u3",
                                              early_termination=False)]
        assert got == [f"t{i:05d}" for i in range(299, -1, -1) if i % 5 == 3]
        assert restored.get("t99999") is None
        restored.close()
        db.close()
