"""Fault injection and crash simulation on top of the metered VFS.

The paper's experiments assume an engine that survives month-long runs on
real disks, so the WAL/manifest recovery paths must hold up under power
loss, not just clean shutdowns.  :class:`FaultInjectingVFS` makes crashes a
first-class, deterministic test input:

* **Scheduled faults** — :meth:`~FaultInjectingVFS.schedule_write_error`
  makes the *N*-th mutating operation fail with
  :class:`~repro.lsm.errors.FaultInjectedError` (the ``EIO`` case);
  :meth:`~FaultInjectingVFS.schedule_crash` instead raises
  :class:`~repro.lsm.errors.SimulatedCrashError` and freezes the
  filesystem: every later operation fails the same way, so in-flight work
  unwinds exactly as on a kernel panic.

* **Durability tracking** — every file records how many of its bytes have
  been ``sync()``\\ ed.  :meth:`~FaultInjectingVFS.crash_image` snapshots
  what a post-crash disk would hold: synced prefixes always survive;
  un-synced appends are dropped (``unsynced="drop"``), kept up to a 4 KiB
  device-page boundary (``unsynced="torn"``, the half-written tail the
  WAL's per-fragment CRCs exist to detect), or kept whole
  (``unsynced="keep"``, the lucky case where the page cache drained first).
  Metadata operations (create/delete/rename) model a journaling filesystem:
  they are durable as soon as they are applied.

* **Crash-point enumeration** — :func:`count_mutations` runs a workload
  once to learn its deterministic operation schedule; iterating
  :func:`crash_points` and calling :func:`run_until_crash` then replays the
  workload, crashing before each operation in turn, for exhaustive
  recovery drills (see ``tests/property/test_crash_consistency.py``).

The wrapper is a complete :class:`~repro.lsm.vfs.VFS`, so a whole
:class:`~repro.lsm.db.DB` stack runs on it unmodified and I/O metering
keeps working.
"""

from __future__ import annotations

from typing import Callable

from repro.lsm.errors import (
    FaultInjectedError,
    NotFoundError,
    SimulatedCrashError,
)
from repro.lsm.vfs import (
    DEVICE_BLOCK_SIZE,
    Category,
    MemoryVFS,
    RandomAccessFile,
    VFS,
    WritableFile,
)

#: Modes for what happens to un-synced appended bytes at a crash.
UNSYNCED_MODES = ("drop", "torn", "keep")

Workload = Callable[[VFS], None]


class _FaultedFile:
    """Backing store for one file: its bytes plus the synced watermark."""

    __slots__ = ("data", "durable")

    def __init__(self) -> None:
        self.data = bytearray()
        self.durable = 0

    def surviving_length(self, unsynced: str) -> int:
        if unsynced == "keep":
            return len(self.data)
        if unsynced == "torn":
            # Whole 4 KiB device pages of the un-synced tail may have hit
            # the platter before power died; partial pages never survive.
            page_aligned = (len(self.data) // DEVICE_BLOCK_SIZE) \
                * DEVICE_BLOCK_SIZE
            return max(self.durable, min(page_aligned, len(self.data)))
        if unsynced == "drop":
            return self.durable
        raise ValueError(f"unknown unsynced mode: {unsynced!r}")


class FaultInjectingVFS(VFS):
    """In-memory VFS that can fail writes on schedule and simulate crashes.

    Mutating operations (create, append, sync, delete, rename) are counted;
    reads are free.  ``op_count`` after a fault-free run is therefore the
    number of enumerable crash points of a workload.
    """

    def __init__(self) -> None:
        super().__init__()
        self._files: dict[str, _FaultedFile] = {}
        self.op_count = 0
        self.crashed = False
        self._fail_at: int | None = None
        self._fail_mode = "crash"

    # -- fault scheduling ----------------------------------------------------

    def schedule_crash(self, at_op: int) -> None:
        """Crash the machine just before mutating operation ``at_op`` (1-based)."""
        if at_op < 1:
            raise ValueError("at_op is 1-based")
        self._fail_at = at_op
        self._fail_mode = "crash"

    def schedule_write_error(self, at_op: int) -> None:
        """Fail mutating operation ``at_op`` once; later operations succeed."""
        if at_op < 1:
            raise ValueError("at_op is 1-based")
        self._fail_at = at_op
        self._fail_mode = "error"

    def _mutate(self) -> None:
        """Gate every mutating operation: count it, maybe fault, maybe crash."""
        if self.crashed:
            raise SimulatedCrashError("filesystem is down (simulated crash)")
        self.op_count += 1
        if self._fail_at is not None and self.op_count == self._fail_at:
            self._fail_at = None
            if self._fail_mode == "crash":
                self.crashed = True
                raise SimulatedCrashError(
                    f"simulated crash at mutating op {self.op_count}")
            raise FaultInjectedError(
                f"injected write failure at mutating op {self.op_count}")

    def _check_up(self) -> None:
        if self.crashed:
            raise SimulatedCrashError("filesystem is down (simulated crash)")

    # -- crash imaging -------------------------------------------------------

    def crash_image(self, unsynced: str = "drop") -> MemoryVFS:
        """A fresh :class:`MemoryVFS` holding what survives power loss.

        ``unsynced`` picks the fate of appended-but-never-synced bytes:
        ``"drop"`` loses them all, ``"torn"`` keeps whole 4 KiB pages of the
        tail (a torn write), ``"keep"`` keeps everything.  Synced bytes and
        applied metadata operations always survive.
        """
        image = MemoryVFS()
        for name, file in self._files.items():
            image._files[name] = bytearray(
                file.data[:file.surviving_length(unsynced)])
        return image

    def reboot(self, unsynced: str = "drop") -> None:
        """Apply :meth:`crash_image` semantics in place and come back up."""
        for file in self._files.values():
            del file.data[file.surviving_length(unsynced):]
            file.durable = len(file.data)
        self.crashed = False
        self._fail_at = None

    def durable_size(self, name: str) -> int:
        """Bytes of ``name`` guaranteed to survive a crash right now."""
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        return self._files[name].durable

    # -- VFS interface -------------------------------------------------------

    def create(self, name: str) -> WritableFile:
        self._mutate()
        file = _FaultedFile()
        self._files[name] = file
        return _FaultedWritable(self, name, file)

    def open_random(self, name: str) -> RandomAccessFile:
        self._check_up()
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        return _FaultedRandomAccess(self, self._files[name])

    def exists(self, name: str) -> bool:
        self._check_up()
        return name in self._files

    def delete(self, name: str) -> None:
        self._check_up()
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        self._mutate()
        del self._files[name]

    def rename(self, old: str, new: str) -> None:
        self._check_up()
        if old not in self._files:
            raise NotFoundError(f"no such file: {old}")
        self._mutate()
        self._files[new] = self._files.pop(old)

    def list_dir(self, prefix: str = "") -> list[str]:
        self._check_up()
        return sorted(name for name in self._files if name.startswith(prefix))

    def file_size(self, name: str) -> int:
        self._check_up()
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        return len(self._files[name].data)


class _FaultedWritable(WritableFile):
    def __init__(self, vfs: FaultInjectingVFS, name: str,
                 file: _FaultedFile) -> None:
        self._vfs = vfs
        self._name = name
        self._file = file
        self._closed = False

    def append(self, data: bytes, category: Category = Category.OTHER) -> None:
        if self._closed:
            raise ValueError(f"file already closed: {self._name}")
        self._vfs._mutate()
        self._file.data.extend(data)
        self._vfs.stats.record_write(len(data), category)

    def flush(self) -> None:
        return None  # library-buffer flush: no device visibility

    def sync(self) -> None:
        self._vfs._mutate()
        self._file.durable = len(self._file.data)

    def close(self) -> None:
        # Closing is always safe (even post-crash): it promises no
        # durability, exactly like POSIX close(2) without fsync.
        self._closed = True

    @property
    def size(self) -> int:
        return len(self._file.data)


class _FaultedRandomAccess(RandomAccessFile):
    def __init__(self, vfs: FaultInjectingVFS, file: _FaultedFile) -> None:
        self._vfs = vfs
        self._file = file

    def read_at(self, offset: int, length: int,
                category: Category = Category.DATA,
                charge: bool = True) -> bytes:
        self._vfs._check_up()
        data = bytes(self._file.data[offset:offset + length])
        if charge:
            self._vfs.stats.record_read(len(data), category)
        return data

    def close(self) -> None:
        return None

    @property
    def size(self) -> int:
        return len(self._file.data)


# -- crash-point enumeration -----------------------------------------------


def count_mutations(workload: Workload) -> int:
    """Run ``workload`` once, fault-free, and count its mutating operations.

    The engine is deterministic, so this count is stable across runs and
    defines the crash-point schedule for :func:`run_until_crash`.
    """
    vfs = FaultInjectingVFS()
    workload(vfs)
    return vfs.op_count


def crash_points(workload: Workload) -> range:
    """Every crash point of ``workload``: 1-based mutating-op indices."""
    return range(1, count_mutations(workload) + 1)


def run_until_crash(workload: Workload, at_op: int) -> FaultInjectingVFS:
    """Replay ``workload`` on a fresh VFS, crashing before op ``at_op``.

    Returns the crashed (or, if ``at_op`` lies beyond the workload's
    schedule, completed) filesystem; recover from
    :meth:`FaultInjectingVFS.crash_image`.
    """
    vfs = FaultInjectingVFS()
    vfs.schedule_crash(at_op)
    try:
        workload(vfs)
    except SimulatedCrashError:
        pass
    return vfs
