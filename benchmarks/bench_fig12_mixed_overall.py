"""Figure 12: overall mean operation time under the Mixed workloads.

The three Table 7(b) operation mixes (write/read/update heavy) run against
the Embedded, Lazy and Composite variants (Eager was already ruled out).
The paper's findings: the stand-alone variants stay close; the Embedded
index suffers on read-heavy mixes because each LOOKUP on the
non-time-correlated UserID scans bloom filters across the whole store.
"""

import pytest

from harness import MIXED_NUM_OPS, ResultTable, get_mixed_report

from repro.core.base import IndexKind
from repro.workloads.generator import MIXED_RATIOS

_KINDS = [IndexKind.EMBEDDED, IndexKind.LAZY, IndexKind.COMPOSITE]
_RESULTS: dict = {}

_TABLE = ResultTable(
    "fig12_mixed_overall",
    f"Figure 12 — Mixed workloads, mean time per operation "
    f"({MIXED_NUM_OPS} ops, UserID index)",
    ["workload", "variant", "us_per_op", "us_per_put", "us_per_get",
     "us_per_lookup"])


@pytest.mark.parametrize("workload_name", sorted(MIXED_RATIOS))
@pytest.mark.parametrize("kind", _KINDS, ids=lambda k: k.value)
def test_fig12_mixed(benchmark, kind, workload_name):
    report, _compaction = benchmark.pedantic(
        get_mixed_report, args=(kind, workload_name), rounds=1, iterations=1)
    _TABLE.add(workload_name, kind.value,
               f"{report.mean_micros():.0f}",
               f"{report.mean_micros('put'):.0f}",
               f"{report.mean_micros('get'):.0f}",
               f"{report.mean_micros('lookup'):.0f}")
    _RESULTS[(kind, workload_name)] = report
    if len(_RESULTS) == len(_KINDS) * len(MIXED_RATIOS):
        _finalize()


def _finalize():
    _TABLE.write()
    # Read-heavy: Embedded's LOOKUPs are the slow path on this
    # non-time-correlated attribute (bloom-probe CPU + extra block reads).
    embedded = _RESULTS[(IndexKind.EMBEDDED, "read_heavy")]
    lazy = _RESULTS[(IndexKind.LAZY, "read_heavy")]
    composite = _RESULTS[(IndexKind.COMPOSITE, "read_heavy")]
    assert embedded.mean_micros("lookup") > lazy.mean_micros("lookup")
    assert embedded.mean_micros("lookup") > composite.mean_micros("lookup")
    # Write-heavy: Embedded's PUTs carry no index-table I/O (its overhead
    # is filter-construction CPU, which Python wall time reports noisily —
    # the paper's block counters are the robust signal).
    embedded_w = _RESULTS[(IndexKind.EMBEDDED, "write_heavy")]
    lazy_w = _RESULTS[(IndexKind.LAZY, "write_heavy")]
    assert embedded_w.write_blocks_by_op.get("put", 0) < \
        lazy_w.write_blocks_by_op.get("put", 0)
