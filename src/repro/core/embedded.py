"""The Embedded Index (paper Section 3).

No separate index table exists.  Instead:

* each primary-table SSTable carries, per data block, a bloom filter and a
  zone map for every indexed attribute (built for free when the table is
  written — SSTables are immutable, so the filters never need updates);
* each SSTable's file-level zone map lives in the manifest metadata
  ("a global metadata file"), pruning whole files;
* the MemTable is covered by an in-memory B-tree on the attribute
  (:class:`repro.core.btree.MemTableAttributeIndex`).

LOOKUP (Algorithm 5) scans one level at a time, newest component first,
consulting only the *in-memory* filters and reading just the data blocks
that pass both checks.  Matches are validated with GetLite — "checks the
in-memory metadata, index block and bloom filters for primary keys"
(:meth:`repro.core.validity.ValidityChecker.is_newest_version`) — and
ranked by the Algorithm-1 min-heap.  Because entries inside a level are
ordered by primary key, not by time, the scan always finishes a level
before stopping.

RANGELOOKUP (Algorithm 8) is the same walk driven by zone-map overlap
tests; bloom filters cannot help ranges.  As the paper's analysis warns,
the pruning power of zone maps — and therefore range performance — depends
entirely on the attribute being time-correlated.
"""

from __future__ import annotations

from typing import Any

from repro.core.base import IndexKind, LookupResult, SecondaryIndex
from repro.core.btree import MemTableAttributeIndex
from repro.core.records import (
    Document,
    attribute_of,
    decode_document,
    key_to_str,
)
from repro.core.topk import TopKBySeq
from repro.core.validity import ValidityChecker
from repro.lsm.bloom import bloom_may_contain
from repro.lsm.db import DB
from repro.lsm.keys import (
    KIND_FOR_SEEK,
    KIND_VALUE,
    MAX_SEQUENCE,
    pack_internal_key,
    unpack_internal_key,
)
from repro.lsm.options import resolve_attribute_path
from repro.lsm.sstable import SSTable
from repro.lsm.vfs import Category
from repro.lsm.version import FileMetaData
from repro.lsm.zonemap import encode_attribute


class EmbeddedIndex(SecondaryIndex):
    """Bloom-filter + zone-map index embedded in the primary table."""

    kind = IndexKind.EMBEDDED

    def __init__(self, attribute: str, primary: DB,
                 checker: ValidityChecker, use_getlite: bool = True,
                 use_file_zonemaps: bool = True) -> None:
        """``use_getlite`` and ``use_file_zonemaps`` disable, respectively,
        the GetLite validity optimisation (falling back to a full data-table
        GET per match) and the file-level zone-map pre-filter (falling back
        to per-block checks only) — the two Section 3 design choices the
        ablation benchmarks quantify."""
        super().__init__(attribute)
        if attribute not in primary.options.indexed_attributes:
            raise ValueError(
                f"primary table was not opened with {attribute!r} in "
                f"Options.indexed_attributes")
        self.primary = primary
        self.checker = checker
        self.use_getlite = use_getlite
        self.use_file_zonemaps = use_file_zonemaps
        self.memview = MemTableAttributeIndex()
        primary.add_flush_listener(self.memview.expire_up_to)
        self._rebuild_memview()
        #: Number of per-block bloom/zone-map probes performed (the CPU
        #: cost the paper flags with ** in Table 3).
        self.filter_probes = 0
        #: Blocks read from disk during index scans.
        self.blocks_read = 0
        #: Blocks skipped thanks to file-level zone maps alone.
        self.files_pruned = 0

    def _rebuild_memview(self) -> None:
        """Re-index MemTable contents recovered from the WAL on reopen.

        SSTable-resident entries are covered by their embedded filters, but
        entries replayed into the MemTable need their B-tree postings back.
        """
        extractor = self.primary.options.attribute_extractor
        for entry in self.primary.memtable:
            if entry.kind != KIND_VALUE:
                continue
            attr_value = resolve_attribute_path(
                extractor(entry.value), self.attribute)
            if attr_value is None:
                continue
            self.memview.insert(encode_attribute(attr_value), entry.seq,
                                entry.user_key)

    # -- write hooks ------------------------------------------------------------

    def on_put(self, key: bytes, document: Document, seq: int) -> None:
        attr_value = attribute_of(document, self.attribute)
        if attr_value is None:
            return
        self.memview.insert(encode_attribute(attr_value), seq, key)

    def on_delete(self, key: bytes, old_document: Document | None,
                  seq: int) -> None:
        # Nothing to write: the MemTable tombstone itself invalidates any
        # older B-tree posting at query time, and SSTable filters are
        # immutable by design.
        return

    # -- queries --------------------------------------------------------------

    def lookup(self, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        encoded = encode_attribute(value)
        heap: TopKBySeq[LookupResult] = TopKBySeq(k)
        self._memtable_matches(heap, self.memview.get(encoded))
        if early_termination and heap.is_full:
            return heap.results()
        version = self.primary.versions.current
        for level in range(self.primary.options.max_levels):
            for position, meta in enumerate(version.levels[level]):
                self._scan_file_for_value(
                    heap, level, position, meta, encoded)
            if early_termination and heap.is_full:
                break
        return heap.results()

    def range_lookup(self, low: Any, high: Any, k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        low_encoded = encode_attribute(low)
        high_encoded = encode_attribute(high)
        if low_encoded > high_encoded:
            return []
        heap: TopKBySeq[LookupResult] = TopKBySeq(k)
        for _enc, postings in self.memview.range(low_encoded, high_encoded):
            self._memtable_matches(heap, postings)
        if early_termination and heap.is_full:
            return heap.results()
        version = self.primary.versions.current
        for level in range(self.primary.options.max_levels):
            for position, meta in enumerate(version.levels[level]):
                self._scan_file_for_range(
                    heap, level, position, meta, low_encoded, high_encoded)
            if early_termination and heap.is_full:
                break
        return heap.results()

    # -- memtable component ---------------------------------------------------

    def _memtable_matches(self, heap: TopKBySeq[LookupResult],
                          postings: list[tuple[int, bytes]]) -> None:
        memtable = self.primary.memtable
        for seq, key in postings:
            newest = memtable.get(key)
            if newest is None or newest.seq != seq:
                continue  # superseded inside the MemTable itself
            if newest.kind != KIND_VALUE:
                continue
            document = decode_document(newest.value)
            heap.add(seq, LookupResult(key_to_str(key), document, seq))

    # -- SSTable scans ----------------------------------------------------------

    def _scan_file_for_value(self, heap: TopKBySeq[LookupResult], level: int,
                             position: int, meta: FileMetaData,
                             encoded: bytes) -> None:
        file_zone = meta.secondary_zonemaps.get(self.attribute) \
            if self.use_file_zonemaps else None
        self.filter_probes += 1
        if file_zone is not None and not file_zone.contains(encoded):
            self.files_pruned += 1
            return
        table = self.primary.table_cache.get(meta.file_number)
        blooms = table.secondary_filters.get(self.attribute, [])
        zonemaps = table.secondary_zonemaps.get(self.attribute, [])
        for block_index in range(table.num_data_blocks):
            self.filter_probes += 1
            if block_index < len(blooms) and not bloom_may_contain(
                    blooms[block_index], encoded):
                continue
            if block_index < len(zonemaps) and not \
                    zonemaps[block_index].contains(encoded):
                continue
            self._scan_block(heap, level, position, table, block_index,
                             lambda enc: enc == encoded)

    def _scan_file_for_range(self, heap: TopKBySeq[LookupResult], level: int,
                             position: int, meta: FileMetaData,
                             low: bytes, high: bytes) -> None:
        file_zone = meta.secondary_zonemaps.get(self.attribute) \
            if self.use_file_zonemaps else None
        self.filter_probes += 1
        if file_zone is not None and not file_zone.overlaps(low, high):
            self.files_pruned += 1
            return
        table = self.primary.table_cache.get(meta.file_number)
        zonemaps = table.secondary_zonemaps.get(self.attribute, [])
        for block_index in range(table.num_data_blocks):
            self.filter_probes += 1
            if block_index < len(zonemaps) and not \
                    zonemaps[block_index].overlaps(low, high):
                continue
            self._scan_block(heap, level, position, table, block_index,
                             lambda enc: low <= enc <= high)

    def _scan_block(self, heap: TopKBySeq[LookupResult], level: int,
                    position: int, table: SSTable, block_index: int,
                    matches) -> None:
        """Read one surviving block and harvest valid matches from it."""
        extractor = self.primary.options.attribute_extractor
        block = table.read_data_block(block_index, Category.DATA)
        self.blocks_read += 1
        seen_in_block: set[bytes] = set()
        for ikey_bytes, value in block:
            ikey = unpack_internal_key(ikey_bytes)
            key = ikey.user_key
            if key in seen_in_block:
                continue  # an older version within the same block
            seen_in_block.add(key)
            if ikey.kind != KIND_VALUE:
                continue
            attr_value = resolve_attribute_path(extractor(value),
                                                self.attribute)
            if attr_value is None:
                continue
            encoded = encode_attribute(attr_value)
            if not matches(encoded):
                continue
            if not heap.would_accept(ikey.seq):
                continue  # too old to matter — skip the validity work
            if not self._is_valid(table, key, ikey.seq, level, position,
                                  block_index):
                continue
            document = decode_document(value)
            heap.add(ikey.seq,
                     LookupResult(key_to_str(key), document, ikey.seq))

    def _is_valid(self, table: SSTable, key: bytes, seq: int, level: int,
                  position: int, block_index: int) -> bool:
        """Is the matched version still the record's newest version?"""
        if not self.use_getlite:
            # Ablation baseline: a plain GET on the data table, as a naive
            # implementation would do.
            found = self.primary.get_with_seq(key)
            return found is not None and found[1] == seq
        if not self._newest_in_file(table, key, block_index):
            return False
        if level == 0 and not self._newest_across_l0(key, position):
            return False
        return self.checker.is_newest_version(key, seq, level)

    def _newest_in_file(self, table: SSTable, key: bytes,
                        block_index: int) -> bool:
        """Is the key's first (newest) version in this file inside this block?

        Versions of one key are contiguous in the file, so if the first
        block that can contain the key precedes this one, that earlier
        block necessarily ends with a newer version of the key — decided
        purely from the in-memory index block.
        """
        probe = pack_internal_key(key, MAX_SEQUENCE, KIND_FOR_SEEK)
        first_block = table._block_index_for(probe)
        return first_block is None or first_block >= block_index

    def _newest_across_l0(self, key: bytes, position: int) -> bool:
        """No newer level-0 file (they are ordered newest first) holds the key."""
        version = self.primary.versions.current
        for newer in version.levels[0][:position]:
            if not newer.contains_user_key(key):
                continue
            newer_table = self.primary.table_cache.get(newer.file_number)
            if not newer_table.may_contain_user_key(key):
                continue
            # Bloom positive: confirm with a real probe (charged) so a
            # false positive cannot discard a live record.
            self.checker.getlite_confirm_reads += 1
            for _ikey, _value in newer_table.versions(key, MAX_SEQUENCE):
                return False
        return True

    def probe_stats(self) -> dict[str, int]:
        """Counters for the cost-model experiments (Table 3)."""
        return {
            "filter_probes": self.filter_probes,
            "blocks_read": self.blocks_read,
            "files_pruned": self.files_pruned,
            "getlite_memory_only": self.checker.getlite_memory_only,
            "getlite_confirm_reads": self.checker.getlite_confirm_reads,
        }
