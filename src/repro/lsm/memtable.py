"""The in-memory write buffer (LSM component C0).

Entries live in a skip list ordered by ``(user_key asc, seq desc)`` — the
internal-key order — so a forward walk within one user key visits versions
newest-first.  The MemTable never discards data; obsolete versions are
dropped later by compaction.

Memory accounting is approximate (key + value bytes plus a fixed per-node
overhead), which is how LevelDB decides when to flush as well.
"""

from __future__ import annotations

from typing import Iterator

from repro.lsm.keys import KIND_DELETE, KIND_MERGE, KIND_VALUE, MAX_SEQUENCE
from repro.lsm.skiplist import SkipList

_NODE_OVERHEAD = 64


class MemTableEntry:
    """One version of one user key held in memory."""

    __slots__ = ("user_key", "seq", "kind", "value")

    def __init__(self, user_key: bytes, seq: int, kind: int, value: bytes) -> None:
        self.user_key = user_key
        self.seq = seq
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemTableEntry({self.user_key!r}, seq={self.seq}, "
                f"kind={self.kind})")


class MemTable:
    """Skiplist-backed buffer of recent writes."""

    def __init__(self) -> None:
        self._list = SkipList()
        self._memory = 0
        self._min_seq: int | None = None
        self._max_seq: int | None = None
        self._sealed = False

    def __len__(self) -> int:
        return len(self._list)

    @property
    def approximate_memory_usage(self) -> int:
        return self._memory

    @property
    def min_seq(self) -> int | None:
        return self._min_seq

    @property
    def max_seq(self) -> int | None:
        return self._max_seq

    @property
    def sealed(self) -> bool:
        return self._sealed

    def seal(self) -> None:
        """Freeze this MemTable for the immutable flush handoff.

        A sealed MemTable rejects further inserts; readers keep working.
        The background pipeline (DESIGN.md §8) seals the active MemTable
        when it fills, hands it to the compactor thread, and swaps in a
        fresh one — sealing turns the single-writer skip list into
        read-only shared state that is safe to scan from any thread.
        """
        self._sealed = True

    def add(self, seq: int, kind: int, user_key: bytes, value: bytes) -> None:
        """Insert one version.  ``value`` is ignored for deletions."""
        if self._sealed:
            raise RuntimeError("cannot add to a sealed MemTable")
        if kind not in (KIND_VALUE, KIND_DELETE, KIND_MERGE):
            raise ValueError(f"invalid kind: {kind}")
        entry = MemTableEntry(user_key, seq, kind, value)
        self._list.insert((user_key, MAX_SEQUENCE - seq), entry)
        self._memory += len(user_key) + len(value) + _NODE_OVERHEAD
        if self._min_seq is None or seq < self._min_seq:
            self._min_seq = seq
        if self._max_seq is None or seq > self._max_seq:
            self._max_seq = seq

    def versions(self, user_key: bytes,
                 max_seq: int = MAX_SEQUENCE) -> Iterator[MemTableEntry]:
        """Versions of ``user_key`` with ``seq <= max_seq``, newest first."""
        start = (user_key, MAX_SEQUENCE - max_seq)
        for (key, _inv_seq), entry in self._list.items_from(start):
            if key != user_key:
                return
            yield entry

    def get(self, user_key: bytes,
            max_seq: int = MAX_SEQUENCE) -> MemTableEntry | None:
        """Newest visible version of ``user_key``, or ``None`` if absent.

        A returned entry may be a tombstone or a merge operand; callers
        interpret ``entry.kind``.
        """
        for entry in self.versions(user_key, max_seq):
            return entry
        return None

    def __iter__(self) -> Iterator[MemTableEntry]:
        """All entries in internal-key order (user key asc, seq desc)."""
        for _key, entry in self._list:
            yield entry

    def is_empty(self) -> bool:
        return len(self._list) == 0
