"""Ablation: file-level zone maps on top of block-level zone maps.

AsterixDB keeps only whole-file min/max filters; the paper's LevelDB++
"also maintain[s] filters for all blocks inside an SSTable", plus one
file-level zone map in the manifest.  This ablation quantifies the
file-level layer: without it, a time-window query probes the per-block
structures of *every* file instead of skipping non-overlapping files
outright.
"""

import pytest

from harness import BENCH_PROFILE, ResultTable, bench_options

from repro.core.database import SecondaryIndexedDB
from repro.core.embedded import EmbeddedIndex
from repro.core.validity import ValidityChecker
from repro.lsm.db import DB
from repro.lsm.vfs import MemoryVFS
from repro.workloads.tweets import TweetGenerator

_N = 3000
_RESULTS: dict = {}

_TABLE = ResultTable(
    "ablation_zonemap_levels",
    "Ablation — file-level zone-map pre-filter (time-window RANGELOOKUP)",
    ["file_zonemaps", "filter_probes_per_query", "files_pruned_per_query",
     "read_blocks_per_query"])


def _build(use_file_zonemaps):
    options = bench_options(indexed_attributes=("CreationTime",))
    primary = DB.open(MemoryVFS(), "data/primary", options)
    checker = ValidityChecker(primary)
    index = EmbeddedIndex("CreationTime", primary, checker,
                          use_file_zonemaps=use_file_zonemaps)
    db = SecondaryIndexedDB(primary, {"CreationTime": index}, checker)
    generator = TweetGenerator(BENCH_PROFILE, seed=51)
    times = []
    for key, doc in generator.tweets(_N):
        db.put(key, doc)
        times.append(doc["CreationTime"])
    db.flush()
    return db, times


@pytest.mark.parametrize("use_file_zonemaps", [True, False],
                         ids=["with-file-zm", "block-zm-only"])
def test_ablation_file_zonemaps(benchmark, use_file_zonemaps):
    db, times = _build(use_file_zonemaps)
    lo_bound, hi_bound = times[0], times[-1]
    windows = [(start, start + 3) for start in
               range(lo_bound, hi_bound - 3, (hi_bound - lo_bound) // 20)]
    index = db.indexes["CreationTime"]
    index.filter_probes = 0
    index.files_pruned = 0
    reads_before = db.primary.vfs.stats.read_blocks

    def run_queries():
        for low, high in windows:
            db.range_lookup("CreationTime", low, high, 10,
                            early_termination=False)

    benchmark.pedantic(run_queries, rounds=2, iterations=1)
    probes = index.filter_probes / (2 * len(windows))
    pruned = index.files_pruned / (2 * len(windows))
    reads = (db.primary.vfs.stats.read_blocks - reads_before) \
        / (2 * len(windows))
    label = "on" if use_file_zonemaps else "off"
    _TABLE.add(label, f"{probes:.0f}", f"{pruned:.1f}", f"{reads:.1f}")
    _RESULTS[use_file_zonemaps] = {"probes": probes, "reads": reads}
    db.close()
    if len(_RESULTS) == 2:
        _TABLE.note("block reads match in both modes (block zone maps are "
                    "sound); the file-level layer saves the CPU probes")
        _TABLE.write()
        # Same I/O either way, but far fewer filter probes with the
        # file-level pre-filter.
        assert _RESULTS[True]["probes"] < _RESULTS[False]["probes"]
        assert abs(_RESULTS[True]["reads"] - _RESULTS[False]["reads"]) < 2.0
