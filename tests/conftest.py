"""Shared fixtures: small engine geometries that force multi-level trees.

The default Options are scaled for realistic datasets; tests shrink every
budget further so that a few thousand writes already exercise flushes,
level-0 pileups and multi-level compactions.
"""

from __future__ import annotations

import pytest

from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS


@pytest.fixture
def tiny_options() -> Options:
    """Geometry that produces several levels within ~1000 small records."""
    return Options(
        block_size=1024,
        sstable_target_size=4 * 1024,
        memtable_budget=4 * 1024,
        l1_target_size=16 * 1024,
        l0_compaction_trigger=4,
        max_levels=7,
    )


@pytest.fixture
def small_options() -> Options:
    """A slightly roomier geometry for workload-level tests."""
    return Options(
        block_size=2048,
        sstable_target_size=8 * 1024,
        memtable_budget=8 * 1024,
        l1_target_size=32 * 1024,
    )


@pytest.fixture
def vfs() -> MemoryVFS:
    return MemoryVFS()


def make_doc(user: int, ts: int, pad: int = 30) -> dict:
    """A tweet-shaped document."""
    return {"UserID": f"u{user:05d}", "CreationTime": ts, "Body": "x" * pad}
