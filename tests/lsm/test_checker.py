"""Integrity verification and fault injection."""

import random

import pytest

from repro.lsm.checker import verify_integrity
from repro.lsm.db import DB
from repro.lsm.manifest import table_file_name
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS


def _options(**overrides):
    base = dict(block_size=1024, sstable_target_size=4 * 1024,
                memtable_budget=4 * 1024, l1_target_size=16 * 1024,
                compression="none", indexed_attributes=("UserID",))
    base.update(overrides)
    return Options(**base)


def _build(vfs=None, count=800):
    import json

    vfs = vfs or MemoryVFS()
    db = DB.open(vfs, "db", _options())
    rng = random.Random(13)
    for i in range(count):
        doc = {"UserID": f"u{rng.randrange(40)}", "Body": "x" * 40}
        db.put(f"k{i:05d}".encode(), json.dumps(doc).encode())
    db.flush()
    return vfs, db


class TestHealthyDatabase:
    def test_clean_report(self):
        _vfs, db = _build()
        report = verify_integrity(db)
        assert report.ok, report.problems
        assert report.tables_checked > 0
        assert report.entries_checked == 800 or report.entries_checked > 0
        assert report.blocks_checked > 0
        db.close()

    def test_clean_after_compaction(self):
        _vfs, db = _build()
        db.compact_range()
        report = verify_integrity(db)
        assert report.ok, report.problems
        db.close()

    def test_clean_after_reopen(self):
        vfs, db = _build()
        db.close()
        db2 = DB.open(vfs, "db", _options())
        assert verify_integrity(db2).ok
        db2.close()

    def test_empty_database(self):
        db = DB.open_memory(_options())
        report = verify_integrity(db)
        assert report.ok
        assert report.tables_checked == 0
        db.close()


class TestFaultInjection:
    def _some_live_table(self, db):
        for _level, meta in db.versions.current.all_files():
            return meta
        raise AssertionError("no tables")

    def test_flipped_data_byte_detected(self):
        vfs, db = _build()
        meta = self._some_live_table(db)
        name = table_file_name("db", meta.file_number)
        # Flip a byte early in the file (inside a data block).
        vfs._files[name][50] ^= 0xFF
        db.table_cache.evict(meta.file_number)
        report = verify_integrity(db)
        assert not report.ok
        assert any("block" in problem for problem in report.problems)
        db.close()

    def test_truncated_file_detected(self):
        vfs, db = _build()
        meta = self._some_live_table(db)
        name = table_file_name("db", meta.file_number)
        del vfs._files[name][len(vfs._files[name]) // 2:]
        db.table_cache.evict(meta.file_number)
        report = verify_integrity(db)
        assert not report.ok
        db.close()

    def test_deleted_live_file_detected(self):
        vfs, db = _build()
        meta = self._some_live_table(db)
        vfs.delete(table_file_name("db", meta.file_number))
        db.table_cache.evict(meta.file_number)
        report = verify_integrity(db)
        assert any("missing" in problem for problem in report.problems)
        db.close()

    def test_size_mismatch_detected(self):
        vfs, db = _build()
        meta = self._some_live_table(db)
        name = table_file_name("db", meta.file_number)
        vfs._files[name].extend(b"garbage-tail")
        report = verify_integrity(db)
        assert any("size" in problem for problem in report.problems)
        db.close()

    def test_manifest_metadata_mismatch_detected(self):
        _vfs, db = _build()
        meta = self._some_live_table(db)
        meta.num_entries += 5  # lie in the in-memory manifest state
        report = verify_integrity(db)
        assert any("entries" in problem for problem in report.problems)
        db.close()

    def test_unsound_secondary_bloom_detected(self, monkeypatch):
        """A filter that rejects a *present* value silently loses query
        results; the checker must flag it.  Injected by sabotaging the
        filters as the checker's fresh table handle loads them."""
        import repro.lsm.sstable as sstable_module

        real_sstable = sstable_module.SSTable

        class SabotagedSSTable(real_sstable):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                blooms = self.secondary_filters.get("UserID")
                if blooms and blooms[0]:
                    # All-zero bit array: rejects everything.
                    blooms[0] = bytes(len(blooms[0]) - 1) + blooms[0][-1:]

        _vfs, db = _build(count=300)
        monkeypatch.setattr(sstable_module, "SSTable", SabotagedSSTable)
        report = verify_integrity(db)
        assert any("bloom" in problem for problem in report.problems)
        db.close()

    def test_unsound_zone_map_detected(self, monkeypatch):
        import repro.lsm.sstable as sstable_module
        from repro.lsm.zonemap import ZoneMap, encode_attribute

        real_sstable = sstable_module.SSTable
        bogus = ZoneMap(encode_attribute("zzz-low"),
                        encode_attribute("zzz-high"))

        class SabotagedSSTable(real_sstable):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                zonemaps = self.secondary_zonemaps.get("UserID")
                if zonemaps:
                    zonemaps[0] = bogus

        _vfs, db = _build(count=300)
        monkeypatch.setattr(sstable_module, "SSTable", SabotagedSSTable)
        report = verify_integrity(db)
        assert any("zone map" in problem for problem in report.problems)
        db.close()

    def test_random_corruption_sweep(self):
        """Any single flipped byte inside a table is either harmless to
        decoding (caught by CRC) or detected some other way — never a
        silent pass with changed content."""
        rng = random.Random(77)
        for _round in range(5):
            vfs, db = _build(count=300)
            meta = self._some_live_table(db)
            name = table_file_name("db", meta.file_number)
            data = vfs._files[name]
            position = rng.randrange(len(data) - 60)
            data[position] ^= 0x55
            db.table_cache.evict(meta.file_number)
            report = verify_integrity(db)
            assert not report.ok, f"flip at {position} went undetected"
            db.close()
