"""Stand-Alone Composite Index: composite keys and prefix scans."""

import pytest

from conftest import load_tweets, open_db

from repro.core.base import IndexKind
from repro.core.composite import (
    attribute_prefix,
    make_composite_key,
    split_composite_key,
)
from repro.lsm.errors import CorruptionError
from repro.lsm.zonemap import encode_attribute


class TestCompositeKeyCodec:
    def test_roundtrip(self):
        for attr_value, pk in [("u1", b"t1"), ("", b""), ("a\x00b", b"t")]:
            encoded_attr = encode_attribute(attr_value)
            composite = make_composite_key(encoded_attr, pk)
            got_attr, got_pk = split_composite_key(composite)
            assert (got_attr, got_pk) == (encoded_attr, pk)

    def test_roundtrip_numeric_attributes(self):
        """Numeric encodings contain zero bytes; escaping must handle them."""
        for value in [0, 1, -1, 2**40, 0.5]:
            encoded_attr = encode_attribute(value)
            composite = make_composite_key(encoded_attr, b"pk")
            got_attr, got_pk = split_composite_key(composite)
            assert (got_attr, got_pk) == (encoded_attr, b"pk")

    def test_order_preserved_across_attr_values(self):
        values = [0, 1, 100, "a", "a\x00", "ab", "b"]
        composites = [make_composite_key(encode_attribute(v), b"pk")
                      for v in values]
        assert composites == sorted(composites)

    def test_same_attr_orders_by_primary_key(self):
        attr = encode_attribute("u1")
        keys = [make_composite_key(attr, pk) for pk in [b"t1", b"t2", b"t9"]]
        assert keys == sorted(keys)

    def test_prefix_is_shared_by_all_pks(self):
        attr = encode_attribute("u1")
        prefix = attribute_prefix(attr)
        assert make_composite_key(attr, b"anything").startswith(prefix)

    def test_prefix_does_not_match_longer_value(self):
        """esc("u1") prefix must not match composite keys of "u10"."""
        prefix = attribute_prefix(encode_attribute("u1"))
        other = make_composite_key(encode_attribute("u10"), b"t")
        assert not other.startswith(prefix)

    def test_malformed_key_rejected(self):
        with pytest.raises(CorruptionError):
            split_composite_key(b"no-terminator-here")
        with pytest.raises(CorruptionError):
            split_composite_key(b"bad\x00escape")


class TestQueries:
    def test_lookup_all_matches(self, index_options):
        db = open_db(IndexKind.COMPOSITE, index_options)
        load_tweets(db, 60, users=6)
        results = db.lookup("UserID", "u2")
        assert [r.key for r in results] == [
            f"t{i:05d}" for i in range(59, -1, -1) if i % 6 == 2]
        db.close()

    def test_lookup_top_k_exact(self, index_options):
        db = open_db(IndexKind.COMPOSITE, index_options)
        load_tweets(db, 500, users=5)
        results = db.lookup("UserID", "u4", k=3)
        assert [r.key for r in results] == ["t00499", "t00494", "t00489"]
        db.close()

    def test_update_stale_entry_filtered(self, index_options):
        db = open_db(IndexKind.COMPOSITE, index_options)
        db.put("t1", {"UserID": "u1"})
        db.put("t1", {"UserID": "u2"})
        assert db.lookup("UserID", "u1") == []
        assert [r.key for r in db.lookup("UserID", "u2")] == ["t1"]
        db.close()

    def test_delete_uses_tombstone(self, index_options):
        db = open_db(IndexKind.COMPOSITE, index_options)
        db.put("t1", {"UserID": "u1"})
        db.put("t2", {"UserID": "u1"})
        db.delete("t1")
        assert [r.key for r in db.lookup("UserID", "u1")] == ["t2"]
        db.compact_all()
        assert [r.key for r in db.lookup("UserID", "u1")] == ["t2"]
        db.close()

    def test_range_lookup(self, index_options):
        db = open_db(IndexKind.COMPOSITE, index_options)
        load_tweets(db, 64, users=8)
        results = db.range_lookup("UserID", "u5", "u7")
        want = [f"t{i:05d}" for i in range(63, -1, -1) if i % 8 in (5, 6, 7)]
        assert [r.key for r in results] == want
        db.close()

    def test_range_lookup_numeric_attribute(self, index_options):
        db = open_db(IndexKind.COMPOSITE, index_options,
                     attributes=("CreationTime",))
        load_tweets(db, 100)
        results = db.range_lookup("CreationTime", 1010, 1019)
        assert [r.key for r in results] == [
            f"t{i:05d}" for i in range(19, 9, -1)]
        db.close()

    def test_no_early_termination_scans_everything(self, index_options):
        """Composite must traverse all levels even for K=1 (Section 4.2)."""
        db = open_db(IndexKind.COMPOSITE, index_options)
        load_tweets(db, 400, users=2)
        index = db.indexes["UserID"]
        index.candidates_scanned = 0
        db.lookup("UserID", "u1", k=1)
        # All 200 composite entries for u1 are examined.
        assert index.candidates_scanned == 200
        db.close()

    def test_survives_compaction(self, index_options):
        db = open_db(IndexKind.COMPOSITE, index_options)
        load_tweets(db, 300, users=3)
        db.compact_all()
        results = db.lookup("UserID", "u0", k=2)
        assert [r.key for r in results] == ["t00297", "t00294"]
        db.close()
