"""Bloom filters: no false negatives, calibrated false positives."""

import math

from repro.lsm.bloom import (
    BloomFilterBuilder,
    bloom_may_contain,
    expected_false_positive_rate,
    measured_false_positive_rate,
    optimal_num_probes,
)


def _build(keys, bits_per_key=10):
    builder = BloomFilterBuilder(bits_per_key)
    for key in keys:
        builder.add(key)
    return builder.finish()


class TestMembership:
    def test_no_false_negatives(self):
        keys = [f"key{i}".encode() for i in range(500)]
        blob = _build(keys)
        assert all(bloom_may_contain(blob, key) for key in keys)

    def test_empty_filter_matches_nothing(self):
        blob = _build([])
        assert blob == b""
        assert not bloom_may_contain(blob, b"anything")

    def test_single_key(self):
        blob = _build([b"only"])
        assert bloom_may_contain(blob, b"only")

    def test_unknown_num_probes_is_conservative(self):
        # A corrupt trailer must never cause a false negative.
        blob = bytes([0xFF] * 8) + bytes([31])
        assert bloom_may_contain(blob, b"whatever")


class TestFalsePositiveRate:
    def test_rate_close_to_theory_at_10_bits(self):
        keys = [f"present{i}".encode() for i in range(2000)]
        absent = [f"absent{i}".encode() for i in range(4000)]
        blob = _build(keys, bits_per_key=10)
        measured = measured_false_positive_rate(blob, absent)
        expected = expected_false_positive_rate(10)
        # ~1% expected at 10 bits/key; allow generous slack.
        assert measured < expected * 3 + 0.01

    def test_more_bits_fewer_false_positives(self):
        keys = [f"k{i}".encode() for i in range(1000)]
        absent = [f"a{i}".encode() for i in range(3000)]
        rates = []
        for bits in (4, 10, 20):
            blob = _build(keys, bits_per_key=bits)
            rates.append(measured_false_positive_rate(blob, absent))
        assert rates[0] >= rates[1] >= rates[2]

    def test_expected_rate_formula(self):
        """Equation 1 at the optimum: 2^(-(m/S) ln 2)."""
        assert math.isclose(expected_false_positive_rate(10),
                            2 ** (-10 * math.log(2)))
        assert expected_false_positive_rate(0) == 1.0

    def test_100_bits_rate_is_negligible(self):
        """The paper's chosen secondary-filter length."""
        assert expected_false_positive_rate(100) < 1e-20


class TestProbeCount:
    def test_leveldb_formula(self):
        assert optimal_num_probes(10) == round(10 * math.log(2))

    def test_clamping(self):
        assert optimal_num_probes(0.1) == 1
        assert optimal_num_probes(1000) == 30

    def test_filter_size_scales_with_keys(self):
        small = _build([f"k{i}".encode() for i in range(10)], 10)
        large = _build([f"k{i}".encode() for i in range(1000)], 10)
        assert len(large) > len(small)
