"""The record model: JSON documents keyed by a primary key.

The paper's data model (Section 1): an entry is ``(k, v)`` where ``v`` is a
JSON object carrying the secondary attributes,
``v = {A1: val(A1), ..., Al: val(Al)}`` — e.g. a tweet keyed by ``tweet_id``
with attributes ``user_id`` and ``text``.  This module provides the codecs
between that model and the byte-oriented storage engine.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lsm.errors import InvalidArgumentError

Document = dict[str, Any]


def key_to_bytes(key: str | bytes) -> bytes:
    """Canonical byte form of a primary key."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    raise InvalidArgumentError(
        f"primary keys must be str or bytes, got {type(key).__name__}")


def key_to_str(key: bytes) -> str:
    """Human-facing form of a stored primary key."""
    return key.decode("utf-8", errors="replace")


def encode_document(document: Document) -> bytes:
    """Serialize a document to its stored JSON byte form.

    Keys are kept in insertion order (not sorted): the paper's values are
    raw tweets and the engine never relies on a canonical ordering.
    """
    if not isinstance(document, dict):
        raise InvalidArgumentError(
            f"documents must be dicts, got {type(document).__name__}")
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def decode_document(value: bytes) -> Document:
    """Parse a stored value back into a document."""
    doc = json.loads(value)
    if not isinstance(doc, dict):
        raise InvalidArgumentError("stored value is not a JSON object")
    return doc


def attribute_of(document: Document, attribute: str) -> Any:
    """The document's value for ``attribute``, or ``None`` if absent.

    Dotted names descend into nested objects (``"user.id"``); a flat key
    containing the literal dotted name takes precedence.  ``None``-valued
    attributes are treated as absent, matching the paper's "with val(A_i)
    not null" indexing rule.
    """
    from repro.lsm.options import resolve_attribute_path

    return resolve_attribute_path(document, attribute)
