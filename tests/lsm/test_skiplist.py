"""Skip list behaviour against a sorted-dict oracle."""

import random

import pytest

from repro.lsm.skiplist import SkipList


class TestBasics:
    def test_empty(self):
        sl = SkipList()
        assert len(sl) == 0
        assert sl.get("missing") is None
        assert "missing" not in sl
        assert sl.first() is None
        assert list(sl) == []

    def test_insert_get(self):
        sl = SkipList()
        sl.insert(b"b", 2)
        sl.insert(b"a", 1)
        sl.insert(b"c", 3)
        assert sl.get(b"a") == 1
        assert sl.get(b"b") == 2
        assert sl.get(b"c") == 3
        assert len(sl) == 3

    def test_duplicate_rejected(self):
        sl = SkipList()
        sl.insert(b"k", 1)
        with pytest.raises(KeyError):
            sl.insert(b"k", 2)

    def test_iteration_is_sorted(self):
        sl = SkipList()
        keys = [b"m", b"a", b"z", b"q", b"b"]
        for key in keys:
            sl.insert(key, None)
        assert [k for k, _v in sl] == sorted(keys)

    def test_first(self):
        sl = SkipList()
        sl.insert(b"q", 1)
        sl.insert(b"a", 2)
        assert sl.first() == (b"a", 2)

    def test_items_from_midpoint(self):
        sl = SkipList()
        for key in [b"a", b"c", b"e", b"g"]:
            sl.insert(key, key)
        assert [k for k, _v in sl.items_from(b"c")] == [b"c", b"e", b"g"]
        assert [k for k, _v in sl.items_from(b"d")] == [b"e", b"g"]
        assert [k for k, _v in sl.items_from(b"z")] == []
        assert [k for k, _v in sl.items_from(b"")] == [b"a", b"c", b"e", b"g"]

    def test_tuple_keys(self):
        """The MemTable uses (user_key, inverted_seq) tuples."""
        sl = SkipList()
        sl.insert((b"k", 5), "older")
        sl.insert((b"k", 1), "newer")
        assert [v for _k, v in sl.items_from((b"k", 0))] == ["newer", "older"]


class TestRandomized:
    def test_against_dict_oracle(self):
        rng = random.Random(99)
        sl = SkipList(rng=random.Random(1))
        oracle: dict[int, int] = {}
        for i in range(3000):
            key = rng.randrange(1000)
            if key in oracle:
                assert sl.get(key) == oracle[key]
                continue
            oracle[key] = i
            sl.insert(key, i)
        assert len(sl) == len(oracle)
        assert [k for k, _v in sl] == sorted(oracle)
        for key, value in oracle.items():
            assert sl.get(key) == value

    def test_seek_positions(self):
        rng = random.Random(5)
        sl = SkipList()
        keys = sorted(rng.sample(range(10000), 500))
        for key in keys:
            sl.insert(key, None)
        for _ in range(100):
            target = rng.randrange(11000)
            got = [k for k, _v in sl.items_from(target)]
            want = [k for k in keys if k >= target]
            assert got == want
