"""A probabilistic skip list.

This is the MemTable's core ordered structure, as in LevelDB.  Keys are
arbitrary comparable objects (the MemTable uses internal-key sort tuples).
The list supports insertion, exact search, and ordered iteration from an
arbitrary seek position — everything an LSM memory component needs.  Keys
are never removed individually; deletion in an LSM tree is an insertion of
a tombstone.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

_MAX_HEIGHT = 12
_BRANCHING = 4


class _Node:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: Any, value: Any, height: int) -> None:
        self.key = key
        self.value = value
        self.next: list[_Node | None] = [None] * height


class SkipList:
    """Sorted map with O(log n) expected insert and seek.

    Duplicate keys are rejected: the MemTable encodes the sequence number
    into every key, which makes all inserted keys unique by construction.
    """

    def __init__(self, rng: random.Random | None = None) -> None:
        self._head = _Node(None, None, _MAX_HEIGHT)
        self._height = 1
        self._rng = rng or random.Random(0x5EED)
        self._size = 0
        # Scratch predecessor array reused across inserts (the structure is
        # single-writer, like LevelDB's): saves one list allocation per op.
        self._prev: list[_Node] = [self._head] * _MAX_HEIGHT

    def __len__(self) -> int:
        return self._size

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(
            self, key: Any, prev: list[_Node] | None = None) -> _Node | None:
        node = self._head
        level = self._height - 1
        while True:
            nxt = node.next[level]
            if nxt is not None and nxt.key < key:
                node = nxt
            else:
                if prev is not None:
                    prev[level] = node
                if level == 0:
                    return nxt
                level -= 1

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key`` -> ``value``; raises if the key already exists."""
        prev = self._prev
        head = self._head
        for level in range(self._height, _MAX_HEIGHT):
            prev[level] = head
        nxt = self._find_greater_or_equal(key, prev)
        if nxt is not None and nxt.key == key:
            raise KeyError(f"duplicate skiplist key: {key!r}")
        height = self._random_height()
        if height > self._height:
            self._height = height
        node = _Node(key, value, height)
        node_next = node.next
        for level in range(height):
            node_next[level] = prev[level].next[level]
            prev[level].next[level] = node
        self._size += 1

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._find_greater_or_equal(key)
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key: Any) -> bool:
        node = self._find_greater_or_equal(key)
        return node is not None and node.key == key

    def items_from(self, key: Any) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with keys >= ``key``, in order."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node.key, node.value
            node = node.next[0]

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        node = self._head.next[0]
        while node is not None:
            yield node.key, node.value
            node = node.next[0]

    def first(self) -> tuple[Any, Any] | None:
        node = self._head.next[0]
        if node is None:
            return None
        return node.key, node.value
