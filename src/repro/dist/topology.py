"""Durable cluster topology: the CLUSTER manifest.

Everything *inside* a shard replica is already durable — each engine
persists its own MANIFEST and WAL and recovers them on open.  What was
not durable (DESIGN.md §12, before this change) is the topology *above*
the shards: the :class:`~repro.dist.partitioner.SplitHashRing` split
list, the replica-set shape, and the global-index ring shapes all lived
only in process memory, so a durable cluster reopened at the base shard
count silently served just the unmoved keys.

:class:`ClusterManifest` is the fix: a tiny JSON document with a CRC32
header, written with the same atomic temp-file + fsync + rename protocol
as the shard-level ``CURRENT`` file (§6) — a crash during any write
leaves either the old or the new manifest, never a torn one.  The
manifest also carries the two-phase split protocol:

* ``in_flight = [source, new_id]`` is written **before** the first
  destination file exists (split *intent*).  A reopen that finds an
  intent knows the flip never committed: it deletes every file under the
  destination shard's prefix and lands on the old topology with zero
  orphans.
* the flip chunk rewrites the manifest with the split appended to
  ``splits`` and ``pending_cleanup = true`` — the durable commit point
  of the migration.  A reopen that finds a committed-but-unclean split
  lands on the new topology and re-runs the (idempotent) stray purge.
* cleanup's last act clears ``pending_cleanup``.

``epoch`` increments on every save, so drills (and operators reading the
file) can order topology generations; ``replication_factor`` and the
index shapes let :meth:`ShardedDB.open` reconstruct the whole cluster
from the manifest alone, without the caller re-specifying anything.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.lsm.errors import CorruptionError
from repro.lsm.vfs import VFS, Category

__all__ = [
    "CLUSTER_FILE",
    "CLUSTER_TMP_FILE",
    "ClusterManifest",
    "load_cluster_manifest",
]

#: The durable topology file, beside the shard directories.
CLUSTER_FILE = "CLUSTER"

#: Scratch file for atomic installation (may survive a crash; the next
#: save truncates it, and :func:`load_cluster_manifest` ignores it).
CLUSTER_TMP_FILE = "CLUSTER.tmp"

_MAGIC = "repro-cluster-v1"


@dataclass(frozen=True)
class ClusterManifest:
    """One durable snapshot of the cluster's topology.

    Immutable — every change goes through :meth:`evolve` (which bumps
    the epoch) and :meth:`save` (which installs atomically).
    """

    base_shards: int
    replication_factor: int = 1
    epoch: int = 1
    #: Committed ring splits, in order: ``((parent, new_id), ...)``.
    splits: tuple[tuple[int, int], ...] = ()
    #: A split whose intent is durable but whose flip is not:
    #: ``(source_id, new_id)`` or ``None``.
    in_flight: tuple[int, int] | None = None
    #: The last committed split's stray purge has not finished.
    pending_cleanup: bool = False
    #: Local index shapes: ``{attribute: kind_value}``.
    local_indexes: Mapping[str, str] = field(default_factory=dict)
    #: Global index ring shapes: ``{attribute: {"scheme": "hash",
    #: "shards": N} | {"scheme": "range", "split_points": [hex, ...]}}``.
    global_indexes: Mapping[str, Mapping[str, Any]] = \
        field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        """Data shards in the committed topology."""
        return self.base_shards + len(self.splits)

    def evolve(self, **changes: Any) -> "ClusterManifest":
        """The next topology generation: ``changes`` applied, epoch + 1."""
        return replace(self, epoch=self.epoch + 1, **changes)

    # -- encoding ----------------------------------------------------------

    def encode(self) -> bytes:
        """Self-checking byte form: one CRC header line + sorted JSON."""
        doc = {
            "magic": _MAGIC,
            "epoch": self.epoch,
            "base_shards": self.base_shards,
            "replication_factor": self.replication_factor,
            "splits": [list(pair) for pair in self.splits],
            "in_flight": list(self.in_flight) if self.in_flight else None,
            "pending_cleanup": self.pending_cleanup,
            "local_indexes": dict(sorted(self.local_indexes.items())),
            "global_indexes": {
                attribute: dict(shape) for attribute, shape
                in sorted(self.global_indexes.items())},
        }
        payload = json.dumps(doc, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        header = f"crc32:{zlib.crc32(payload):08x}\n".encode("ascii")
        return header + payload

    @classmethod
    def decode(cls, data: bytes) -> "ClusterManifest":
        """Parse and CRC-verify one manifest; raises CorruptionError."""
        newline = data.find(b"\n")
        if newline < 0 or not data.startswith(b"crc32:"):
            raise CorruptionError("cluster manifest missing CRC header")
        try:
            expected = int(data[6:newline], 16)
        except ValueError as exc:
            raise CorruptionError(
                f"malformed cluster manifest CRC: {data[:newline]!r}"
            ) from exc
        payload = data[newline + 1:]
        actual = zlib.crc32(payload)
        if actual != expected:
            raise CorruptionError(
                f"cluster manifest CRC mismatch: stored {expected:08x}, "
                f"computed {actual:08x}")
        try:
            doc = json.loads(payload)
        except ValueError as exc:
            raise CorruptionError(
                f"cluster manifest is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("magic") != _MAGIC:
            raise CorruptionError(
                f"cluster manifest has wrong magic: {doc.get('magic')!r}"
                if isinstance(doc, dict) else "cluster manifest not a dict")
        try:
            in_flight = doc["in_flight"]
            return cls(
                base_shards=int(doc["base_shards"]),
                replication_factor=int(doc["replication_factor"]),
                epoch=int(doc["epoch"]),
                splits=tuple((int(parent), int(new_id))
                             for parent, new_id in doc["splits"]),
                in_flight=(int(in_flight[0]), int(in_flight[1]))
                if in_flight else None,
                pending_cleanup=bool(doc["pending_cleanup"]),
                local_indexes=dict(doc["local_indexes"]),
                global_indexes={attribute: dict(shape) for attribute, shape
                                in doc["global_indexes"].items()},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptionError(
                f"cluster manifest field error: {exc!r}") from exc

    # -- durable installation ----------------------------------------------

    def save(self, vfs: VFS) -> None:
        """Install this manifest atomically.

        Same protocol as the shard-level ``CURRENT`` (§6): write and sync
        the full content to ``CLUSTER.tmp``, then rename over ``CLUSTER``.
        A crash at any of the four mutating operations leaves either the
        previous manifest or this one — the topology drill enumerates
        every one of those crash points.
        """
        handle = vfs.create(CLUSTER_TMP_FILE)
        try:
            handle.append(self.encode(), Category.MANIFEST)
            handle.sync()
        finally:
            handle.close()
        vfs.rename(CLUSTER_TMP_FILE, CLUSTER_FILE)


def load_cluster_manifest(vfs: VFS) -> ClusterManifest | None:
    """The durable topology, or ``None`` for a fresh cluster directory.

    A stranded ``CLUSTER.tmp`` (crash between sync and rename) is
    deleted — its content was never installed.
    """
    if vfs.exists(CLUSTER_TMP_FILE):
        vfs.delete_if_exists(CLUSTER_TMP_FILE)
    if not vfs.exists(CLUSTER_FILE):
        return None
    return ClusterManifest.decode(
        vfs.read_whole(CLUSTER_FILE, Category.MANIFEST))
