"""Conjunctive multi-attribute lookups."""

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.errors import InvalidArgumentError
from repro.lsm.options import Options


def _db(kinds):
    options = Options(block_size=1024, sstable_target_size=4 * 1024,
                      memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    return SecondaryIndexedDB.open_memory(indexes=kinds, options=options)


def _load(db, count=120):
    state = {}
    for i in range(count):
        doc = {"UserID": f"u{i % 4}", "lang": f"l{i % 3}", "n": i}
        key = f"t{i:04d}"
        db.put(key, doc)
        state[key] = doc
    return state


class TestMultiLookup:
    def test_conjunction_matches_bruteforce(self):
        db = _db({"UserID": IndexKind.LAZY, "lang": IndexKind.COMPOSITE})
        state = _load(db)
        got = {r.key for r in db.multi_lookup(
            {"UserID": "u1", "lang": "l2"})}
        want = {key for key, doc in state.items()
                if doc["UserID"] == "u1" and doc["lang"] == "l2"}
        assert got == want and want  # non-trivial intersection
        db.close()

    def test_results_newest_first_and_top_k(self):
        db = _db({"UserID": IndexKind.LAZY, "lang": IndexKind.LAZY})
        _load(db)
        results = db.multi_lookup({"UserID": "u1", "lang": "l2"}, k=2)
        assert len(results) == 2
        assert results[0].seq > results[1].seq
        full = db.multi_lookup({"UserID": "u1", "lang": "l2"})
        assert [r.key for r in results] == [r.key for r in full[:2]]
        db.close()

    def test_single_condition_degenerates_to_lookup(self):
        db = _db({"UserID": IndexKind.COMPOSITE})
        _load(db)
        multi = [r.key for r in db.multi_lookup({"UserID": "u2"})]
        single = [r.key for r in db.lookup("UserID", "u2",
                                           early_termination=False)]
        assert multi == single
        db.close()

    def test_mixed_index_kinds(self):
        db = _db({"UserID": IndexKind.EMBEDDED, "lang": IndexKind.EAGER})
        state = _load(db)
        got = {r.key for r in db.multi_lookup(
            {"UserID": "u0", "lang": "l0"})}
        want = {key for key, doc in state.items()
                if doc["UserID"] == "u0" and doc["lang"] == "l0"}
        assert got == want
        db.close()

    def test_disjoint_conditions_empty(self):
        db = _db({"UserID": IndexKind.LAZY, "n": IndexKind.LAZY})
        _load(db)
        assert db.multi_lookup({"UserID": "u1", "n": 0}) == []
        db.close()

    def test_unindexed_attribute_rejected(self):
        db = _db({"UserID": IndexKind.LAZY})
        _load(db, 10)
        with pytest.raises(InvalidArgumentError):
            db.multi_lookup({"UserID": "u1", "lang": "l0"})
        db.close()

    def test_empty_conditions_rejected(self):
        db = _db({"UserID": IndexKind.LAZY})
        with pytest.raises(InvalidArgumentError):
            db.multi_lookup({})
        db.close()

    def test_respects_updates(self):
        db = _db({"UserID": IndexKind.LAZY, "lang": IndexKind.LAZY})
        db.put("t1", {"UserID": "u1", "lang": "fr"})
        db.put("t1", {"UserID": "u1", "lang": "en"})
        assert db.multi_lookup({"UserID": "u1", "lang": "fr"}) == []
        assert [r.key for r in db.multi_lookup(
            {"UserID": "u1", "lang": "en"})] == ["t1"]
        db.close()
