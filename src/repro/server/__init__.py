"""Network serving layer: ``repro serve`` and its client.

The engine so far has been embedded — every caller shares the server
process.  This package puts a socket in front of it (ROADMAP item 1):

* :mod:`repro.server.protocol` — a length-prefixed framed wire format
  with a small self-describing value codec (no third-party
  serializer needed);
* :mod:`repro.server.server` — a threaded socket server whose
  concurrent connection handlers feed writes straight into the
  engine's leader/follower group commit, with per-connection
  backpressure tied to the write-stall ladder;
* :mod:`repro.server.client` — a pooled, pipelining client.

See DESIGN.md §10 for the protocol and backpressure design.
"""

from repro.server.client import Client, Pipeline, RemoteError
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameTooLargeError,
    ProtocolError,
    TornFrameError,
)
from repro.server.server import Server

__all__ = [
    "Client",
    "Pipeline",
    "RemoteError",
    "Server",
    "ProtocolError",
    "FrameTooLargeError",
    "TornFrameError",
    "DEFAULT_MAX_FRAME_BYTES",
]
