"""Model-checked interleaving properties of the concurrent engine.

``explore_interleavings`` enumerates *every* schedule of a small scripted
workload, so these are exhaustive model checks, not samples: a property
that holds here holds for all interleavings of that workload.  The larger
randomized sweep at the end trades exhaustiveness for a bigger workload,
checking every snapshot read against a sequence-number prefix model.
"""

from __future__ import annotations

import random
import threading

from repro.lsm.db import DB, WriteBatch
from repro.lsm.options import Options
from repro.lsm.testing import DeterministicScheduler, explore_interleavings


def _torn_read_scenario(sched):
    """One writer of two 2-key batches vs one snapshot reader."""
    opts = Options(background_compaction=True, step_hook=sched)
    db = DB.open_memory(opts)
    observed = []

    def writer():
        db.write(WriteBatch().put(b"a", b"1").put(b"b", b"1"))
        db.write(WriteBatch().put(b"a", b"2").put(b"b", b"2"))

    def reader():
        with db.snapshot() as snap:
            observed.append((db.get(b"a", snap), db.get(b"b", snap)))

    t_w = sched.spawn("w", writer)
    t_r = sched.spawn("r", reader)
    sched.wait_threads(t_w, t_r)
    final = tuple(sorted(db.scan()))
    db.close()
    sched.shutdown()
    return tuple(observed), final


def test_no_torn_batch_reads_exhaustive():
    results = explore_interleavings(_torn_read_scenario,
                                    max_interleavings=800)
    assert len(results) < 800, "choice tree did not converge"
    # Each batch writes both keys atomically: a snapshot may see neither
    # batch, the first, or both -- never half of one.
    legal = {(None, None), (b"1", b"1"), (b"2", b"2")}
    outcomes = set()
    for _decisions, (observed, final) in results:
        assert len(observed) == 1
        assert observed[0] in legal, f"torn read: {observed[0]}"
        assert final == ((b"a", b"2"), (b"b", b"2"))
        outcomes.add(observed[0])
    assert len(outcomes) >= 2, "enumeration never varied the read point"


def _monotonic_read_scenario(sched):
    """Reader without a snapshot: two gets, each pinning the current seq."""
    opts = Options(background_compaction=True, step_hook=sched)
    db = DB.open_memory(opts)
    observed = []

    def writer():
        db.write(WriteBatch().put(b"a", b"1").put(b"b", b"1"))
        db.write(WriteBatch().put(b"a", b"2").put(b"b", b"2"))

    def reader():
        value_a = db.get(b"a")
        value_b = db.get(b"b")
        observed.append((value_a, value_b))

    t_w = sched.spawn("w", writer)
    t_r = sched.spawn("r", reader)
    sched.wait_threads(t_w, t_r)
    db.close()
    sched.shutdown()
    return tuple(observed)


def test_unsnapshotted_reads_never_go_backwards():
    results = explore_interleavings(_monotonic_read_scenario,
                                    max_interleavings=800)
    assert len(results) < 800, "choice tree did not converge"
    # Two separate gets are two separate read points, so mixed pairs are
    # fine as long as the second read is at least as new as the first.
    forbidden = {(b"1", None), (b"2", None), (b"2", b"1")}
    outcomes = set()
    for _decisions, observed in results:
        assert observed[0] not in forbidden, observed[0]
        outcomes.add(observed[0])
    assert len(outcomes) >= 3


def _delete_scenario(sched):
    """put k then delete k, vs a reader taking two snapshots."""
    opts = Options(background_compaction=True, step_hook=sched)
    db = DB.open_memory(opts)
    observed = []

    def writer():
        db.put(b"k", b"1")
        db.delete(b"k")

    def reader():
        for _ in range(2):
            with db.snapshot() as snap:
                observed.append((snap.seq, db.get(b"k", snap)))

    t_w = sched.spawn("w", writer)
    t_r = sched.spawn("r", reader)
    sched.wait_threads(t_w, t_r)
    db.close()
    sched.shutdown()
    return tuple(observed)


def test_no_resurrected_deletes_exhaustive():
    results = explore_interleavings(_delete_scenario, max_interleavings=800)
    assert len(results) < 800, "choice tree did not converge"
    model = {0: None, 1: b"1", 2: None}
    for _decisions, observed in results:
        assert len(observed) == 2
        seqs = [seq for seq, _value in observed]
        assert seqs == sorted(seqs), f"snapshot seq went backwards: {observed}"
        for seq, value in observed:
            assert value == model[seq], f"seq {seq} read {value!r}"


def test_snapshot_scans_match_sequence_prefix_model():
    """Randomized sweep: every snapshot scan equals the committed prefix.

    Two writers issue single-op batches (so ``DB.write``'s returned
    sequence identifies each op); a reader takes snapshots and scans.
    Each scan must equal the state obtained by replaying exactly the ops
    with ``seq <= snapshot.seq`` -- prefix consistency under rotation,
    background flush and compaction.
    """
    keys = [b"k0", b"k1", b"k2", b"k3"]
    for seed in range(20):
        sched = DeterministicScheduler(seed=seed)
        opts = Options(background_compaction=True, memtable_budget=600,
                       l0_compaction_trigger=2, step_hook=sched)
        db = DB.open_memory(opts)
        committed = []  # (seq, key, value-or-None)
        observations = []  # (snapshot seq, scan items)
        lock = threading.Lock()

        def writer(tid):
            rng = random.Random(1000 * seed + tid)
            for i in range(8):
                key = keys[rng.randrange(len(keys))]
                if rng.random() < 0.3:
                    seq = db.write(WriteBatch().delete(key))
                    record = (seq, key, None)
                else:
                    value = b"w%d-%d" % (tid, i)
                    seq = db.write(WriteBatch().put(key, value))
                    record = (seq, key, value)
                with lock:
                    committed.append(record)

        def reader():
            for _ in range(4):
                with db.snapshot() as snap:
                    observations.append(
                        (snap.seq, tuple(db.scan(snapshot=snap))))

        threads = [sched.spawn("w0", writer, 0),
                   sched.spawn("w1", writer, 1),
                   sched.spawn("r", reader)]
        sched.wait_threads(*threads)
        db.flush()
        final = dict(db.scan())
        db.close()
        sched.shutdown()

        def model_at(max_seq):
            state = {}
            for seq, key, value in sorted(committed):
                if seq > max_seq:
                    break
                if value is None:
                    state.pop(key, None)
                else:
                    state[key] = value
            return state

        for snap_seq, items in observations:
            assert dict(items) == model_at(snap_seq), f"seed {seed}"
        assert final == model_at(max(seq for seq, _k, _v in committed))
