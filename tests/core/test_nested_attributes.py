"""Dotted-path (nested) secondary attributes."""

import pytest

from conftest import open_db

from repro.core.base import IndexKind
from repro.lsm.options import resolve_attribute_path

ALL = [IndexKind.EMBEDDED, IndexKind.EAGER, IndexKind.LAZY,
       IndexKind.COMPOSITE, IndexKind.NOINDEX]


class TestPathResolution:
    def test_flat_key(self):
        assert resolve_attribute_path({"a": 1}, "a") == 1

    def test_nested_descent(self):
        doc = {"user": {"id": "u1", "geo": {"city": "NYC"}}}
        assert resolve_attribute_path(doc, "user.id") == "u1"
        assert resolve_attribute_path(doc, "user.geo.city") == "NYC"

    def test_literal_dotted_key_wins(self):
        doc = {"user.id": "flat", "user": {"id": "nested"}}
        assert resolve_attribute_path(doc, "user.id") == "flat"

    def test_missing_steps(self):
        doc = {"user": {"id": "u1"}}
        assert resolve_attribute_path(doc, "user.name") is None
        assert resolve_attribute_path(doc, "nothing.here") is None
        assert resolve_attribute_path(doc, "user.id.deeper") is None

    def test_non_dict_intermediate(self):
        assert resolve_attribute_path({"a": [1, 2]}, "a.b") is None


@pytest.mark.parametrize("kind", ALL, ids=lambda k: k.value)
class TestNestedIndexing:
    def test_lookup_on_nested_attribute(self, index_options, kind):
        db = open_db(kind, index_options, attributes=("user.id",))
        for i in range(40):
            db.put(f"t{i:03d}", {"user": {"id": f"u{i % 4}"},
                                 "Body": "x" * 20})
        got = [r.key for r in db.lookup("user.id", "u2",
                                        early_termination=False)]
        assert got == [f"t{i:03d}" for i in range(39, -1, -1) if i % 4 == 2]
        db.close()

    def test_range_on_nested_numeric(self, index_options, kind):
        db = open_db(kind, index_options, attributes=("geo.lat",))
        for i in range(30):
            db.put(f"p{i:03d}", {"geo": {"lat": float(i)}})
        got = sorted(r.key for r in db.range_lookup(
            "geo.lat", 10.0, 14.0, early_termination=False))
        assert got == [f"p{i:03d}" for i in range(10, 15)]
        db.close()

    def test_nested_updates_and_deletes(self, index_options, kind):
        db = open_db(kind, index_options, attributes=("user.id",))
        db.put("t1", {"user": {"id": "u1"}})
        db.put("t1", {"user": {"id": "u2"}})
        assert db.lookup("user.id", "u1", early_termination=False) == []
        assert [r.key for r in db.lookup("user.id", "u2",
                                         early_termination=False)] == ["t1"]
        db.delete("t1")
        assert db.lookup("user.id", "u2", early_termination=False) == []
        db.close()

    def test_records_without_the_path_skipped(self, index_options, kind):
        db = open_db(kind, index_options, attributes=("user.id",))
        db.put("t1", {"user": {"id": "u1"}})
        db.put("t2", {"user": "not-an-object"})
        db.put("t3", {"other": 1})
        got = [r.key for r in db.lookup("user.id", "u1",
                                        early_termination=False)]
        assert got == ["t1"]
        db.close()

    def test_survives_compaction(self, index_options, kind):
        db = open_db(kind, index_options, attributes=("user.id",))
        for i in range(200):
            db.put(f"t{i:03d}", {"user": {"id": f"u{i % 3}"},
                                 "Body": "b" * 30})
        db.compact_all()
        got = [r.key for r in db.lookup("user.id", "u0", k=3,
                                        early_termination=False)]
        assert got == ["t198", "t195", "t192"]
        db.close()
