"""Shared fixtures for the corruption-survival drills.

Every drill runs on a :class:`~repro.lsm.faults.FaultInjectingVFS` so bit
rot, transient EIO and disk-full are deterministic test inputs.  The
geometry is tiny (a few hundred rows already span several tables) and
compression is off, so a flipped stored byte maps one-to-one onto a
flipped payload byte — exactly the damage the block CRCs must catch.
"""

from __future__ import annotations

import pytest

from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectingVFS
from repro.lsm.options import Options

from drill_utils import corruption_options, populate


@pytest.fixture
def quarantine_options() -> Options:
    return corruption_options()


@pytest.fixture
def paranoid_options() -> Options:
    """Quarantine policy plus per-read CRC checks: inline detection."""
    return corruption_options(paranoid_checks=True)


@pytest.fixture
def faulty_db():
    """``(vfs, db, expected)``: a populated multi-table DB on a faulty disk."""
    vfs = FaultInjectingVFS()
    db = DB.open(vfs, "db", corruption_options())
    expected = populate(db)
    yield vfs, db, expected
    db.close()
