"""Operation records emitted by the workload generators (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.core.records import Document


@dataclass(frozen=True)
class Put:
    """PUT(k, v); ``is_update`` marks re-insertion of an existing key."""

    key: str
    document: Document
    is_update: bool = False

    op_name = "put"


@dataclass(frozen=True)
class Get:
    """GET(k)."""

    key: str

    op_name = "get"


@dataclass(frozen=True)
class Delete:
    """DEL(k)."""

    key: str

    op_name = "delete"


@dataclass(frozen=True)
class Lookup:
    """LOOKUP(A, a, K); ``k=None`` is the paper's "no limit"."""

    attribute: str
    value: Any
    k: int | None

    op_name = "lookup"


@dataclass(frozen=True)
class RangeLookup:
    """RANGELOOKUP(A, a, b, K)."""

    attribute: str
    low: Any
    high: Any
    k: int | None

    op_name = "range_lookup"


Operation = Union[Put, Get, Delete, Lookup, RangeLookup]
