"""Core-layer edge cases across all index variants."""

import pytest

from conftest import open_db

from repro.core.base import IndexKind

ALL = [IndexKind.EMBEDDED, IndexKind.EAGER, IndexKind.LAZY,
       IndexKind.COMPOSITE, IndexKind.NOINDEX]


@pytest.mark.parametrize("kind", ALL, ids=lambda k: k.value)
class TestAttributeValueTypes:
    def test_unicode_values(self, index_options, kind):
        db = open_db(kind, index_options)
        db.put("t1", {"UserID": "ユーザー✓"})
        db.put("t2", {"UserID": "ユーザー✓"})
        got = [r.key for r in db.lookup("UserID", "ユーザー✓",
                                        early_termination=False)]
        assert got == ["t2", "t1"]
        db.close()

    def test_numeric_values(self, index_options, kind):
        db = open_db(kind, index_options, attributes=("score",))
        for i in range(30):
            db.put(f"t{i:02d}", {"score": i % 5})
        got = {r.key for r in db.lookup("score", 3,
                                        early_termination=False)}
        assert got == {f"t{i:02d}" for i in range(30) if i % 5 == 3}
        db.close()

    def test_negative_and_float_ranges(self, index_options, kind):
        db = open_db(kind, index_options, attributes=("delta",))
        values = [-2.5, -1.0, 0.0, 0.5, 1.5, 3.0]
        for i, value in enumerate(values):
            db.put(f"t{i}", {"delta": value})
        got = sorted(r.document["delta"] for r in db.range_lookup(
            "delta", -1.5, 1.0, early_termination=False))
        assert got == [-1.0, 0.0, 0.5]
        db.close()

    def test_int_and_float_equivalent_in_range(self, index_options, kind):
        db = open_db(kind, index_options, attributes=("n",))
        db.put("a", {"n": 2})
        db.put("b", {"n": 2.0})
        got = {r.key for r in db.range_lookup("n", 1.5, 2.5,
                                              early_termination=False)}
        assert got == {"a", "b"}
        db.close()

    def test_missing_attribute_never_matches(self, index_options, kind):
        db = open_db(kind, index_options)
        db.put("t1", {"Other": "x"})
        db.put("t2", {"UserID": None})  # null attribute: not indexed
        assert db.lookup("UserID", "x", early_termination=False) == []
        assert db.lookup("UserID", "y", early_termination=False) == []
        db.close()

    def test_querying_for_none_raises(self, index_options, kind):
        """``val(A) not null`` is the indexing rule; None is unqueryable."""
        db = open_db(kind, index_options)
        db.put("t1", {"UserID": "u1"})
        with pytest.raises(TypeError):
            db.lookup("UserID", None)
        db.close()


@pytest.mark.parametrize("kind", ALL, ids=lambda k: k.value)
class TestQueryEdges:
    def test_empty_database(self, index_options, kind):
        db = open_db(kind, index_options)
        assert db.lookup("UserID", "anyone") == []
        assert db.range_lookup("UserID", "a", "z") == []
        db.close()

    def test_k_larger_than_matches(self, index_options, kind):
        db = open_db(kind, index_options)
        db.put("t1", {"UserID": "u1"})
        results = db.lookup("UserID", "u1", k=100)
        assert [r.key for r in results] == ["t1"]
        db.close()

    def test_k_one(self, index_options, kind):
        db = open_db(kind, index_options)
        for i in range(20):
            db.put(f"t{i:02d}", {"UserID": "u1"})
        results = db.lookup("UserID", "u1", k=1)
        assert [r.key for r in results] == ["t19"]
        db.close()

    def test_single_point_range(self, index_options, kind):
        db = open_db(kind, index_options)
        db.put("t1", {"UserID": "u1"})
        db.put("t2", {"UserID": "u2"})
        got = [r.key for r in db.range_lookup("UserID", "u1", "u1",
                                              early_termination=False)]
        assert got == ["t1"]
        db.close()

    def test_everything_deleted(self, index_options, kind):
        db = open_db(kind, index_options)
        for i in range(30):
            db.put(f"t{i:02d}", {"UserID": "u1"})
        for i in range(30):
            db.delete(f"t{i:02d}")
        assert db.lookup("UserID", "u1", early_termination=False) == []
        db.compact_all()
        assert db.lookup("UserID", "u1", early_termination=False) == []
        db.close()

    def test_results_carry_full_documents(self, index_options, kind):
        db = open_db(kind, index_options)
        doc = {"UserID": "u1", "Body": "text", "extra": [1, {"n": 2}]}
        db.put("t1", doc)
        results = db.lookup("UserID", "u1", early_termination=False)
        assert results[0].document == doc
        assert results[0].value == doc  # paper-notation alias
        db.close()


@pytest.mark.parametrize("kind", ALL, ids=lambda k: k.value)
def test_value_flapping(index_options, kind):
    """A record oscillating between two values must always land exactly
    where its latest version says."""
    db = open_db(kind, index_options)
    for round_number in range(9):
        db.put("flapper", {"UserID": f"u{round_number % 2}"})
        expected_user = f"u{round_number % 2}"
        other_user = f"u{(round_number + 1) % 2}"
        assert [r.key for r in db.lookup(
            "UserID", expected_user, early_termination=False)] == ["flapper"]
        assert db.lookup("UserID", other_user,
                         early_termination=False) == []
    db.close()
