"""Engine configuration.

:class:`Options` collects every tunable of the storage engine in one
dataclass, mirroring LevelDB's ``Options`` struct.  The defaults are the
paper's LevelDB defaults scaled down by roughly 32x so that level structure
(multiple populated levels, frequent compactions) emerges at laptop-scale
dataset sizes: the relative shapes of the paper's experiments are driven by
the *number of levels* and the *block-to-dataset ratio*, both of which this
scaling preserves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

AttributeExtractor = Callable[[bytes], dict[str, Any]]
MergeOperator = Callable[[bytes, list[bytes]], bytes]
SequenceOracle = Callable[[int], int]
StepHook = Callable[[str], None]


def resolve_attribute_path(document: dict[str, Any], path: str) -> Any:
    """Value of ``path`` in ``document``; dots descend into sub-objects.

    ``resolve_attribute_path({"user": {"id": "u1"}}, "user.id") == "u1"``.
    A flat key containing the literal path wins over descent, so documents
    that happen to use dotted key names keep working.  Missing steps (or
    non-dict intermediates) yield ``None`` — the "attribute absent" value.
    """
    if path in document:
        return document[path]
    current: Any = document
    for step in path.split("."):
        if not isinstance(current, dict) or step not in current:
            return None
        current = current[step]
    return current


def json_attribute_extractor(value: bytes) -> dict[str, Any]:
    """Default extractor: parse the value as a JSON object.

    The paper stores secondary attributes inside the JSON value of each
    entry (``v = {A1: val(A1), ..., Al: val(Al)}``).  Non-JSON or non-object
    values simply expose no secondary attributes.
    """
    try:
        doc = json.loads(value)
    except (ValueError, UnicodeDecodeError):
        return {}
    return doc if isinstance(doc, dict) else {}


@dataclass
class Options:
    """Tunables for one :class:`repro.lsm.db.DB` instance.

    Attributes
    ----------
    block_size:
        Approximate uncompressed size of one SSTable data block.  LevelDB
        default is 4 KiB; the paper's I/O analysis counts accesses at this
        granularity.
    sstable_target_size:
        Compaction output files are cut when they reach this size (LevelDB
        uses 2 MiB; scaled here).
    memtable_budget:
        The MemTable is flushed once its approximate memory usage exceeds
        this budget (LevelDB's ``write_buffer_size``).
    l0_compaction_trigger:
        Number of level-0 files that triggers an L0->L1 compaction.
    max_levels:
        Number of levels including level 0.
    l1_target_size / level_size_multiplier:
        Level *i* (i >= 1) holds at most
        ``l1_target_size * level_size_multiplier**(i-1)`` bytes; LevelDB uses
        10 MiB and 10x.
    bloom_bits_per_key:
        Bits per key of the *primary-key* bloom filter stored per data block.
    secondary_bloom_bits_per_key:
        Bits per key of each *secondary-attribute* bloom filter (the paper
        settled on 100 after the Appendix C.1 sweep).
    compression:
        ``"zlib"`` (stand-in for the paper's Snappy) or ``"none"``.
    compaction_style:
        ``"leveled"`` — LevelDB's partial merges: one round-robin-chosen
        file (or all of L0) merges with its overlap in the next level.
        ``"full_level"`` — AsterixDB's style, per the paper's Section 1
        remark that "in some [systems] like AsterixDB, lower levels have
        just one but larger SSTable": an over-budget level merges *whole*
        into the next one.  Fewer, bigger merges; every key of a level is
        rewritten each round.
    block_cache_size:
        LRU cache capacity in bytes for decompressed data blocks.  The paper
        ran with no block cache; 0 disables it.
    max_open_files:
        Bound on the table cache: how many opened SSTable readers (index
        block, bloom filters, zone maps — the memory-resident metadata) may
        be held at once before the least-recently-used reader is closed.
        The paper sets 30000 "so that most of the bloom filters and other
        metadata can reside in memory"; that stays the default.  Hit/miss
        counts are surfaced via :meth:`repro.lsm.db.DB.stats`.
    indexed_attributes:
        Secondary attributes for which the SSTable builder embeds per-block
        bloom filters and zone maps (the Embedded Index of Section 3).
        Empty for index *tables* and for unindexed primary tables.
    attribute_extractor:
        Maps a stored value to its ``{attribute: value}`` dict; JSON by
        default.
    merge_operator:
        Combines merge operands during reads and compaction
        (``merge(user_key, operands_oldest_first) -> value``).  Required to
        use :meth:`repro.lsm.db.DB.merge`; the Lazy index supplies a
        posting-list union operator.
    sequence_oracle:
        ``allocate(count) -> first_seq``: an external monotonic sequence
        allocator.  When set, writes draw their sequence numbers from it
        instead of the local counter, making recency comparable *across*
        databases — the timestamp-oracle pattern the distributed layer
        (:mod:`repro.dist`) uses for cross-shard top-K.  Allocated numbers
        must exceed every previously returned number.
    paranoid_checks:
        Verify every block CRC on read (always on for meta blocks).  Off by
        default — the paper's I/O accounting reads data blocks without a
        per-read checksum pass — so silent bit rot in *data* blocks is only
        caught by scans/compactions that decode the block, by
        :meth:`repro.lsm.db.DB.verify_integrity`, or by the scrubber
        (:mod:`repro.lsm.scrub`), both of which always verify regardless of
        this option.  See TUNING.md for the tradeoff.
    on_corruption:
        What a read does when a data block fails its integrity check.
        ``"raise"`` (default, LevelDB's behaviour) propagates
        :class:`~repro.lsm.errors.CorruptionError` to the caller.
        ``"quarantine"`` contains the damage instead: the affected table is
        quarantined (served around by reads, its blocks evicted from every
        cache, counted in ``DB.stats()["corruption"]``) and corrupt
        filter/bloom blocks degrade to filter-less reads — filters are
        advisory, so degraded reads stay correct, just slower.  Quarantined
        *index* tables can be rebuilt from the primary records
        (:meth:`repro.core.database.SecondaryIndexedDB.heal_indexes`).
    read_retries / read_retry_backoff_seconds:
        Transient read errors (``EIO`` that is not a checksum failure) are
        retried up to ``read_retries`` times, sleeping
        ``read_retry_backoff_seconds * 2**attempt`` (bounded) between
        attempts, before being treated as corruption.  The default backoff
        of 0 keeps the deterministic test harness instant.
    sync_writes:
        Fsync the WAL after every write batch (LocalVFS only).
    max_manifest_size:
        The manifest accumulates one edit per flush/compaction; past this
        size it is *rolled*: a fresh manifest holding one snapshot edit of
        the current state replaces it (LevelDB's manifest reuse policy).
        Keeps metadata from dominating "database size" on compaction-heavy
        tables.
    disable_auto_compaction:
        Flushes stop scheduling compactions; only
        :meth:`~repro.lsm.db.DB.compact_range` (or direct compactor calls)
        merge levels.  Used by experiments that isolate compaction cost.
        With compaction off, level 0 can genuinely pile up, so
        ``l0_stop_writes_trigger`` becomes a hard limit: writes raise
        :class:`~repro.lsm.errors.WriteStallError` beyond it — LevelDB's
        stop-writes backpressure, surfaced as an error instead of a sleep
        because this engine is synchronous.
    background_compaction:
        Move flushes and compactions off the foreground write path (DESIGN.md
        §8).  When on, a full write sends the MemTable into an *immutable*
        handoff buffer that a background thread flushes while a fresh
        MemTable absorbs writes; compactions run on the same thread;
        concurrent writers share one WAL append/sync per group (group
        commit); and write stalls become waits (slowdown pause at
        ``l0_slowdown_writes_trigger``, hard wait at
        ``l0_stop_writes_trigger``) instead of errors.  Off by default: the
        paper's experiments depend on the synchronous engine's byte-identical
        determinism, which the golden-vector tests pin.
    l0_slowdown_writes_trigger:
        With ``background_compaction``, a writer pauses briefly once level 0
        holds this many files (LevelDB's soft backpressure), giving the
        background thread a head start before the hard stop trigger.
    slowdown_sleep_seconds:
        Length of one slowdown pause (LevelDB sleeps 1 ms).
    max_write_group_bytes:
        Group commit stops coalescing queued writers once the combined
        encoded batches reach this size (LevelDB caps groups at 1 MiB).
    step_hook:
        Test-only instrumentation: when set, the engine calls
        ``step_hook(label)`` at the named yield points of the background
        pipeline (``"write:wal"``, ``"bg:flush:install"``, ...), and every
        internal wait spins through the hook instead of blocking on a
        condition variable.  The deterministic scheduler in
        :mod:`repro.lsm.testing` uses this to serialise all threads and
        enumerate interleavings.  ``None`` (the default) costs nothing.
    compaction_processes:
        Ship compactions to this many worker *processes* (DESIGN.md §11),
        escaping the GIL: the coordinator thread blocks on a pipe while a
        worker burns CPU on merge/fold/compress in another interpreter.
        Requires a filesystem-backed VFS (``LocalVFS``); on a memory VFS the
        engine logs a warning and falls back to in-process compaction.
        0 (the default) keeps the current threaded behaviour and the
        paper's byte-identical outputs (worker output is byte-identical
        too — the golden-vector suite pins this — but defaults stay
        conservative).  Flushes always stay in-process: they read the live
        MemTable, which only exists in the coordinator.
    shm_cache_bytes:
        Size of a ``multiprocessing.shared_memory`` segment holding
        decoded, CRC-verified data-block bytes keyed by
        ``(file_number, offset)``, shared between the serving process and
        compaction workers.  Workers pre-warm blocks they write so the
        server reads them without re-reading or re-decompressing.  0 (the
        default) disables the shared cache; it layers *behind* the
        per-process ``block_cache_size`` LRU when both are enabled.
    shm_slot_bytes:
        Payload capacity of one shared-cache slot.  Blocks larger than a
        slot are simply not shared.  0 (the default) auto-sizes to
        ``2 * block_size``, which fits every block the builder cuts except
        pathological single-entry blocks.
    """

    block_size: int = 4096
    sstable_target_size: int = 64 * 1024
    memtable_budget: int = 256 * 1024
    l0_compaction_trigger: int = 4
    l0_stop_writes_trigger: int = 12
    max_levels: int = 7
    l1_target_size: int = 512 * 1024
    level_size_multiplier: int = 10
    bloom_bits_per_key: int = 10
    secondary_bloom_bits_per_key: int = 100
    compression: str = "zlib"
    compaction_style: str = "leveled"
    block_cache_size: int = 0
    max_open_files: int = 30000
    indexed_attributes: tuple[str, ...] = ()
    attribute_extractor: AttributeExtractor = field(
        default=json_attribute_extractor, repr=False)
    merge_operator: MergeOperator | None = field(default=None, repr=False)
    sequence_oracle: SequenceOracle | None = field(default=None, repr=False)
    paranoid_checks: bool = False
    on_corruption: str = "raise"
    read_retries: int = 2
    read_retry_backoff_seconds: float = 0.0
    sync_writes: bool = False
    disable_auto_compaction: bool = False
    max_manifest_size: int = 64 * 1024
    background_compaction: bool = False
    l0_slowdown_writes_trigger: int = 8
    slowdown_sleep_seconds: float = 0.001
    max_write_group_bytes: int = 1 << 20
    step_hook: StepHook | None = field(default=None, repr=False)
    compaction_processes: int = 0
    shm_cache_bytes: int = 0
    shm_slot_bytes: int = 0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.sstable_target_size < self.block_size:
            raise ValueError("sstable_target_size must be >= block_size")
        if self.max_levels < 2:
            raise ValueError("max_levels must be at least 2")
        if self.level_size_multiplier < 2:
            raise ValueError("level_size_multiplier must be at least 2")
        if self.compression not in ("zlib", "none"):
            raise ValueError(f"unknown compression: {self.compression!r}")
        if self.compaction_style not in ("leveled", "full_level"):
            raise ValueError(
                f"unknown compaction_style: {self.compaction_style!r}")
        if self.l0_stop_writes_trigger < self.l0_compaction_trigger:
            raise ValueError(
                "l0_stop_writes_trigger must be >= l0_compaction_trigger")
        # Keep the soft trigger inside [compaction_trigger, stop_trigger] so
        # callers tuning only the hard triggers get a coherent ladder.
        self.l0_slowdown_writes_trigger = min(
            max(self.l0_slowdown_writes_trigger, self.l0_compaction_trigger),
            self.l0_stop_writes_trigger)
        if self.max_write_group_bytes < 1:
            raise ValueError("max_write_group_bytes must be positive")
        if self.max_open_files < 1:
            raise ValueError("max_open_files must be at least 1")
        if self.on_corruption not in ("raise", "quarantine"):
            raise ValueError(
                f"unknown on_corruption policy: {self.on_corruption!r}")
        if self.read_retries < 0:
            raise ValueError("read_retries must be >= 0")
        if self.read_retry_backoff_seconds < 0:
            raise ValueError("read_retry_backoff_seconds must be >= 0")
        if self.compaction_processes < 0:
            raise ValueError("compaction_processes must be >= 0")
        if self.shm_cache_bytes < 0:
            raise ValueError("shm_cache_bytes must be >= 0")
        if self.shm_slot_bytes < 0:
            raise ValueError("shm_slot_bytes must be >= 0")

    def max_bytes_for_level(self, level: int) -> float:
        """Size budget of ``level``; level 0 is governed by file count instead."""
        if level <= 0:
            return float("inf")
        return self.l1_target_size * (self.level_size_multiplier ** (level - 1))
