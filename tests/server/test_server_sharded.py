"""Serving a replicated cluster: the network layer over ShardedDB.

The replication smoke slice of the server suite: a Server bound to a
2-shard, RF=2 cluster must round-trip every client op, keep serving
through a replica kill (failover reads, writes still acked), and come
back to byte-identical replicas after revive + repair — all through the
wire protocol, never by touching the cluster directly.
"""

from __future__ import annotations

import pytest

from repro.core.base import IndexKind
from repro.dist.cluster import ShardedDB
from repro.lsm.options import Options
from repro.server import Client, RemoteError, Server


def _options():
    return Options(block_size=1024, sstable_target_size=4 * 1024,
                   memtable_budget=4 * 1024, l1_target_size=16 * 1024)


@pytest.fixture()
def sharded_server():
    cluster = ShardedDB.open_memory(
        num_shards=2, replication_factor=2,
        local_indexes={"UserID": IndexKind.LAZY}, options=_options())
    server = Server(cluster)
    server.start()
    yield server, cluster
    server.close()
    cluster.close()


def connect(server: Server, **kwargs) -> Client:
    host, port = server.address
    return Client(host, port, **kwargs)


def test_document_round_trip_over_the_wire(sharded_server):
    server, cluster = sharded_server
    with connect(server) as client:
        seqs = [client.put(f"t{i}", {"UserID": f"u{i % 2}", "n": i})
                for i in range(20)]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert client.get("t7") == {"UserID": "u1", "n": 7}
        assert client.get("missing") is None
        client.delete("t7")
        assert client.get("t7") is None
        hits = client.lookup("UserID", "u1")
        assert [key for key, _doc, _seq in hits] \
            == [f"t{i}" for i in (19, 17, 15, 13, 11, 9, 5, 3, 1)]
        ranged = client.range_lookup("UserID", "u0", "u1")
        assert len(ranged) == 19
        page = client.scan(limit=5)
        assert [key for key, _doc in page] == ["t0", "t1", "t10", "t11",
                                               "t12"]
    # Acked writes fanned out to every replica, not a server-side cache.
    for group in cluster.data_shards:
        assert len(set(group.replica_digests().values())) == 1


def test_serving_survives_a_replica_kill(sharded_server):
    server, cluster = sharded_server
    with connect(server) as client:
        for i in range(12):
            client.put(f"pre{i}", {"UserID": "u0", "n": i})
        cluster.kill_replica(0, 0)  # the shard-0 leader goes down
        # Reads fail over; writes keep acking on the surviving replica.
        assert client.get("pre3") == {"UserID": "u0", "n": 3}
        for i in range(12):
            client.put(f"post{i}", {"UserID": "u1", "n": i})
        assert client.get("post5") == {"UserID": "u1", "n": 5}
        assert [key for key, _d, _s in client.lookup("UserID", "u1")] \
            == [f"post{i}" for i in range(11, -1, -1)]
        assert cluster.data_shards[0].failover_reads > 0
        # Revive through the cluster, then verify parity over the wire.
        assert cluster.revive_replica(0, 0) == "stale"
        cluster.repair_shard(0)
        for group in cluster.data_shards:
            assert len(set(group.replica_digests().values())) == 1
        assert client.get("pre3") == {"UserID": "u0", "n": 3}
    report = cluster.verify_integrity()
    assert all(r.ok for r in report.values())


def test_all_replicas_down_is_an_error_not_a_hang(sharded_server):
    server, cluster = sharded_server
    with connect(server) as client:
        client.put("k1", {"UserID": "u0", "n": 1})
        cluster.kill_replica(1, 0)
        cluster.kill_replica(1, 1)
        # Ops that land on the dead shard report the outage to the peer;
        # the connection (and the other shard) keep working.
        dead, alive = 0, 0
        for i in range(20):
            try:
                client.put(f"probe{i}", {"UserID": "u0", "n": i})
                alive += 1
            except RemoteError as exc:
                assert "replica" in str(exc)
                dead += 1
        assert dead > 0 and alive > 0
        cluster.revive_replica(1, 0)
        cluster.revive_replica(1, 1)
        assert client.put("recovered", {"UserID": "u0", "n": 99}) > 0
        assert client.get("recovered") == {"UserID": "u0", "n": 99}


def test_concurrent_clients_on_a_replicated_cluster(sharded_server):
    server, cluster = sharded_server
    clients = [connect(server) for _ in range(4)]
    try:
        for round_no in range(8):
            for cid, client in enumerate(clients):
                client.put(f"c{cid}-{round_no:02d}",
                           {"UserID": f"u{cid}", "n": round_no})
        for cid, client in enumerate(clients):
            hits = client.lookup("UserID", f"u{cid}")
            assert [key for key, _d, _s in hits] \
                == [f"c{cid}-{r:02d}" for r in range(7, -1, -1)]
    finally:
        for client in clients:
            client.close()
    for group in cluster.data_shards:
        assert len(set(group.replica_digests().values())) == 1


def test_stats_reports_the_cluster_engine(sharded_server):
    server, _cluster = sharded_server
    with connect(server) as client:
        client.put("s1", {"UserID": "u0", "n": 1})
        stats = client.stats()
    assert stats["server"]["requests"] >= 2
    assert stats["db"]["num_shards"] == 2
    assert stats["db"]["replication_factor"] == 2
