"""Ablation: the Embedded index's GetLite validity check (Section 3).

The paper: "This simple optimization in Embedded Index significantly
reduces disk I/O."  The ablation compares LOOKUP read I/O with GetLite
(in-memory metadata probe, confirm-read only on bloom positives) against
the naive baseline (one full data-table GET per matched version).
"""

import pytest

from harness import BENCH_PROFILE, ResultTable, bench_options

from repro.core.database import SecondaryIndexedDB
from repro.core.embedded import EmbeddedIndex
from repro.core.validity import ValidityChecker
from repro.lsm.db import DB
from repro.lsm.vfs import MemoryVFS
from repro.workloads.tweets import TweetGenerator

_N = 2500
_RESULTS: dict = {}

_TABLE = ResultTable(
    "ablation_getlite",
    "Ablation — GetLite vs full-GET validity checks (Embedded LOOKUP)",
    ["validity_check", "read_blocks_per_lookup", "us_per_lookup"])


def _build(use_getlite):
    options = bench_options(indexed_attributes=("UserID",))
    primary = DB.open(MemoryVFS(), "data/primary", options)
    checker = ValidityChecker(primary)
    index = EmbeddedIndex("UserID", primary, checker,
                          use_getlite=use_getlite)
    db = SecondaryIndexedDB(primary, {"UserID": index}, checker)
    generator = TweetGenerator(BENCH_PROFILE, seed=41)
    for key, doc in generator.tweets(_N):
        db.put(key, doc)
    # Update a slice of records so stale versions exist for the validity
    # machinery to reject.
    generator2 = TweetGenerator(BENCH_PROFILE, seed=42)
    for i, (key, doc) in enumerate(generator2.tweets(_N // 4)):
        db.put(f"t{i * 4:010d}", doc)
    db.flush()
    return db


@pytest.mark.parametrize("use_getlite", [True, False],
                         ids=["getlite", "full-get"])
def test_ablation_getlite(benchmark, use_getlite):
    db = _build(use_getlite)
    users = [f"u{r:05d}" for r in range(25)]
    reads_before = db.primary.vfs.stats.read_blocks

    def run_lookups():
        for user in users:
            db.lookup("UserID", user, 10, early_termination=False)

    benchmark.pedantic(run_lookups, rounds=2, iterations=1)
    reads = (db.primary.vfs.stats.read_blocks - reads_before) \
        / (2 * len(users))
    label = "getlite" if use_getlite else "full-get"
    _TABLE.add(label, f"{reads:.1f}",
               f"{benchmark.stats.stats.mean * 1e6 / len(users):.0f}")
    _RESULTS[use_getlite] = reads
    db.close()
    if len(_RESULTS) == 2:
        _TABLE.write()
        # GetLite must cut the read I/O of validity checking.
        assert _RESULTS[True] < _RESULTS[False]
