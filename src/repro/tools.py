"""Maintenance CLI: inspect, dump, and verify on-disk databases.

Mirrors LevelDB's ``ldb``/``leveldbutil`` utilities::

    python -m repro stats  <directory> <db-name>
    python -m repro dump   <directory> <db-name> [--limit N]
    python -m repro verify <directory> <db-name>

``directory`` is a :class:`~repro.lsm.vfs.LocalVFS` root (where the
database's files live); ``db-name`` is the name it was opened under —
``data/primary`` for the primary table of a
:class:`~repro.core.database.SecondaryIndexedDB` opened as ``"data"``.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from repro.lsm.checker import verify_integrity
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.vfs import LocalVFS


def _open(directory: str, name: str, options: Options | None = None) -> DB:
    return DB.open(LocalVFS(directory), name, options or Options())


def cmd_stats(directory: str, name: str, out: IO[str]) -> int:
    """Level shapes, file counts, sizes, sequence numbers."""
    db = _open(directory, name)
    try:
        version = db.versions.current
        out.write(f"database:        {name}\n")
        out.write(f"last sequence:   {db.versions.last_sequence}\n")
        out.write(f"next file:       {db.versions.next_file_number}\n")
        out.write(f"total size:      {db.approximate_size():,} bytes\n")
        out.write(f"memtable:        {len(db.memtable)} entries, "
                  f"{db.memtable.approximate_memory_usage:,} bytes\n")
        out.write("levels:\n")
        for level, files in enumerate(version.levels):
            if not files:
                continue
            size = version.level_size(level)
            entries = sum(meta.num_entries for meta in files)
            out.write(f"  L{level}: {len(files):3d} files  "
                      f"{size:>10,} bytes  {entries:>8,} entries\n")
        return 0
    finally:
        db.close()


def cmd_dump(directory: str, name: str, out: IO[str],
             limit: int | None = None) -> int:
    """Print visible key/value pairs in key order."""
    db = _open(directory, name)
    try:
        printed = 0
        for key, value in db.scan():
            out.write(f"{key!r} => {value[:80]!r}"
                      f"{' ...' if len(value) > 80 else ''}\n")
            printed += 1
            if limit is not None and printed >= limit:
                out.write(f"... (stopped at --limit {limit})\n")
                break
        out.write(f"{printed} entries\n")
        return 0
    finally:
        db.close()


def cmd_verify(directory: str, name: str, out: IO[str]) -> int:
    """Run the integrity checker; exit status 1 on any finding."""
    db = _open(directory, name)
    try:
        report = verify_integrity(db)
        out.write(f"tables:  {report.tables_checked}\n")
        out.write(f"blocks:  {report.blocks_checked}\n")
        out.write(f"entries: {report.entries_checked}\n")
        if report.ok:
            out.write("OK\n")
            return 0
        for problem in report.problems:
            out.write(f"PROBLEM: {problem}\n")
        return 1
    finally:
        db.close()


def main(argv: list[str] | None = None, out: IO[str] | None = None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Inspect and verify LevelDB++ databases.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for command in ("stats", "dump", "verify"):
        sub = subparsers.add_parser(command)
        sub.add_argument("directory", help="LocalVFS root directory")
        sub.add_argument("name", help="database name within the directory")
        if command == "dump":
            sub.add_argument("--limit", type=int, default=None,
                             help="stop after N entries")
    args = parser.parse_args(argv)
    if args.command == "stats":
        return cmd_stats(args.directory, args.name, out)
    if args.command == "dump":
        return cmd_dump(args.directory, args.name, out, args.limit)
    return cmd_verify(args.directory, args.name, out)
