"""Top-K selection by recency — the paper's Algorithm 1.

A min-heap ordered by sequence number keeps the K most recent items seen so
far: a new item replaces the root when it is newer, exactly as
``Min-Heap H.Add(K, <k, v>)`` does in the paper.  ``k=None`` disables the
bound ("no limit on top-k").
"""

from __future__ import annotations

import heapq
from typing import Generic, TypeVar

T = TypeVar("T")


class TopKBySeq(Generic[T]):
    """Keep the ``k`` items with the largest sequence numbers."""

    def __init__(self, k: int | None) -> None:
        if k is not None and k <= 0:
            raise ValueError("k must be positive or None")
        self.k = k
        self._heap: list[tuple[int, int, T]] = []
        self._tiebreak = 0  # makes heap entries totally ordered

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return self.k is not None and len(self._heap) >= self.k

    def min_seq(self) -> int | None:
        """Sequence of the oldest retained item (the heap root)."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def would_accept(self, seq: int) -> bool:
        """Whether :meth:`add` with this ``seq`` would change the heap.

        Lets callers skip an expensive validity check (a data-table GET)
        for items that are too old to matter — the same short-circuit the
        paper's Algorithm 1 enables.
        """
        if not self.is_full:
            return True
        root = self.min_seq()
        return root is not None and seq > root

    def add(self, seq: int, item: T) -> bool:
        """Offer an item; returns True if it was retained."""
        self._tiebreak += 1
        entry = (seq, self._tiebreak, item)
        if self.k is None or len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if self._heap[0][0] < seq:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def results(self) -> list[T]:
        """Retained items, newest first."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        return [item for _seq, _tie, item in ordered]
