"""The Stand-Alone Eager Index (paper Section 4.1.1).

A separate LSM index table maps each attribute value to a JSON posting
list of ``[primary_key, seq]`` pairs, newest first.  Every PUT performs the
read-update-write cycle of the paper's Example 1: "first reads the current
postings list of a_i from the index table, adds k to the list and writes
back the updated list" — which keeps LOOKUP down to a single index read
but makes the index table rewrite an average of ``PL_S`` postings per
write, producing the catastrophic write amplification of Figure 9c
(``WAMF = PL_S * 22 * (L-1)``, Table 5).

This is the strategy of MongoDB/CouchDB-style B+-tree indexes and of
Riak's secondary indexes, transplanted onto an LSM index table.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

from repro.core.base import IndexKind, LookupResult, SecondaryIndex
from repro.core.posting import (
    PostingEntry,
    decode_posting_list,
    encode_posting_list,
)
from repro.core.records import (
    Document,
    attribute_of,
    key_to_bytes,
    key_to_str,
)
from repro.core.topk import TopKBySeq
from repro.core.validity import (
    ValidityChecker,
    attribute_equals,
    attribute_in_range,
)
from repro.lsm.db import DB
from repro.lsm.zonemap import encode_attribute


class EagerIndex(SecondaryIndex):
    """Read-modify-write posting lists in a stand-alone index table."""

    kind = IndexKind.EAGER

    def __init__(self, attribute: str, index_db: DB,
                 checker: ValidityChecker) -> None:
        super().__init__(attribute)
        self.index_db = index_db
        self.checker = checker
        #: Index-table reads performed by the write path — the "Read l"
        #: column of Table 5 that the Lazy/Composite variants avoid.
        self.write_path_reads = 0

    # -- write hooks ------------------------------------------------------------

    def on_put(self, key: bytes, document: Document, seq: int) -> None:
        attr_value = attribute_of(document, self.attribute)
        if attr_value is None:
            return
        index_key = encode_attribute(attr_value)
        entries = self._read_list(index_key)
        key_str = key_to_str(key)
        entries = [entry for entry in entries if entry.key != key_str]
        entries.insert(0, PostingEntry(key_str, seq))
        self.index_db.put(index_key, encode_posting_list(entries))

    def on_delete(self, key: bytes, old_document: Document | None,
                  seq: int) -> None:
        if old_document is None:
            return
        attr_value = attribute_of(old_document, self.attribute)
        if attr_value is None:
            return
        index_key = encode_attribute(attr_value)
        entries = self._read_list(index_key)
        key_str = key_to_str(key)
        remaining = [entry for entry in entries if entry.key != key_str]
        if len(remaining) != len(entries):
            self.index_db.put(index_key, encode_posting_list(remaining))

    def _read_list(self, index_key: bytes) -> list[PostingEntry]:
        self.write_path_reads += 1
        payload = self.index_db.get(index_key)
        if payload is None:
            return []
        return decode_posting_list(payload)

    # -- queries -----------------------------------------------------------------

    def lookup(self, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        """Algorithm 2: one index read, then GET-and-validate a K prefix."""
        payload = self.index_db.get(encode_attribute(value))
        if payload is None:
            return []
        predicate = attribute_equals(self.attribute, value)
        results: list[LookupResult] = []
        for entry in decode_posting_list(payload):
            if entry.deleted:
                continue
            found = self.checker.fetch_valid(key_to_bytes(entry.key),
                                             predicate)
            if found is None:
                continue
            document, seq = found
            results.append(LookupResult(entry.key, document, seq))
            if k is not None and len(results) >= k:
                break
        return results

    def range_lookup(self, low: Any, high: Any, k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        """Range scan on the index table, merging lists newest-first.

        "We issue this range query on our index table for given range
        [a, b] ... we need to add associated posting lists' primary keys to
        the min-heap to get the top-k" — implemented as a K-way merge of the
        (already time-sorted) posting lists so candidates are validated in
        strictly newest-first order and validation GETs stop after K hits.
        """
        low_encoded = encode_attribute(low)
        high_encoded = encode_attribute(high)
        if low_encoded > high_encoded:
            return []
        predicate = attribute_in_range(self.attribute, low, high,
                                       encode_attribute)
        heap: TopKBySeq[LookupResult] = TopKBySeq(k)
        seen: set[str] = set()
        for entry in self._merged_candidates(low_encoded, high_encoded):
            if entry.deleted or entry.key in seen:
                continue
            seen.add(entry.key)
            if k is not None and heap.is_full and not \
                    heap.would_accept(entry.seq):
                break  # candidates arrive newest-first: nothing better follows
            found = self.checker.fetch_valid(key_to_bytes(entry.key),
                                             predicate)
            if found is None:
                continue
            document, seq = found
            heap.add(seq, LookupResult(entry.key, document, seq))
        return heap.results()

    def _merged_candidates(self, low: bytes, high: bytes
                           ) -> Iterator[PostingEntry]:
        """All postings in the value range, globally newest-first."""
        lists = []
        for _key, payload in self.index_db.scan(low, high):
            entries = decode_posting_list(payload)
            if entries:
                lists.append(entries)
        merged: list[tuple[int, int, int]] = []  # (-seq, list_idx, pos)
        for index, entries in enumerate(lists):
            heapq.heappush(merged, (-entries[0].seq, index, 0))
        while merged:
            _neg_seq, index, pos = heapq.heappop(merged)
            yield lists[index][pos]
            if pos + 1 < len(lists[index]):
                heapq.heappush(
                    merged, (-lists[index][pos + 1].seq, index, pos + 1))

    # -- maintenance ----------------------------------------------------------

    def flush(self) -> None:
        self.index_db.flush()

    def compact(self) -> None:
        self.index_db.compact_range()

    def size_bytes(self) -> int:
        return self.index_db.approximate_size()

    def close(self) -> None:
        self.index_db.close()
