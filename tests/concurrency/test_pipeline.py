"""Background flush/compaction pipeline tests.

Real-thread tests exercise the pipeline the way production would (OS
scheduling, actual contention); deterministic-scheduler tests pin down
properties that depend on a specific interleaving — group commit forming,
bit-for-bit seed replay — that free-running threads can only hit by luck.
"""

from __future__ import annotations

import threading

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.testing import DeterministicScheduler
from repro.lsm.vfs import MemoryVFS


def test_background_pipeline_smoke():
    opts = Options(background_compaction=True, memtable_budget=2048,
                   l0_compaction_trigger=2)
    db = DB.open_memory(opts)
    value = b"v" * 40
    for i in range(400):
        db.put(b"k%05d" % i, value)
    db.flush()
    pipe = db.stats()["pipeline"]
    assert pipe["background"] is True
    assert pipe["bg_flushes"] > 0
    assert pipe["imm_pending"] == 0  # flush() drains the handoff
    assert pipe["bg_error"] is None
    # Single client thread: every put is its own commit group.
    assert pipe["group_commit_batches"] == 400
    assert pipe["write_groups"] == 400
    assert db.get(b"k00000") == value
    assert sum(1 for _ in db.scan()) == 400
    report = db.verify_integrity()
    assert report.ok, report
    db.close()


def test_concurrent_writers_real_threads():
    opts = Options(background_compaction=True, memtable_budget=4096,
                   l0_compaction_trigger=2)
    db = DB.open_memory(opts)
    errors = []

    def writer(tid):
        try:
            for i in range(150):
                db.put(b"t%d-%04d" % (tid, i), b"x" * 30)
        except Exception as exc:  # noqa: BLE001 - recorded for the assert
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(tid,))
               for tid in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    db.flush()
    assert sum(1 for _ in db.scan()) == 600
    for tid in range(4):
        assert db.get(b"t%d-0149" % tid) == b"x" * 30
    pipe = db.stats()["pipeline"]
    assert pipe["group_commit_batches"] == 600
    assert 1 <= pipe["write_groups"] <= 600
    assert pipe["max_group_batches"] >= 1
    assert pipe["bg_error"] is None
    report = db.verify_integrity()
    assert report.ok, report
    db.close()


def test_reopen_inline_after_background_run():
    vfs = MemoryVFS()
    opts = Options(background_compaction=True, memtable_budget=1024,
                   l0_compaction_trigger=2)
    db = DB.open(vfs, "db", opts)
    for i in range(300):
        db.put(b"r%04d" % i, b"val-%d" % i)
        if i % 3 == 0:
            db.delete(b"r%04d" % i)
    db.close()
    # The default (inline) engine must read what the pipeline wrote.
    db = DB.open(vfs, "db", Options())
    for i in range(300):
        expected = None if i % 3 == 0 else b"val-%d" % i
        assert db.get(b"r%04d" % i) == expected
    report = db.verify_integrity()
    assert report.ok, report
    db.close()


def test_write_stall_backpressure():
    # A tiny memtable and a low L0 ceiling force the foreground to wait on
    # the background stages: rotations outrun flushes (stall:memtable) and
    # flushes outrun compactions (slowdown / stall:stop).
    opts = Options(background_compaction=True, memtable_budget=256,
                   l0_compaction_trigger=2, l0_slowdown_writes_trigger=2,
                   l0_stop_writes_trigger=4,
                   slowdown_sleep_seconds=0.0001)
    db = DB.open_memory(opts)
    for i in range(500):
        db.put(b"s%04d" % i, b"y" * 30)
    db.flush()
    pipe = db.stats()["pipeline"]
    assert pipe["stall_events"] + pipe["slowdown_events"] > 0
    assert pipe["stall_seconds"] >= 0.0
    assert sum(1 for _ in db.scan()) == 500
    report = db.verify_integrity()
    assert report.ok, report
    db.close()


def test_group_commit_forms_under_scheduler():
    """Some interleaving must commit several queued writers in one group."""

    def run(seed):
        sched = DeterministicScheduler(seed=seed)
        opts = Options(background_compaction=True, step_hook=sched)
        db = DB.open_memory(opts)

        def writer(tid):
            db.put(b"gc%d" % tid, b"v%d" % tid)

        threads = [sched.spawn(f"w{tid}", writer, tid) for tid in range(3)]
        sched.wait_threads(*threads)
        pipe = db.stats()["pipeline"]
        data = sorted(db.scan())
        db.close()
        sched.shutdown()
        return pipe, data

    best_group = 0
    for seed in range(25):
        pipe, data = run(seed)
        assert data == [(b"gc0", b"v0"), (b"gc1", b"v1"), (b"gc2", b"v2")]
        assert pipe["group_commit_batches"] == 3
        assert 1 <= pipe["write_groups"] <= 3
        best_group = max(best_group, pipe["max_group_batches"])
    assert best_group >= 2, "no seed ever merged writers into one group"


def test_stalls_reachable_under_scheduler():
    """Across seeds, some schedule drives the engine into a stall wait."""
    labels = set()
    for seed in range(20):
        sched = DeterministicScheduler(seed=seed)
        opts = Options(background_compaction=True, memtable_budget=100,
                       l0_compaction_trigger=2,
                       l0_slowdown_writes_trigger=2,
                       l0_stop_writes_trigger=2,
                       slowdown_sleep_seconds=0.0,
                       step_hook=sched)
        db = DB.open_memory(opts)

        def writer():
            for i in range(12):
                db.put(b"z%02d" % i, b"w" * 16)

        thread = sched.spawn("w", writer)
        sched.wait_threads(thread)
        assert sum(1 for _ in db.scan()) == 12
        db.close()
        sched.shutdown()
        labels.update(label for _name, label in sched.trace)
    assert any(label.startswith("stall:") for label in labels), labels


def test_same_seed_is_bit_for_bit_identical():
    """Same seed => same schedule => byte-identical files on disk."""

    def run(seed):
        sched = DeterministicScheduler(seed=seed)
        vfs = MemoryVFS()
        opts = Options(background_compaction=True, memtable_budget=300,
                       l0_compaction_trigger=2, step_hook=sched)
        db = DB.open(vfs, "db", opts)

        def writer(tid):
            for i in range(15):
                db.put(b"t%d-%02d" % (tid, i), bytes([65 + tid]) * 20)

        t1 = sched.spawn("w1", writer, 1)
        t2 = sched.spawn("w2", writer, 2)
        sched.wait_threads(t1, t2)
        db.flush()
        data = tuple(db.scan())
        db.close()
        sched.shutdown()
        files = {name: vfs.read_whole(name) for name in vfs.list_dir("")}
        return tuple(sched.trace), data, files

    first = run(11)
    second = run(11)
    assert first == second  # trace, scan contents, and every file byte
    other = run(12)
    assert other[0] != first[0]  # a different seed takes a different path
    assert sorted(other[1]) == sorted(first[1])  # ...to the same data
