"""Network fault injection: scheduled disconnects, torn frames, delays.

The storage layer earns its crash-safety claims from
:class:`~repro.lsm.faults.FaultInjectingVFS`; this module is the same
discipline applied to the wire.  A :class:`FaultSchedule` scripts faults
against *counted protocol events* — connect attempts, frame sends,
response-frame reads — and a :class:`FaultInjectingTransport` wraps each
client socket to execute them, so a drill can disconnect the client at
every response boundary in turn and prove the retry machinery keeps each
acked write applied exactly once.

Fault points (all counters are global across every socket the schedule
touches, so they keep advancing across reconnects):

* ``refuse_connects`` — the first N connect attempts raise
  ``ConnectionRefusedError`` (server down / backlog full).
* ``break_send_at`` — that send call fails before any byte leaves: the
  request never reached the server (safe to retry blindly).
* ``torn_send_at`` — half the bytes leave, then the connection dies: the
  server reads a torn frame and discards it whole, so a torn *request*
  is never half-applied (DESIGN.md §10); any complete frames in front of
  the tear *are* applied — exactly the case idempotent retry exists for.
* ``drop_response_at`` — the connection dies just before that response
  frame is read: the server applied the write and sent the ack, the
  client never saw it.  The acked-but-lost case; a blind retry would
  double-apply without the server's dedup window.
* ``torn_response_at`` — the response frame arrives cut in half
  (``TornFrameError`` on the client), same recovery obligation.
* ``delay`` — an optional hook called before every counted event with
  its name; drills pass a ``DeterministicScheduler`` step hook or a
  sleep to model latency.

:func:`FaultSchedule.random` derives a randomized-but-reproducible
schedule from a seed — the chaos job prints the seed on failure so any
red run replays bit-for-bit.

Counters are locked: a pooled client's threads may share one schedule.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
from typing import Any, Callable, Iterable

__all__ = [
    "FaultSchedule",
    "FaultInjectingTransport",
    "FaultyConnector",
]

_LENGTH = struct.Struct(">I")


class FaultSchedule:
    """Scripted network faults, consulted by every wrapped socket.

    ``break_send_at`` / ``torn_send_at`` index *send calls* (a pipeline
    burst is one call), ``drop_response_at`` / ``torn_response_at``
    index *response frames*, all 1-based and global across sockets.
    """

    def __init__(self, *, refuse_connects: int = 0,
                 break_send_at: Iterable[int] = (),
                 torn_send_at: Iterable[int] = (),
                 drop_response_at: Iterable[int] = (),
                 torn_response_at: Iterable[int] = (),
                 delay: Callable[[str], None] | None = None) -> None:
        self.refuse_connects = refuse_connects
        self.break_send_at = set(break_send_at)
        self.torn_send_at = set(torn_send_at)
        overlap = self.break_send_at & self.torn_send_at
        if overlap:
            raise ValueError(f"send faults overlap: {sorted(overlap)}")
        self.drop_response_at = set(drop_response_at)
        self.torn_response_at = set(torn_response_at)
        overlap = self.drop_response_at & self.torn_response_at
        if overlap:
            raise ValueError(f"response faults overlap: {sorted(overlap)}")
        self.delay = delay
        self._lock = threading.Lock()
        #: Counted events so far (inspection / next-schedule sizing).
        self.connects = 0
        self.sends = 0
        self.responses = 0
        #: Every fault fired: ``(kind, 1-based index)`` — lets a drill
        #: assert the scheduled fault actually happened.
        self.injected: list[tuple[str, int]] = []

    @classmethod
    def random(cls, seed: int, *, sends: int, fault_rate: float = 0.15,
               refuse_connects: int = 0, responses: int | None = None,
               delay: Callable[[str], None] | None = None
               ) -> "FaultSchedule":
        """A reproducible chaos schedule over ``sends`` send calls (and
        ``responses`` response frames, default the same count): each
        event independently faults with ``fault_rate``, fault flavour
        chosen uniformly.  Same seed, same schedule."""
        rng = random.Random(seed)
        if responses is None:
            responses = sends
        break_send, torn_send, drop_resp, torn_resp = set(), set(), set(), set()
        for index in range(1, sends + 1):
            if rng.random() < fault_rate:
                (break_send if rng.random() < 0.5 else torn_send).add(index)
        for index in range(1, responses + 1):
            if rng.random() < fault_rate:
                (drop_resp if rng.random() < 0.5 else torn_resp).add(index)
        return cls(refuse_connects=refuse_connects,
                   break_send_at=break_send, torn_send_at=torn_send,
                   drop_response_at=drop_resp, torn_response_at=torn_resp,
                   delay=delay)

    # -- event gates (called by the transport) -----------------------------

    def _event(self, name: str) -> None:
        if self.delay is not None:
            self.delay(name)

    def on_connect(self) -> None:
        """Gate one connect attempt; raises to refuse it."""
        with self._lock:
            self.connects += 1
            index = self.connects
            refused = index <= self.refuse_connects
            if refused:
                self.injected.append(("refuse_connect", index))
        self._event(f"net:connect:{index}")
        if refused:
            raise ConnectionRefusedError(
                f"injected connection refusal (attempt {index})")

    def on_send(self) -> str | None:
        """Gate one send call; returns ``None`` | ``"break"`` | ``"torn"``."""
        with self._lock:
            self.sends += 1
            index = self.sends
            if index in self.break_send_at:
                fault = "break"
            elif index in self.torn_send_at:
                fault = "torn"
            else:
                fault = None
            if fault:
                self.injected.append((f"{fault}_send", index))
        self._event(f"net:send:{index}")
        return fault

    def on_response(self) -> str | None:
        """Gate one response-frame read; ``None`` | ``"drop"`` | ``"torn"``."""
        with self._lock:
            self.responses += 1
            index = self.responses
            if index in self.drop_response_at:
                fault = "drop"
            elif index in self.torn_response_at:
                fault = "torn"
            else:
                fault = None
            if fault:
                self.injected.append((f"{fault}_response", index))
        self._event(f"net:response:{index}")
        return fault


class FaultInjectingTransport:
    """One faulty socket: a real socket behind a :class:`FaultSchedule`.

    Satisfies the slice of the socket API the client stack uses
    (``sendall``/``recv``/``close``/timeouts/options).  The receive side
    reassembles whole response frames internally — that is what lets the
    schedule target exact response boundaries — and hands bytes back in
    whatever chunk sizes the caller asks for.
    """

    def __init__(self, sock: socket.socket, schedule: FaultSchedule) -> None:
        self._sock = sock
        self._schedule = schedule
        self._buffer = b""      # unconsumed bytes of the current frame
        self._forced_eof = False

    # -- fault execution ---------------------------------------------------

    def _die(self) -> None:
        """Kill the connection the way a reset does."""
        self._forced_eof = True
        try:
            self._sock.close()
        except OSError:
            pass

    def sendall(self, data: bytes) -> None:
        fault = self._schedule.on_send()
        if fault == "break":
            self._die()
            raise ConnectionResetError("injected disconnect before send")
        if fault == "torn":
            try:
                self._sock.sendall(data[:max(1, len(data) // 2)])
            except OSError:
                pass
            self._die()
            raise ConnectionResetError("injected disconnect mid-send")
        self._sock.sendall(data)

    def _read_exact(self, length: int) -> bytes | None:
        chunks = []
        received = 0
        while received < length:
            chunk = self._sock.recv(min(length - received, 1 << 16))
            if not chunk:
                return None  # EOF (clean or torn — caller decides)
            chunks.append(chunk)
            received += len(chunk)
        return b"".join(chunks)

    def recv(self, size: int) -> bytes:
        if size <= 0:
            return b""
        if not self._buffer:
            if self._forced_eof:
                return b""
            # Frame boundary: pull one whole response frame, consulting
            # the schedule first.
            fault = self._schedule.on_response()
            if fault == "drop":
                self._die()
                raise ConnectionResetError(
                    "injected disconnect before response")
            header = self._read_exact(_LENGTH.size)
            if header is None:
                return b""  # true EOF from the server
            (length,) = _LENGTH.unpack(header)
            payload = self._read_exact(length)
            frame = header + (payload if payload is not None else b"")
            if fault == "torn":
                # Deliver the header and half the payload, then EOF:
                # the client's frame reader sees a torn response.
                self._buffer = frame[:_LENGTH.size + max(0, length // 2)]
                self._die()
            else:
                self._buffer = frame
        served, self._buffer = self._buffer[:size], self._buffer[size:]
        return served

    # -- socket API pass-through -------------------------------------------

    def settimeout(self, timeout: float | None) -> None:
        try:
            self._sock.settimeout(timeout)
        except OSError:
            pass

    def gettimeout(self) -> float | None:
        return self._sock.gettimeout()

    def setsockopt(self, *args: Any) -> None:
        self._sock.setsockopt(*args)

    def getpeername(self) -> Any:
        return self._sock.getpeername()

    def shutdown(self, how: int) -> None:
        self._sock.shutdown(how)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def fileno(self) -> int:
        return self._sock.fileno()


class FaultyConnector:
    """``Client(connector=...)`` hook: dial through the fault schedule.

    Callable with the same shape as ``socket.create_connection`` (the
    client's default connector); refusals and per-socket faults all come
    from the shared :class:`FaultSchedule`.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule

    def __call__(self, address: tuple[str, int],
                 timeout: float | None = None) -> FaultInjectingTransport:
        self.schedule.on_connect()
        sock = socket.create_connection(address, timeout=timeout)
        return FaultInjectingTransport(sock, self.schedule)
