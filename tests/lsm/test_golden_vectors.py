"""Golden vectors pinning the on-disk byte format.

The hot-path work (DESIGN.md §7) rewrote the block and key codecs for
speed while promising *byte-identical* output.  These tests make that
promise permanent: exact bytes for the primitive encoders, an exact
block image, and SHA-256 digests of a deterministically built SSTable
(both compression modes).  Any change to the writers — intentional or
not — fails here first, before it can silently orphan existing files.

The SSTable recipe (120 keys, 256-byte blocks, an embedded UserID
index, kinds cycling VALUE/DELETE/MERGE) matches docs/FORMAT.md's
feature inventory: prefix compression, restarts, bloom filters, zone
maps, and meta blocks are all exercised.
"""

import hashlib

import pytest

from repro.lsm.block import Block, BlockBuilder
from repro.lsm.compression import NoCompression, ZlibCompression
from repro.lsm.keys import (
    KIND_DELETE,
    KIND_MERGE,
    KIND_VALUE,
    encode_varint,
    internal_sort_key,
    pack_internal_key,
    unpack_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import SSTable, TableBuilder
from repro.lsm.vfs import MemoryVFS

# --- primitive encoders ----------------------------------------------------


def test_varint_golden_bytes():
    assert encode_varint(0) == bytes.fromhex("00")
    assert encode_varint(127) == bytes.fromhex("7f")
    assert encode_varint(128) == bytes.fromhex("8001")
    assert encode_varint(300) == bytes.fromhex("ac02")


def test_internal_key_golden_bytes():
    # user_key || uint64_be((seq << 8) | kind)
    assert pack_internal_key(b"key", 5, KIND_VALUE) == \
        bytes.fromhex("6b65790000000000000501")
    ikey = unpack_internal_key(bytes.fromhex("6b65790000000000000501"))
    assert (ikey.user_key, ikey.seq, ikey.kind) == (b"key", 5, KIND_VALUE)


# --- block image ------------------------------------------------------------

_BLOCK_ENTRIES = [
    (b"apple", 3, KIND_VALUE, b"red"),
    (b"apricot", 2, KIND_DELETE, b""),
    (b"banana", 7, KIND_MERGE, b"+1"),
    (b"banana", 5, KIND_VALUE, b"yellow"),
    (b"cherry", 1, KIND_VALUE, b"dark"),
]

_BLOCK_GOLDEN_HEX = (
    # shared, non_shared, value_len | key suffix (user key + 8-byte tag) | value
    "000d03" "6170706c65" "0000000000000301" "726564"    # restart 0: full key
    "020d00" "7269636f74" "0000000000000200"             # shares "ap"
    "000e02" "62616e616e61" "0000000000000702" "2b31"    # restart 1: full key
    "0c0206" "0501" "79656c6c6f77"        # shares "banana" + 6 tag zero bytes
    "000e04" "636865727279" "0000000000000101" "6461726b"  # restart 2
    "00000000" "23000000" "41000000" "03000000"  # restart offsets + count
)


def test_block_golden_bytes():
    builder = BlockBuilder(restart_interval=2)
    for user_key, seq, kind, value in _BLOCK_ENTRIES:
        builder.add(pack_internal_key(user_key, seq, kind), value)
    data = builder.finish()
    assert data.hex() == _BLOCK_GOLDEN_HEX
    assert len(data) == 102


def test_block_golden_bytes_decode_back():
    """Both decode paths reproduce the entries from the pinned image."""
    data = bytes.fromhex(_BLOCK_GOLDEN_HEX)
    expected = [(pack_internal_key(k, s, kind), v)
                for k, s, kind, v in _BLOCK_ENTRIES]
    assert list(Block(data)) == expected
    # One-shot seek path (fresh block, no memoized arrays).
    target = pack_internal_key(b"banana", 7, KIND_MERGE)
    assert next(Block(data).seek(target)) == expected[2]
    # Memoized path.
    block = Block(data)
    sort_key, value = next(block.sorted_seek(target))
    assert sort_key == internal_sort_key(expected[2][0])
    assert value == expected[2][1]


# --- whole-table digests ----------------------------------------------------


def _build_golden_table(compression_name):
    """The deterministic 120-entry table the perf PR's invariant capture
    used; its digests were recorded *before* the optimization work."""
    vfs = MemoryVFS()
    options = Options(block_size=256, compression=compression_name,
                      indexed_attributes=("UserID",))
    compressor = (NoCompression() if compression_name == "none"
                  else ZlibCompression())
    handle = vfs.create("db/000001.ldb")
    builder = TableBuilder(options, handle, compressor)
    for i in range(120):
        kind = (KIND_VALUE, KIND_DELETE, KIND_MERGE)[i % 3]
        value = (b'{"UserID": "u%02d", "pad": "%s"}'
                 % (i % 11, b"p" * (i % 17))
                 if kind == KIND_VALUE else b"v%d" % i)
        builder.add(pack_internal_key(b"key%04d" % i, i + 1, kind), value)
    builder.finish()
    reader = vfs.open_random("db/000001.ldb")
    return options, reader, reader.read_at(0, reader.size, charge=False)


@pytest.mark.parametrize("compression_name,sha256,size", [
    ("none",
     "e992611c57c502f91d6a52acd2ea9268cd6f1cf8df20651c8bec13cc6a98b5ee",
     4736),
    ("zlib",
     "4a313c0c9078c4b1cac7b13aab0dc92ffd6689e2bb77387f470017c30944c265",
     2932),
])
def test_sstable_golden_digest(compression_name, sha256, size):
    _options, _reader, raw = _build_golden_table(compression_name)
    assert len(raw) == size
    assert hashlib.sha256(raw).hexdigest() == sha256


@pytest.mark.parametrize("compression_name", ["none", "zlib"])
def test_sstable_golden_roundtrip(compression_name):
    """The pinned bytes read back to exactly what was written."""
    options, reader, _raw = _build_golden_table(compression_name)
    table = SSTable(options, reader, 1)
    got = [(ikey.user_key, ikey.seq, ikey.kind, value)
           for ikey, value in table]
    assert len(got) == 120
    for i, (user_key, seq, kind, value) in enumerate(got):
        assert user_key == b"key%04d" % i
        assert seq == i + 1
        assert kind == (KIND_VALUE, KIND_DELETE, KIND_MERGE)[i % 3]
        if kind != KIND_VALUE:
            assert value == b"v%d" % i
