"""Figures 13-15: cumulative disk I/O under the Mixed workloads.

The same runs as Figure 12, decomposed the way the paper plots them —
per workload, per variant:

* (a) cumulative compaction I/O (primary + index tables),
* (b) cumulative read I/O attributed to GETs (identical across variants),
* (c) cumulative read I/O attributed to LOOKUPs (Lazy lowest at small
  top-K on the non-time-correlated attribute; Embedded highest).
"""

import pytest

from harness import ResultTable, get_mixed_report

from repro.core.base import IndexKind
from repro.workloads.generator import MIXED_RATIOS

_KINDS = [IndexKind.EMBEDDED, IndexKind.LAZY, IndexKind.COMPOSITE]
_FIGURE_BY_WORKLOAD = {"write_heavy": "Figure 13", "read_heavy": "Figure 14",
                       "update_heavy": "Figure 15"}
_RESULTS: dict = {}

_TABLE = ResultTable(
    "fig13_15_mixed_io",
    "Figures 13-15 — cumulative disk I/O per Mixed workload (blocks)",
    ["figure", "workload", "variant", "compaction_io", "get_read_io",
     "lookup_read_io", "put_write_io"])


@pytest.mark.parametrize("workload_name", sorted(MIXED_RATIOS))
@pytest.mark.parametrize("kind", _KINDS, ids=lambda k: k.value)
def test_fig13_15_mixed_io(benchmark, kind, workload_name):
    report, _final = benchmark.pedantic(
        get_mixed_report, args=(kind, workload_name), rounds=1, iterations=1)
    compaction = (report.samples[-1].primary_compaction_blocks
                  + report.samples[-1].index_compaction_blocks)
    row = {
        "compaction": compaction,
        "get_reads": report.read_blocks_by_op.get("get", 0),
        "lookup_reads": report.read_blocks_by_op.get("lookup", 0),
        "put_writes": report.write_blocks_by_op.get("put", 0),
    }
    _TABLE.add(_FIGURE_BY_WORKLOAD[workload_name], workload_name, kind.value,
               row["compaction"], row["get_reads"], row["lookup_reads"],
               row["put_writes"])
    _RESULTS[(kind, workload_name)] = row
    if len(_RESULTS) == len(_KINDS) * len(MIXED_RATIOS):
        _finalize()


def _finalize():
    _TABLE.write()
    res = _RESULTS
    for workload_name in MIXED_RATIOS:
        embedded = res[(IndexKind.EMBEDDED, workload_name)]
        lazy = res[(IndexKind.LAZY, workload_name)]
        composite = res[(IndexKind.COMPOSITE, workload_name)]
        # (a) Embedded compacts only the primary table: least compaction
        # I/O (within measurement noise of a block or two).
        assert embedded["compaction"] <= lazy["compaction"] * 1.05
        assert embedded["compaction"] <= composite["compaction"] * 1.05
        # (b) GET costs are comparable across variants (within 2x).
        gets = [embedded["get_reads"], lazy["get_reads"],
                composite["get_reads"]]
        assert max(gets) <= 2 * max(1, min(gets))
        # (c) LOOKUP reads: Embedded pays the most on the
        # non-time-correlated attribute.
        assert embedded["lookup_reads"] >= lazy["lookup_reads"]
    # Update-heavy compaction is heavier than write-heavy for the
    # stand-alone indexes (updates force extra merges of stale entries).
    for kind in (IndexKind.LAZY, IndexKind.COMPOSITE):
        update_heavy = res[(kind, "update_heavy")]
        assert update_heavy["compaction"] > 0
