"""Trace analysis -> workload profile -> Figure 2 recommendation."""

import pytest

from repro.core.analyzer import (
    analyze_trace,
    spearman_rank_correlation,
    summarize_trace,
)
from repro.core.base import IndexKind
from repro.core.selector import IndexSelector
from repro.workloads.generator import MIXED_RATIOS, MixedWorkload
from repro.workloads.ops import Delete, Get, Lookup, Put, RangeLookup
from repro.workloads.tweets import SeedProfile


class TestSpearman:
    def test_monotone_is_one(self):
        assert spearman_rank_correlation(list(range(50))) == \
            pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        assert spearman_rank_correlation(list(range(50, 0, -1))) == \
            pytest.approx(-1.0)

    def test_shuffled_is_near_zero(self):
        import random

        values = list(range(500))
        random.Random(3).shuffle(values)
        assert abs(spearman_rank_correlation(values)) < 0.2

    def test_ties_handled(self):
        rho = spearman_rank_correlation([1, 1, 2, 2, 3, 3])
        assert rho == pytest.approx(1.0, abs=0.1)

    def test_constant_is_zero(self):
        assert spearman_rank_correlation([5, 5, 5, 5]) == 0.0

    def test_degenerate_inputs(self):
        assert spearman_rank_correlation([]) == 0.0
        assert spearman_rank_correlation([1]) == 0.0


class TestSummaries:
    def _trace(self):
        return [
            Put("k1", {"ts": 1}),
            Put("k2", {"ts": 2}),
            Put("k3", {"ts": 3}),
            Get("k1"),
            Delete("k2"),
            Lookup("ts", 2, 5),
            Lookup("ts", 3, None),
            Lookup("other", 9, 1),  # different attribute: ignored
            RangeLookup("ts", 1, 3, 7),
        ]

    def test_counts(self):
        summary = summarize_trace(self._trace(), "ts")
        assert summary.puts == 3
        assert summary.gets == 1
        assert summary.deletes == 1
        assert summary.lookups == 2
        assert summary.range_lookups == 1
        assert summary.top_ks == (5, 7)
        assert summary.unlimited_top_k == 1

    def test_time_correlation_detected(self):
        summary = summarize_trace(self._trace(), "ts")
        assert summary.time_correlation == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            analyze_trace([], "ts")


class TestEndToEndRecommendations:
    def test_time_correlated_trace_recommends_embedded(self):
        trace = [Put(f"k{i}", {"ts": i}) for i in range(100)]
        trace += [Lookup("ts", i, 5) for i in range(10)]
        profile = analyze_trace(trace, "ts")
        assert profile.time_correlated
        rec = IndexSelector().recommend(profile)
        assert rec.kind == IndexKind.EMBEDDED

    def test_shuffled_small_k_trace_recommends_lazy(self):
        import random

        rng = random.Random(5)
        users = [f"u{rng.randrange(50):03d}" for _ in range(300)]
        trace = [Put(f"k{i}", {"UserID": user})
                 for i, user in enumerate(users)]
        trace += [Get(f"k{i}") for i in range(400)]
        trace += [Lookup("UserID", "u001", 5) for _ in range(100)]
        profile = analyze_trace(trace, "UserID")
        assert not profile.time_correlated
        assert profile.typical_top_k == 5
        rec = IndexSelector().recommend(profile)
        assert rec.kind == IndexKind.LAZY

    def test_unlimited_k_trace_recommends_composite(self):
        trace = [Put(f"k{i}", {"UserID": f"u{i % 9}"}) for i in range(100)]
        trace += [Lookup("UserID", "u1", None) for _ in range(60)]
        profile = analyze_trace(trace, "UserID")
        assert profile.typical_top_k is None
        rec = IndexSelector().recommend(profile)
        assert rec.kind == IndexKind.COMPOSITE

    def test_mixed_workload_trace_roundtrip(self):
        """Generator ratios survive the analysis round-trip."""
        workload = MixedWorkload(
            num_operations=3000, ratios=MIXED_RATIOS["read_heavy"],
            profile=SeedProfile(num_users=40), seed=8)
        profile = analyze_trace(workload.operations(), "UserID")
        assert profile.get_fraction == pytest.approx(0.70, abs=0.03)
        assert profile.lookup_fraction == pytest.approx(0.10, abs=0.02)
        assert not profile.time_correlated  # UserID is shuffled
