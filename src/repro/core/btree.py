"""An in-memory B-tree keyed by encoded attribute values.

Section 3 of the paper: "For lookup in the MemTable, we maintain an
in-memory B-tree on the secondary attribute(s)."  This is that structure.
It maps an encoded attribute value to the postings ``(seq, primary_key)``
currently buffered in the MemTable, supports point and range queries, and
expires postings once their entries are flushed into SSTables (where the
embedded bloom filters and zone maps take over).

The tree is a classic order-``m`` B-tree with node splitting on insert.
Removals (which only happen when a flush expires postings) delete from the
leaf without rebalancing: the structure is bounded by the MemTable budget
and is rebuilt naturally as it drains, so rebalance complexity buys
nothing here.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Iterator

_ORDER = 32  # max keys per node


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[bytes] = []
        self.values: list[list[tuple[int, bytes]]] = []
        self.children: list[_Node] | None = None if leaf else []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class MemTableAttributeIndex:
    """B-tree over the MemTable's secondary-attribute postings."""

    def __init__(self) -> None:
        self._root = _Node(leaf=True)
        self._count = 0
        # Postings ordered by seq (a heap: insertions are *usually* in seq
        # order, but a WAL-recovery rebuild walks the MemTable in key
        # order), for cheap flush expiry.
        self._by_seq: list[tuple[int, bytes, bytes]] = []

    def __len__(self) -> int:
        """Number of live postings (not distinct keys)."""
        return self._count

    # -- insertion ----------------------------------------------------------

    def insert(self, encoded_value: bytes, seq: int, primary_key: bytes) -> None:
        """Record that ``primary_key`` carried ``encoded_value`` at ``seq``."""
        root = self._root
        if len(root.keys) >= _ORDER:
            new_root = _Node(leaf=False)
            assert new_root.children is not None
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, encoded_value, seq, primary_key)
        heapq.heappush(self._by_seq, (seq, encoded_value, primary_key))
        self._count += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        assert parent.children is not None
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = _Node(leaf=child.is_leaf)
        sibling.keys = child.keys[mid + 1:]
        sibling.values = child.values[mid + 1:]
        if not child.is_leaf:
            assert child.children is not None and sibling.children is not None
            sibling.children = child.children[mid + 1:]
            child.children = child.children[:mid + 1]
        parent.keys.insert(index, child.keys[mid])
        parent.values.insert(index, child.values[mid])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[:mid]
        child.values = child.values[:mid]

    def _insert_nonfull(self, node: _Node, key: bytes, seq: int,
                        primary_key: bytes) -> None:
        while True:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append((seq, primary_key))
                return
            if node.is_leaf:
                node.keys.insert(index, key)
                node.values.insert(index, [(seq, primary_key)])
                return
            assert node.children is not None
            child = node.children[index]
            if len(child.keys) >= _ORDER:
                self._split_child(node, index)
                if key == node.keys[index]:
                    node.values[index].append((seq, primary_key))
                    return
                if key > node.keys[index]:
                    index += 1
                child = node.children[index]
            node = child

    # -- queries ----------------------------------------------------------------

    def get(self, encoded_value: bytes) -> list[tuple[int, bytes]]:
        """Postings for one attribute value, newest first."""
        node = self._root
        while True:
            index = bisect.bisect_left(node.keys, encoded_value)
            if index < len(node.keys) and node.keys[index] == encoded_value:
                return sorted(node.values[index], key=lambda p: -p[0])
            if node.is_leaf:
                return []
            assert node.children is not None
            node = node.children[index]

    def range(self, low: bytes, high: bytes
              ) -> Iterator[tuple[bytes, list[tuple[int, bytes]]]]:
        """All ``(encoded_value, postings)`` with ``low <= value <= high``."""
        yield from self._range_walk(self._root, low, high)

    def _range_walk(self, node: _Node, low: bytes, high: bytes
                    ) -> Iterator[tuple[bytes, list[tuple[int, bytes]]]]:
        start = bisect.bisect_left(node.keys, low)
        for index in range(start, len(node.keys) + 1):
            if not node.is_leaf:
                assert node.children is not None
                yield from self._range_walk(node.children[index], low, high)
            if index < len(node.keys):
                key = node.keys[index]
                if key > high:
                    return
                if key >= low and node.values[index]:
                    yield key, sorted(node.values[index], key=lambda p: -p[0])

    # -- flush expiry -------------------------------------------------------------

    def expire_up_to(self, flushed_max_seq: int) -> int:
        """Drop postings with ``seq <= flushed_max_seq``; returns the count.

        Called from the primary table's flush listener: once entries are in
        SSTables, the embedded per-block structures answer for them.
        """
        expired = 0
        while self._by_seq and self._by_seq[0][0] <= flushed_max_seq:
            seq, encoded_value, primary_key = heapq.heappop(self._by_seq)
            self._remove(encoded_value, seq, primary_key)
            expired += 1
        self._count -= expired
        return expired

    def _remove(self, key: bytes, seq: int, primary_key: bytes) -> None:
        node = self._root
        while True:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                postings = node.values[index]
                try:
                    postings.remove((seq, primary_key))
                except ValueError:
                    pass
                return
            if node.is_leaf:
                return
            assert node.children is not None
            node = node.children[index]
