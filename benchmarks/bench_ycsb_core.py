"""Extension: the YCSB core workloads over every index variant.

The paper cites YCSB as the standard key-value benchmark whose lack of
secondary-attribute control motivated its own generator.  Running YCSB
A-F through the same harness anchors this reproduction against the
industry-standard suite: the primary-key workloads (A-D, F) should be
nearly index-agnostic, while E's scans run through the secondary machinery
via the mirrored ``_key`` attribute.
"""

import pytest

from harness import ResultTable, bench_options

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.workloads.runner import WorkloadRunner
from repro.workloads.ycsb import CORE_WORKLOADS, YCSBWorkload

_KINDS = [IndexKind.EMBEDDED, IndexKind.LAZY, IndexKind.COMPOSITE]
_RECORDS = 1500
_OPERATIONS = 2500
_RESULTS: dict = {}

_TABLE = ResultTable(
    "ycsb_core",
    f"YCSB core workloads ({_RECORDS} records, {_OPERATIONS} transactions)",
    ["workload", "variant", "us_per_op", "read_blocks", "write_blocks"])


def _run(kind, workload_name):
    db = SecondaryIndexedDB.open_memory(
        indexes={"_key": kind}, options=bench_options())
    workload = YCSBWorkload(workload_name, record_count=_RECORDS,
                            operation_count=_OPERATIONS, seed=19)
    report = WorkloadRunner(db, sample_every=10**9).run(
        workload.operations())
    reads = db.primary.vfs.stats.read_blocks
    writes = db.primary.vfs.stats.write_blocks
    db.close()
    return report, reads, writes


@pytest.mark.parametrize("workload_name", sorted(CORE_WORKLOADS))
@pytest.mark.parametrize("kind", _KINDS, ids=lambda k: k.value)
def test_ycsb_core(benchmark, kind, workload_name):
    report, reads, writes = benchmark.pedantic(
        _run, args=(kind, workload_name), rounds=1, iterations=1)
    mean = report.mean_micros()
    _TABLE.add(workload_name, kind.value, f"{mean:.0f}", reads, writes)
    _RESULTS[(kind, workload_name)] = mean
    if len(_RESULTS) == len(_KINDS) * len(CORE_WORKLOADS):
        _finalize()


def _finalize():
    _TABLE.note("A-D and F are primary-key workloads: variants should be "
                "within ~2x of each other; E (scans) exercises the "
                "secondary index")
    _TABLE.write()
    # Primary-key workloads are nearly index-agnostic.
    for workload_name in "ABCDF":
        costs = [_RESULTS[(kind, workload_name)] for kind in _KINDS]
        assert max(costs) < 4 * min(costs), workload_name
    # C (pure zipfian reads) must be the cheapest mix for every variant.
    for kind in _KINDS:
        assert _RESULTS[(kind, "C")] <= _RESULTS[(kind, "E")]
