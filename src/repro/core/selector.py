"""Index selection — the paper's Figure 2 decision strategy.

The paper closes with an empirical guideline for choosing a secondary
index; :class:`IndexSelector` encodes it:

* **Embedded** when the attribute is time-correlated (zone maps prune
  almost everything), when space is a concern (e.g. a local store on a
  mobile device), or when the workload is write-heavy (> 50% writes) with
  few secondary lookups (< 5%).
* **Lazy** for stand-alone workloads dominated by small top-K queries
  (social feeds): it can stop after one level once K results are found,
  while Composite must traverse every level.
* **Composite** when queries have no top-K limit or very large K
  (analytics: "group by year or department and so on"): at K = all, both
  cost L index reads but Composite avoids Lazy's posting-list CPU.
* **Eager** — never: "Eager Index shows exponential write costs and is not
  suitable for any workloads."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import IndexKind

#: Figure 2's thresholds, exposed for the selection-boundary tests.
LOOKUP_RATIO_THRESHOLD = 0.05
WRITE_RATIO_THRESHOLD = 0.50
SMALL_TOPK_THRESHOLD = 100


@dataclass(frozen=True)
class WorkloadProfile:
    """What the application knows about its workload and data."""

    put_fraction: float
    get_fraction: float
    lookup_fraction: float
    range_lookup_fraction: float = 0.0
    typical_top_k: int | None = 10  # None means "no limit"
    time_correlated: bool = False
    space_constrained: bool = False

    def __post_init__(self) -> None:
        total = (self.put_fraction + self.get_fraction
                 + self.lookup_fraction + self.range_lookup_fraction)
        if not 0.99 <= total <= 1.01:
            raise ValueError(
                f"operation fractions must sum to 1, got {total:.3f}")

    @property
    def secondary_query_fraction(self) -> float:
        return self.lookup_fraction + self.range_lookup_fraction


@dataclass(frozen=True)
class Recommendation:
    """The chosen technique plus the reasoning trail."""

    kind: IndexKind
    reasons: tuple[str, ...]


class IndexSelector:
    """Figure 2's decision procedure."""

    def recommend(self, profile: WorkloadProfile) -> Recommendation:
        reasons: list[str] = []
        if profile.space_constrained:
            reasons.append(
                "space is a concern: the Embedded index adds no separate "
                "index table")
            return Recommendation(IndexKind.EMBEDDED, tuple(reasons))
        if profile.time_correlated:
            reasons.append(
                "the attribute is time-correlated: zone maps prune nearly "
                "all blocks, so Embedded matches Stand-Alone query speed "
                "at far lower write cost")
            return Recommendation(IndexKind.EMBEDDED, tuple(reasons))
        if (profile.secondary_query_fraction < LOOKUP_RATIO_THRESHOLD
                and profile.put_fraction > WRITE_RATIO_THRESHOLD):
            reasons.append(
                f"write-heavy (>{WRITE_RATIO_THRESHOLD:.0%} writes) with "
                f"few secondary queries "
                f"(<{LOOKUP_RATIO_THRESHOLD:.0%}): Embedded's near-zero "
                f"write overhead dominates")
            return Recommendation(IndexKind.EMBEDDED, tuple(reasons))
        if profile.typical_top_k is not None \
                and profile.typical_top_k <= SMALL_TOPK_THRESHOLD:
            reasons.append(
                "stand-alone index with small top-K queries: Lazy can stop "
                "after one level once K results are found, while Composite "
                "must traverse every level")
            return Recommendation(IndexKind.LAZY, tuple(reasons))
        reasons.append(
            "stand-alone index with unbounded/large top-K: both cost L "
            "index reads, but Composite avoids Lazy's posting-list "
            "maintenance CPU")
        return Recommendation(IndexKind.COMPOSITE, tuple(reasons))
