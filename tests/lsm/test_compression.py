"""Per-block compression strategies."""

import pytest

from repro.lsm.compression import (
    NoCompression,
    TYPE_NONE,
    TYPE_ZLIB,
    ZlibCompression,
    compressor_for,
    decompress,
)


class TestZlib:
    def test_compressible_payload_roundtrip(self):
        data = b"abc" * 1000
        payload, tag = ZlibCompression().compress(data)
        assert tag == TYPE_ZLIB
        assert len(payload) < len(data)
        assert decompress(payload, tag) == data

    def test_incompressible_stored_raw(self):
        import os

        data = os.urandom(256)
        payload, tag = ZlibCompression().compress(data)
        assert tag == TYPE_NONE
        assert payload == data

    def test_empty(self):
        payload, tag = ZlibCompression().compress(b"")
        assert decompress(payload, tag) == b""


class TestNoCompression:
    def test_identity(self):
        data = b"abc" * 100
        payload, tag = NoCompression().compress(data)
        assert (payload, tag) == (data, TYPE_NONE)
        assert decompress(payload, tag) == data


class TestFactory:
    def test_known_names(self):
        assert compressor_for("none").name == "none"
        assert compressor_for("zlib").name == "zlib"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            compressor_for("snappy")

    def test_unknown_tag(self):
        with pytest.raises(ValueError):
            decompress(b"x", 42)
