"""Live shard split: ship SSTables, replay the WAL tail, flip the ring.

A :class:`ShardSplit` moves half of one shard's keyspace (chosen by
:class:`~repro.dist.partitioner.SplitHashRing`) onto a brand-new shard
while the cluster keeps serving.  The protocol is the classic
checkpoint-then-tail design, expressed as a sequence of *atomic chunks* —
the state machine only yields to the deterministic scheduler **between**
chunks, so every interleaving the drills enumerate is one the protocol
actually admits:

1. **prepare** — register with the cluster: from here on, every acked
   write whose key will move under the next ring is also appended to the
   migration journal (together with the leader's sequence-allocation log,
   so the tail can be replayed with byte-identical sequence numbers).
2. **copy** — checkpoint the source leader into each destination
   replica's filesystem (immutable SSTables + a fresh self-contained
   manifest; internal sequence numbers preserved exactly) and open the
   destination replica group over the shipped files.  The journal is
   cleared inside the same chunk: everything recorded so far is already
   inside the checkpoint, and everything after is exactly the WAL tail.
3. **drain** — replay the journaled tail onto the destination group.
   Writers may keep appending; drain repeats until it observes an empty
   journal.
4. **flip** — replay whatever landed since the last drain, then publish
   the new ring with a single attribute assignment.  Readers route by
   whichever ring they loaded: the old ring never routes to the new
   shard, the new ring only routes moved keys there *after* the tail is
   fully applied — no read ever sees a half-moved shard.
5. **cleanup** — delete moved keys from the source and unmoved copies
   from the destination (group-level deletes, so global secondary
   indexes — which reference records by primary key, routed through the
   live ring — are untouched).

``abort()`` before the flip closes the destination group and deletes
every file it created — zero orphans is a drilled invariant.  After the
flip the split is committed; cleanup is idempotent, so a crash there is
resumed by calling :meth:`run` again.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.core.records import Document
from repro.dist.replication import ReplicaSet, SequenceChannel
from repro.lsm.errors import LSMError
from repro.lsm.vfs import VFS, MemoryVFS


class MigrationError(LSMError):
    """A shard split was driven outside its legal phase transitions."""


@dataclass
class JournalEntry:
    """One acked write whose key moves under the next ring."""

    op: str  # "put" | "delete"
    key: bytes
    document: Document | None
    seq: int
    alloc_log: tuple[tuple[int, int], ...]


class ShardSplit:
    """State machine for splitting one shard onto a new one.

    Drive it with :meth:`step` (one atomic chunk per call, yield points
    between chunks) or :meth:`run` (to completion).  Constructed via
    :meth:`ShardedDB.begin_split`.
    """

    def __init__(self, cluster, source_id: int,
                 vfs_factory: Callable[[int], VFS] | None = None) -> None:
        if not 0 <= source_id < len(cluster.data_shards):
            raise MigrationError(f"no shard {source_id} to split")
        if cluster._migration is not None:
            raise MigrationError("another migration is already in flight")
        self.cluster = cluster
        self.source_id = source_id
        self.new_id = len(cluster.data_shards)
        self.dest_name = f"shard-{self.new_id}"
        self.next_ring = cluster.ring.with_split(source_id, self.new_id)
        self._vfs_factory = vfs_factory or (lambda _replica_id: MemoryVFS())
        self.phase = "prepare"
        self.journal: list[JournalEntry] = []
        self.dest: ReplicaSet | None = None
        self.dest_vfs: list[VFS] = []
        #: Tail entries replayed onto the destination group.
        self.replayed = 0
        #: Journaled writes already inside the checkpoint (skipped).
        self.skipped = 0
        #: Highest sequence the checkpoint shipped; journal entries at or
        #: below it were committed before the copy cut and already live
        #: on the destination.
        self.copied_seq = 0
        #: Keys purged in cleanup: (from source, from destination).
        self.purged = (0, 0)

    # -- scheduling --------------------------------------------------------

    def _hook(self, chunk: str) -> None:
        step_hook = self.cluster._step_hook
        if step_hook is not None:
            step_hook(f"migrate:{chunk}:s{self.source_id}>s{self.new_id}")

    # -- journal capture (called from the cluster write path) --------------

    def observe(self, op: str, key: bytes, document: Document | None,
                shard_id: int, seq: int,
                alloc_log: tuple[tuple[int, int], ...]) -> bool:
        """Record an acked write that the next ring routes to the new
        shard.  Runs inside the write's own atomic step, after the source
        group acked.  Returns whether the write was journaled — if not,
        the caller still owns the problem of any ownership change.

        The migration stays registered (and observing) through cleanup:
        a writer that routed *before* the flip can commit *after* it, and
        its journal entry must ride the cleanup-chunk drain or the acked
        write would be purged as a stray copy."""
        if shard_id != self.source_id:
            return False
        if self.next_ring.shard_of(key) != self.new_id:
            return False
        self.journal.append(JournalEntry(op, key, document, seq, alloc_log))
        return True

    # -- the chunks --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next atomic chunk; returns True while unfinished."""
        if self.phase == "prepare":
            self.cluster._register_migration(self)
            self.phase = "copy"
            self._hook("prepared")
        elif self.phase == "copy":
            self._copy()
            self.phase = "drain"
            self._hook("copied")
        elif self.phase == "drain":
            if self._drain_once():
                self._hook("drained")
            else:
                self.phase = "flip"
        elif self.phase == "flip":
            self._drain_once()
            self.cluster._complete_flip(self)
            self.phase = "cleanup"
            self._hook("flipped")
        elif self.phase == "cleanup":
            self._cleanup()
            self.phase = "done"
            self._hook("cleaned")
        else:
            raise MigrationError(f"cannot step a {self.phase} migration")
        return self.phase not in ("done", "aborted")

    def run(self) -> "ShardSplit":
        while self.step():
            pass
        return self

    def _copy(self) -> None:
        source = self.cluster.data_shards[self.source_id]
        leader = source._serving()
        channel = SequenceChannel(self.cluster.oracle.allocate)
        options = replace(source.options, sequence_oracle=channel.allocate)
        name = self.dest_name
        self.dest_vfs = [self._vfs_factory(replica_id) for replica_id
                         in range(self.cluster.replication_factor)]
        for vfs in self.dest_vfs:
            leader.db.checkpoint(vfs, name)
        self.dest = ReplicaSet.open_replicated(
            self.new_id, self.dest_vfs, source.indexes, options, channel,
            step_hook=self.cluster._step_hook, name=name)
        # Everything journaled so far is inside the checkpoint; everything
        # after this (atomic) chunk is exactly the WAL tail.  A writer
        # parked between its commit and its journal append can still slip
        # an already-checkpointed write into the journal later, so the
        # drains also filter by the checkpoint's sequence watermark.
        self.journal.clear()
        self.copied_seq = self.dest.primary.versions.last_sequence

    def _drain_once(self) -> bool:
        entries = self.journal
        self.journal = []
        for entry in entries:
            if entry.seq <= self.copied_seq:
                self.skipped += 1
                continue
            self.dest.apply_replayed(entry.op, entry.key, entry.document,
                                     entry.alloc_log, entry.seq)
            self.replayed += 1
        return bool(entries)

    def flush_tail(self) -> None:
        """Drain the journal tail immediately (no yield points).

        Called from the cluster write path before a post-flip write lands
        directly on the destination: the tail holds older sequence
        numbers and must apply first or the engine's monotonic-sequence
        guard would (rightly) reject the later replay."""
        if self.dest is not None and self.phase in ("drain", "flip",
                                                    "cleanup"):
            self._drain_once()

    def _cleanup(self) -> None:
        # Writers that routed to the source before the flip may have
        # committed (and journaled) after the flip-chunk drain; replay
        # that last tail before deciding what is a purgeable stray.
        self._drain_once()
        source = self.cluster.data_shards[self.source_id]
        moved = [key for key, _value, _seq
                 in source.primary.scan_with_seq()
                 if self.next_ring.shard_of(key) == self.new_id]
        for key in moved:
            source.apply_local("delete", key, None)
        unmoved = [key for key, _value, _seq
                   in self.dest.primary.scan_with_seq()
                   if self.next_ring.shard_of(key) != self.new_id]
        for key in unmoved:
            self.dest.apply_local("delete", key, None)
        source.flush()
        self.dest.flush()
        self.purged = (len(moved), len(unmoved))
        # Only now stop observing: any later straggler is re-routed by
        # the write path itself (it sees no in-flight migration).
        self.cluster._unregister_migration(self)
        # Durable last: everything cleanup does is idempotent, so a crash
        # before this line just re-runs the purge on reopen.
        self.cluster._save_topology(pending_cleanup=False)

    # -- failure handling --------------------------------------------------

    def abort(self) -> None:
        """Undo an un-flipped split: unregister, close the destination
        group and delete every file it created.  Call after rebooting a
        crash-faulted destination filesystem; illegal once the ring has
        flipped (the split is committed — resume :meth:`run` instead)."""
        if self.phase in ("cleanup", "done"):
            raise MigrationError(
                "the ring has flipped; the split is committed — resume "
                "run() to finish cleanup instead of aborting")
        if self.phase != "aborted":
            self.cluster._unregister_migration(self)
        if self.dest is not None:
            self.dest.close()
            self.dest = None
        # Scope the purge to the destination shard's name prefix: a drill
        # may host every shard (and the cluster manifest) on one shared
        # filesystem, and every file the split created lives under it.
        for vfs in self.dest_vfs:
            for name in list(vfs.list_dir(self.dest_name + "/")):
                vfs.delete_if_exists(name)
        self.journal.clear()
        if self.phase != "aborted":
            # Files first, intent last: a crash in between re-purges the
            # (now empty) prefix on reopen, never orphans it.
            self.cluster._save_topology(in_flight=None)
        self.phase = "aborted"

    def orphan_files(self) -> list[str]:
        """Files still present under the destination shard's prefix (must
        be empty after an abort — the drilled zero-orphans invariant)."""
        leftovers: list[str] = []
        for replica_id, vfs in enumerate(self.dest_vfs):
            for name in vfs.list_dir(self.dest_name + "/"):
                leftovers.append(f"r{replica_id}:{name}")
        return leftovers

    def status(self) -> dict[str, Any]:
        return {
            "source": self.source_id,
            "new_shard": self.new_id,
            "phase": self.phase,
            "journal_depth": len(self.journal),
            "replayed": self.replayed,
            "purged": self.purged,
        }
