"""A sharded store with local or global secondary indexes.

:class:`ShardedDB` runs N single-node :class:`SecondaryIndexedDB` shards
behind a hash partitioner.  Writes are single-shard; reads route by key.
Secondary queries depend on the index scope:

* **local** — each shard indexes its own records (any of the paper's five
  techniques); LOOKUP scatters to all shards and merges top-K;
* **global** — a :class:`GlobalSecondaryIndex` ring partitioned by
  attribute value; LOOKUP touches exactly one index shard, then routes
  per-result GETs back to the data shards for validation.

Recency is globally comparable because every shard draws sequence numbers
from one :class:`SequenceOracle` (the timestamp-oracle pattern), so
cross-shard top-K merges are exact.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Mapping

from repro.core.base import IndexKind, LookupResult
from repro.core.database import SecondaryIndexedDB
from repro.core.lazy import LazyIndex
from repro.core.posting import posting_merge_operator
from repro.core.records import (
    Document,
    attribute_of,
    decode_document,
    key_to_bytes,
)
from repro.dist.partitioner import HashPartitioner
from repro.lsm.db import DB
from repro.lsm.errors import InvalidArgumentError
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS
from repro.lsm.zonemap import encode_attribute


class SequenceOracle:
    """A monotonic cross-shard sequence allocator."""

    def __init__(self) -> None:
        self._next = 1

    def allocate(self, count: int) -> int:
        """Reserve ``count`` consecutive sequence numbers; returns the first."""
        first = self._next
        self._next += count
        return first

    @property
    def last_allocated(self) -> int:
        """The highest sequence number handed out so far."""
        return self._next - 1


class _RoutedValidity:
    """Duck-typed stand-in for :class:`~repro.core.validity.ValidityChecker`
    whose data-table GETs route across shards by primary key."""

    def __init__(self, fetch: Callable[[bytes], tuple[bytes, int] | None]
                 ) -> None:
        self._fetch = fetch
        self.validation_gets = 0

    def fetch_valid(self, key: bytes, predicate) -> tuple[Document, int] | None:
        """Routed GET + predicate check (ValidityChecker's contract)."""
        self.validation_gets += 1
        found = self._fetch(key)
        if found is None:
            return None
        value, seq = found
        document = decode_document(value)
        if not predicate(document):
            return None
        return document, seq


class GlobalSecondaryIndex:
    """DynamoDB-style GSI: one lazy index ring, partitioned by value.

    Each index shard is a Lazy stand-alone index over the *whole* dataset's
    slice of attribute values, so LOOKUP(value) resolves on a single shard.
    Range behaviour depends on the partitioner: hash partitioning scatters
    ranges across the whole ring (the limitation DynamoDB documents);
    range partitioning (pass a :class:`~repro.dist.partitioner
    .RangePartitioner`) contacts only the shards whose value intervals
    overlap the query.
    """

    def __init__(self, attribute: str, num_index_shards: int,
                 options: Options, checker: _RoutedValidity,
                 partitioner=None) -> None:
        self.attribute = attribute
        self.partitioner = partitioner or HashPartitioner(num_index_shards)
        if self.partitioner.num_shards != num_index_shards:
            raise InvalidArgumentError(
                f"partitioner covers {self.partitioner.num_shards} shards, "
                f"expected {num_index_shards}")
        self.checker = checker
        self._index_options = replace(options, indexed_attributes=(),
                                      merge_operator=posting_merge_operator)
        self.shards: list[LazyIndex] = []
        for shard_id in range(num_index_shards):
            index_db = DB.open(MemoryVFS(), f"gsi-{attribute}-{shard_id}",
                               self._index_options)
            self.shards.append(LazyIndex(attribute, index_db, checker))
        #: Index shards touched by queries (the cross-shard fan-out metric).
        self.shards_contacted = 0

    def _shard_for(self, value: Any) -> LazyIndex:
        return self.shards[self.partitioner.shard_of(
            encode_attribute(value))]

    # -- maintenance -----------------------------------------------------------

    def on_put(self, key: bytes, document: Document, seq: int) -> None:
        """Route the posting fragment to the value's index shard."""
        value = attribute_of(document, self.attribute)
        if value is None:
            return
        self._shard_for(value).on_put(key, document, seq)

    def on_delete(self, key: bytes, old_document: Document | None,
                  seq: int) -> None:
        """Route a deletion marker to the *old* value's index shard."""
        if old_document is None:
            return
        value = attribute_of(old_document, self.attribute)
        if value is None:
            return
        self._shard_for(value).on_delete(key, old_document, seq)

    # -- queries --------------------------------------------------------------

    def lookup(self, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        """LOOKUP resolved on the single index shard owning ``value``."""
        self.shards_contacted += 1
        return self._shard_for(value).lookup(value, k, early_termination)

    def range_lookup(self, low: Any, high: Any, k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        """RANGELOOKUP over the index shards that can hold in-range values."""
        shard_ids = self.partitioner.shards_overlapping(
            encode_attribute(low), encode_attribute(high))
        merged: list[LookupResult] = []
        for shard_id in shard_ids:
            self.shards_contacted += 1
            merged.extend(self.shards[shard_id].range_lookup(
                low, high, k, early_termination))
        # A record updated between two in-range values leaves a stale
        # posting on a *different* index shard; both copies validate
        # against the live record, so deduplicate by primary key (the
        # copies are identical results).
        merged.sort(key=lambda r: -r.seq)
        seen: set[str] = set()
        deduped = []
        for result in merged:
            if result.key in seen:
                continue
            seen.add(result.key)
            deduped.append(result)
        return deduped if k is None else deduped[:k]

    def rebuild(self, data_shards: list[SecondaryIndexedDB]) -> int:
        """Discard the ring and replay every live record from the shards.

        The data shards are authoritative (same contract as
        :meth:`SecondaryIndexedDB.rebuild_index`): a ring left stale by a
        mid-maintenance fault is regenerated wholesale, so afterwards it
        answers queries exactly as a ring that never missed an update.
        Returns the number of records replayed.
        """
        for shard in self.shards:
            shard.close()
        self.shards = []
        for shard_id in range(self.partitioner.num_shards):
            index_db = DB.open(MemoryVFS(),
                               f"gsi-{self.attribute}-{shard_id}",
                               self._index_options)
            self.shards.append(LazyIndex(self.attribute, index_db,
                                         self.checker))
        replayed = 0
        for data_shard in data_shards:
            for key_bytes, value, seq in data_shard.primary.scan_with_seq():
                self.on_put(key_bytes, decode_document(value), seq)
                replayed += 1
        for shard in self.shards:
            shard.flush()
        return replayed

    def size_bytes(self) -> int:
        """Total bytes across the whole index ring."""
        return sum(shard.size_bytes() for shard in self.shards)

    def close(self) -> None:
        """Close every index shard."""
        for shard in self.shards:
            shard.close()


class ShardedDB:
    """N data shards + optional global index rings behind one facade."""

    def __init__(self, data_shards: list[SecondaryIndexedDB],
                 partitioner: HashPartitioner,
                 local_attributes: set[str],
                 global_indexes: dict[str, GlobalSecondaryIndex],
                 oracle: SequenceOracle) -> None:
        """Assembled by :meth:`open_memory`."""
        self.data_shards = data_shards
        self.partitioner = partitioner
        self.local_attributes = local_attributes
        self.global_indexes = global_indexes
        self.oracle = oracle
        #: Data shards touched by secondary queries (scatter-gather cost).
        self.data_shards_contacted = 0
        #: GSI rings that missed a maintenance update (fault mid-put) and
        #: must be rebuilt from the data shards before serving queries.
        self._dirty_global: set[str] = set()
        self._closed = False

    @classmethod
    def open_memory(cls, num_shards: int = 4,
                    local_indexes: Mapping[str, IndexKind] | None = None,
                    global_indexes: tuple[str, ...] = (),
                    options: Options | None = None,
                    num_index_shards: int | None = None,
                    global_split_points: Mapping[str, list] | None = None
                    ) -> "ShardedDB":
        """Build a cluster: ``local_indexes`` live on every data shard;
        each attribute in ``global_indexes`` gets its own GSI ring.

        ``global_split_points`` switches an attribute's GSI ring from hash
        to range partitioning: the given attribute *values* become the
        shard boundaries (``len(points) + 1`` index shards), letting
        RANGELOOKUPs contact only overlapping shards.
        """
        from repro.dist.partitioner import RangePartitioner

        local_indexes = dict(local_indexes or {})
        global_split_points = dict(global_split_points or {})
        overlap = set(local_indexes) & set(global_indexes)
        if overlap:
            raise InvalidArgumentError(
                f"attributes indexed both locally and globally: {overlap}")
        unknown = set(global_split_points) - set(global_indexes)
        if unknown:
            raise InvalidArgumentError(
                f"split points for non-global attributes: {unknown}")
        oracle = SequenceOracle()
        base_options = replace(options or Options(),
                               sequence_oracle=oracle.allocate)
        partitioner = HashPartitioner(num_shards)
        shards = [
            SecondaryIndexedDB.open_memory(
                indexes=local_indexes, options=base_options,
                name=f"shard-{shard_id}")
            for shard_id in range(num_shards)]
        cluster = cls(shards, partitioner, set(local_indexes), {}, oracle)
        checker = _RoutedValidity(cluster._routed_get_with_seq)
        for attribute in global_indexes:
            if attribute in global_split_points:
                splits = [encode_attribute(value)
                          for value in global_split_points[attribute]]
                index_partitioner = RangePartitioner(splits)
                ring_size = index_partitioner.num_shards
            else:
                index_partitioner = None
                ring_size = num_index_shards or num_shards
            cluster.global_indexes[attribute] = GlobalSecondaryIndex(
                attribute, ring_size, base_options, checker,
                partitioner=index_partitioner)
        return cluster

    # -- routing ---------------------------------------------------------------

    def _shard_for(self, key: bytes) -> SecondaryIndexedDB:
        return self.data_shards[self.partitioner.shard_of(key)]

    def _routed_get_with_seq(self, key: bytes) -> tuple[bytes, int] | None:
        self.data_shards_contacted += 1
        return self._shard_for(key).primary.get_with_seq(key)

    # -- base operations ---------------------------------------------------------

    def put(self, key: str | bytes, document: Document) -> int:
        """Write to the owning data shard, then maintain every GSI.

        The record is durable once the shard write returns; a fault while
        maintaining a GSI marks that ring dirty (it rebuilds before its
        next query) instead of leaving it silently stale.
        """
        self._check_open()
        key_bytes = key_to_bytes(key)
        shard = self._shard_for(key_bytes)
        seq = shard.put(key_bytes, document)
        self._maintain_global(
            lambda index: index.on_put(key_bytes, document, seq))
        return seq

    def get(self, key: str | bytes) -> Document | None:
        """Point read, routed by primary key."""
        self._check_open()
        return self._shard_for(key_to_bytes(key)).get(key)

    def delete(self, key: str | bytes) -> int:
        """Delete from the owning shard; GSIs get deletion markers.

        The tombstone's sequence number comes from the delete itself —
        reading ``versions.last_sequence`` afterwards would race a
        concurrent writer on the same shard and stamp the GSI marker with
        a stranger's sequence, breaking the globally-comparable-sequence
        invariant :meth:`_scatter_gather` and validation rely on.
        """
        self._check_open()
        key_bytes = key_to_bytes(key)
        shard = self._shard_for(key_bytes)
        old_document = None
        if self.global_indexes:
            old_document = shard.get(key_bytes)
        seq = shard.delete(key_bytes)
        self._maintain_global(
            lambda index: index.on_delete(key_bytes, old_document, seq))
        return seq

    def _maintain_global(self, apply: Callable[[GlobalSecondaryIndex], None]
                         ) -> None:
        """Apply one maintenance op to every GSI ring, containing faults.

        The data-shard write has already committed when this runs, so a
        fault here must not strand the index silently: the failing ring is
        marked dirty (rebuilt from the shards before its next query), the
        remaining rings still get their update, and the first fault is
        re-raised so the caller sees the failure.
        """
        first_error: Exception | None = None
        for attribute, index in self.global_indexes.items():
            if attribute in self._dirty_global:
                continue  # pending rebuild will replay this write anyway
            try:
                apply(index)
            except Exception as exc:  # noqa: BLE001 - re-raised below
                self._dirty_global.add(attribute)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    # -- secondary queries ---------------------------------------------------------

    def lookup(self, attribute: str, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        """LOOKUP: one GSI shard (global) or all-shard scatter (local)."""
        self._check_open()
        if attribute in self.global_indexes:
            if attribute in self._dirty_global:
                self.rebuild_global_index(attribute)
            return self.global_indexes[attribute].lookup(
                value, k, early_termination)
        if attribute not in self.local_attributes:
            raise InvalidArgumentError(
                f"no index on attribute {attribute!r}")
        return self._scatter_gather(
            lambda shard: shard.lookup(attribute, value, k,
                                       early_termination), k)

    def range_lookup(self, attribute: str, low: Any, high: Any,
                     k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        """RANGELOOKUP, routed or scattered per the attribute's scope."""
        self._check_open()
        if attribute in self.global_indexes:
            if attribute in self._dirty_global:
                self.rebuild_global_index(attribute)
            return self.global_indexes[attribute].range_lookup(
                low, high, k, early_termination)
        if attribute not in self.local_attributes:
            raise InvalidArgumentError(
                f"no index on attribute {attribute!r}")
        return self._scatter_gather(
            lambda shard: shard.range_lookup(attribute, low, high, k,
                                             early_termination), k)

    def _scatter_gather(self, query, k: int | None) -> list[LookupResult]:
        """Local indexes: ask every shard for its top-K, merge exactly.

        Per-shard results are each correct top-K lists under globally
        comparable sequence numbers, so the merged prefix is the global
        top-K.
        """
        merged: list[LookupResult] = []
        for shard in self.data_shards:
            self.data_shards_contacted += 1
            merged.extend(query(shard))
        merged.sort(key=lambda r: -r.seq)
        return merged if k is None else merged[:k]

    # -- index healing -------------------------------------------------------------

    def dirty_global_indexes(self) -> list[str]:
        """Attributes whose GSI ring missed an update and awaits rebuild."""
        return sorted(self._dirty_global)

    def rebuild_global_index(self, attribute: str) -> int:
        """Rebuild one GSI ring from the (authoritative) data shards.

        Returns the number of records replayed; clears the dirty mark.
        """
        self._check_open()
        index = self.global_indexes.get(attribute)
        if index is None:
            raise InvalidArgumentError(
                f"no global index on attribute {attribute!r}")
        replayed = index.rebuild(self.data_shards)
        self._dirty_global.discard(attribute)
        return replayed

    def heal_indexes(self) -> dict[str, int]:
        """Rebuild every dirty GSI ring and every shard's quarantined index.

        Returns ``{"global:attr" | "shardN:attr": records_replayed}`` —
        the cluster-wide face of the single-node ``heal_indexes``
        machinery.
        """
        self._check_open()
        healed: dict[str, int] = {}
        for attribute in self.dirty_global_indexes():
            healed[f"global:{attribute}"] = \
                self.rebuild_global_index(attribute)
        for shard_id, shard in enumerate(self.data_shards):
            for attribute, replayed in shard.heal_indexes().items():
                healed[f"shard{shard_id}:{attribute}"] = replayed
        return healed

    # -- introspection -------------------------------------------------------------

    def total_size(self) -> int:
        """Bytes across all data shards and global index rings."""
        total = sum(shard.total_size() for shard in self.data_shards)
        total += sum(index.size_bytes()
                     for index in self.global_indexes.values())
        return total

    def shard_record_counts(self) -> list[int]:
        """Live records per shard (balance check)."""
        return [sum(1 for _ in shard.primary.scan())
                for shard in self.data_shards]

    def close(self) -> None:
        """Close every data shard and GSI ring (idempotent)."""
        if self._closed:
            return
        for shard in self.data_shards:
            shard.close()
        for index in self.global_indexes.values():
            index.close()
        self._closed = True

    def __enter__(self) -> "ShardedDB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            from repro.lsm.errors import DBClosedError

            raise DBClosedError("cluster is closed")
