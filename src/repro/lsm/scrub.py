"""Background CRC scrubber: finds silent bit rot before a query does.

With ``paranoid_checks`` off (the default — the paper's I/O accounting
reads data blocks without a per-read checksum pass), a flipped bit in a
data block sits undetected until a scan or compaction happens to decode
it.  The :class:`Scrubber` closes that window: it walks every live
SSTable, the WAL tail and the manifest, re-reading every block with
``verify_crc=True`` — always, regardless of ``paranoid_checks`` — and
reports (and, under ``on_corruption="quarantine"``, contains) whatever
it finds.

The walk is *budgeted* and *resumable*: ``Scrubber.run(block_budget=N)``
verifies about ``N`` blocks and remembers where it stopped, so a
maintenance loop can amortize a full-database pass over many small slices
instead of stalling the world.  The cursor is table-granular (a table,
once started, is always finished — so any budget makes forward progress,
and resumption stays correct across compactions that rewrite the file
set mid-cycle); the budget may therefore overshoot by up to one table's
block count.

Every read here bypasses the table cache, the block cache and (via a
fresh file handle) any already-decoded state: the scrubber's job is to
check the *bytes on disk*, not the caches' memory of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsm.errors import CorruptionError, NotFoundError
from repro.lsm.manifest import (
    manifest_file_name,
    read_current_manifest_number,
    table_file_name,
)
from repro.lsm.vfs import Category
from repro.lsm.version import VersionEdit
from repro.lsm.wal import LogReader


@dataclass
class ScrubReport:
    """Outcome of one :meth:`Scrubber.run` slice."""

    tables_scanned: int = 0
    blocks_verified: int = 0
    wal_files_verified: int = 0
    manifest_verified: bool = False
    problems: list[str] = field(default_factory=list)
    quarantined: list[int] = field(default_factory=list)
    #: True when this run finished a full cycle (all tables + WAL +
    #: manifest); False when the block budget ran out mid-cycle.
    complete: bool = False

    @property
    def clean(self) -> bool:
        return not self.problems


class Scrubber:
    """Budgeted, resumable CRC verification over one :class:`~repro.lsm.db.DB`.

    Persist the instance (``DB.scrub()`` does) and call :meth:`run`
    repeatedly; each call continues where the previous budget ran out.
    """

    def __init__(self, db) -> None:
        self.db = db
        self._cursor = 0       # first file_number not yet fully verified
        self.cycles_completed = 0

    def run(self, block_budget: int | None = None) -> ScrubReport:
        """Verify up to ``block_budget`` blocks (None = the whole cycle)."""
        db = self.db
        report = ScrubReport()
        with db._mutex:
            live = sorted(
                (meta.file_number for _lvl, meta in
                 db.versions.current.all_files()),
                )
        for file_number in live:
            if file_number < self._cursor:
                continue
            if db.is_quarantined(file_number):
                continue  # already known bad; repair handles it
            # The budget is enforced at table boundaries: a table, once
            # started, is always finished (so even a budget of 1 makes
            # forward progress — a per-block cursor would go stale when a
            # compaction rewrote the file mid-cycle).
            if block_budget is not None and \
                    report.blocks_verified >= block_budget:
                self._cursor = file_number
                return report
            self._scrub_table(file_number, report)
        # Tables done; the WAL tail and manifest are small — always finish
        # them within the run that completes the table walk.
        self._scrub_wal(report)
        self._scrub_manifest(report)
        self._cursor = 0
        self.cycles_completed += 1
        report.complete = True
        return report

    # -- pieces -------------------------------------------------------------

    def _contain(self, file_number: int, exc: CorruptionError,
                 report: ScrubReport) -> None:
        db = self.db
        if db.options.on_corruption == "quarantine":
            db.corruption_stats.events += 1
            db._quarantine_table(file_number, exc)
            report.quarantined.append(file_number)

    def _scrub_table(self, file_number: int, report: ScrubReport) -> None:
        from repro.lsm.sstable import SSTable, _read_physical_block

        db = self.db
        name = table_file_name(db.name, file_number)
        try:
            handle = db.vfs.open_random(name)
        except NotFoundError:
            return  # compacted away since the file list was taken
        try:
            # Opening verifies footer, index block and every meta block
            # (meta CRCs are always checked; under the quarantine policy a
            # bad one degrades into degraded_filters instead of raising).
            try:
                table = SSTable(db.options, handle, file_number)
            except CorruptionError as exc:
                report.problems.append(
                    f"table {file_number}: unreadable ({exc})")
                self._contain(file_number, exc, report)
                return
            report.tables_scanned += 1
            report.blocks_verified += 1  # footer + index, charged as one
            for degraded in table.degraded_filters:
                report.problems.append(
                    f"table {file_number}: corrupt meta block {degraded!r}")
            bad_blocks = 0
            for block_index in range(table.num_data_blocks):
                report.blocks_verified += 1
                block_handle = table._index_entries[block_index][1]
                try:
                    _read_physical_block(
                        table.file, block_handle, Category.OTHER,
                        verify_crc=True, options=db.options)
                except CorruptionError as exc:
                    bad_blocks += 1
                    report.problems.append(
                        f"table {file_number} block {block_index}: {exc}")
            if bad_blocks or table.degraded_filters:
                self._contain(
                    file_number,
                    CorruptionError(
                        f"scrub found {bad_blocks} bad data blocks and "
                        f"{len(table.degraded_filters)} bad meta blocks"),
                    report)
        finally:
            handle.close()

    def _scrub_wal(self, report: ScrubReport) -> None:
        db = self.db
        log_names = sorted(name for name in db.vfs.list_dir(db.name + "/")
                           if name.endswith(".log"))
        for name in log_names:
            try:
                reader = LogReader(db.vfs.open_random(name))
            except NotFoundError:
                continue
            report.wal_files_verified += 1
            try:
                for _payload in reader:
                    pass  # CRCs verified by iteration; a torn tail is fine
            except CorruptionError as exc:
                report.problems.append(f"WAL {name}: {exc}")

    def _scrub_manifest(self, report: ScrubReport) -> None:
        db = self.db
        try:
            number = read_current_manifest_number(db.vfs, db.name)
        except CorruptionError as exc:
            report.problems.append(f"CURRENT: {exc}")
            return
        if number is None:
            return
        name = manifest_file_name(db.name, number)
        try:
            reader = LogReader(db.vfs.open_random(name))
        except NotFoundError:
            report.problems.append(f"manifest {name}: missing")
            return
        try:
            for payload in reader:
                VersionEdit.decode(payload)
        except CorruptionError as exc:
            report.problems.append(f"manifest {name}: {exc}")
            return
        report.manifest_verified = True
