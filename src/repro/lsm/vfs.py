"""Virtual filesystem with block-grained I/O accounting.

The paper's primary experimental metric is the *number of disk block
accesses* performed by each indexing technique (Figures 9c and 13-15 plot
cumulative disk I/O; Tables 3 and 5 bound it analytically).  Re-running the
original experiments on spinning rust would make results hardware-dependent
and non-deterministic, so every byte the engine reads or writes flows
through a :class:`VFS` that meters I/O in 4 KiB device-block units.

Two implementations are provided:

:class:`MemoryVFS`
    Files live in ``bytearray`` buffers.  Fast and fully deterministic; the
    default for tests and benchmarks.  A single instance can be shared
    across DB open/close cycles to exercise recovery paths.

:class:`LocalVFS`
    Files live on the real filesystem, for durability demonstrations and
    for anyone who wants to inspect the produced SSTables.

Reads are tagged with a :class:`Category` so experiments can split, e.g.,
compaction I/O from query I/O exactly as the paper's figures do.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from enum import Enum

from repro.lsm.errors import NotFoundError

#: Device block size used to convert byte counts into I/O operations.
DEVICE_BLOCK_SIZE = 4096


class Category(str, Enum):
    """What a read or write was performed for.

    The categories correspond to the series the paper plots separately:
    query-time data reads, index(-table) reads, compaction traffic and log
    writes.
    """

    DATA = "data"
    INDEX = "index"
    FILTER = "filter"
    COMPACTION = "compaction"
    FLUSH = "flush"
    WAL = "wal"
    MANIFEST = "manifest"
    OTHER = "other"


def _blocks(nbytes: int) -> int:
    """Number of device blocks touched by an access of ``nbytes`` bytes."""
    if nbytes <= 0:
        return 0
    return -(-nbytes // DEVICE_BLOCK_SIZE)


@dataclass
class IOStats:
    """Counters of device-block reads and writes, split by category.

    ``read_ops``/``write_ops`` count *accesses* (seeks, roughly); the
    ``*_blocks`` counters count 4 KiB device blocks, which is the unit the
    paper calls a "disk access".
    """

    read_ops: int = 0
    write_ops: int = 0
    read_blocks: int = 0
    write_blocks: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    reads_by_category: dict[str, int] = field(default_factory=dict)
    writes_by_category: dict[str, int] = field(default_factory=dict)

    def record_read(self, nbytes: int, category: Category) -> None:
        blocks = _blocks(nbytes)
        self.read_ops += 1
        self.read_blocks += blocks
        self.read_bytes += nbytes
        key = category.value
        self.reads_by_category[key] = self.reads_by_category.get(key, 0) + blocks

    def record_write(self, nbytes: int, category: Category) -> None:
        blocks = _blocks(nbytes)
        self.write_ops += 1
        self.write_blocks += blocks
        self.write_bytes += nbytes
        key = category.value
        self.writes_by_category[key] = self.writes_by_category.get(key, 0) + blocks

    def snapshot(self) -> "IOStats":
        """Copy of the current counters (for before/after deltas)."""
        return IOStats(
            read_ops=self.read_ops,
            write_ops=self.write_ops,
            read_blocks=self.read_blocks,
            write_blocks=self.write_blocks,
            read_bytes=self.read_bytes,
            write_bytes=self.write_bytes,
            reads_by_category=dict(self.reads_by_category),
            writes_by_category=dict(self.writes_by_category),
        )

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
            read_blocks=self.read_blocks - earlier.read_blocks,
            write_blocks=self.write_blocks - earlier.write_blocks,
            read_bytes=self.read_bytes - earlier.read_bytes,
            write_bytes=self.write_bytes - earlier.write_bytes,
            reads_by_category={
                key: value - earlier.reads_by_category.get(key, 0)
                for key, value in self.reads_by_category.items()
                if value != earlier.reads_by_category.get(key, 0)
            },
            writes_by_category={
                key: value - earlier.writes_by_category.get(key, 0)
                for key, value in self.writes_by_category.items()
                if value != earlier.writes_by_category.get(key, 0)
            },
        )

    @property
    def total_blocks(self) -> int:
        return self.read_blocks + self.write_blocks


class WritableFile:
    """Append-only file handle."""

    def append(self, data: bytes, category: Category = Category.OTHER) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError


class RandomAccessFile:
    """Positional-read file handle."""

    def read_at(self, offset: int, length: int,
                category: Category = Category.DATA,
                charge: bool = True) -> bytes:
        """Read ``length`` bytes at ``offset``.

        ``charge=False`` performs the read without touching the I/O
        counters; the buffer-cache simulator uses it to serve hits "from
        memory".
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError


class VFS:
    """Abstract filesystem interface used by the engine."""

    def __init__(self) -> None:
        self.stats = IOStats()
        self._lock = threading.Lock()

    # -- file lifecycle -----------------------------------------------------

    def create(self, name: str) -> WritableFile:
        raise NotImplementedError

    def open_random(self, name: str) -> RandomAccessFile:
        raise NotImplementedError

    def read_whole(self, name: str, category: Category = Category.OTHER) -> bytes:
        handle = self.open_random(name)
        try:
            return handle.read_at(0, handle.size, category)
        finally:
            handle.close()

    def write_whole(self, name: str, data: bytes,
                    category: Category = Category.OTHER) -> None:
        handle = self.create(name)
        try:
            handle.append(data, category)
            handle.sync()
        finally:
            handle.close()

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        raise NotImplementedError

    def delete_if_exists(self, name: str) -> bool:
        """Delete ``name`` if present; returns whether it existed.

        Recovery paths use this where a crash may already have removed the
        file (for example the previous WAL after an interrupted flush).
        """
        try:
            self.delete(name)
        except NotFoundError:
            return False
        return True

    def rename(self, old: str, new: str) -> None:
        raise NotImplementedError

    def list_dir(self, prefix: str = "") -> list[str]:
        raise NotImplementedError

    def file_size(self, name: str) -> int:
        raise NotImplementedError

    def total_size(self, prefix: str = "") -> int:
        """Sum of file sizes under ``prefix`` (the "database size" metric)."""
        return sum(self.file_size(name) for name in self.list_dir(prefix))

    def reset_stats(self) -> None:
        self.stats = IOStats()


class _MemoryWritable(WritableFile):
    def __init__(self, vfs: "MemoryVFS", name: str) -> None:
        self._vfs = vfs
        self._name = name
        self._buffer = bytearray()
        self._closed = False
        vfs._files[name] = self._buffer

    def append(self, data: bytes, category: Category = Category.OTHER) -> None:
        if self._closed:
            raise ValueError(f"file already closed: {self._name}")
        self._buffer.extend(data)
        self._vfs.stats.record_write(len(data), category)

    def flush(self) -> None:
        return None

    def sync(self) -> None:
        return None

    def close(self) -> None:
        self._closed = True

    @property
    def size(self) -> int:
        return len(self._buffer)


class _MemoryRandomAccess(RandomAccessFile):
    def __init__(self, vfs: "MemoryVFS", name: str) -> None:
        if name not in vfs._files:
            raise NotFoundError(f"no such file: {name}")
        self._vfs = vfs
        self._name = name
        self._buffer = vfs._files[name]

    def read_at(self, offset: int, length: int,
                category: Category = Category.DATA,
                charge: bool = True) -> bytes:
        data = bytes(self._buffer[offset:offset + length])
        if charge:
            self._vfs.stats.record_read(len(data), category)
        return data

    def close(self) -> None:
        return None

    @property
    def size(self) -> int:
        return len(self._buffer)


class MemoryVFS(VFS):
    """In-memory filesystem: deterministic, fast, and metered."""

    def __init__(self) -> None:
        super().__init__()
        self._files: dict[str, bytearray] = {}

    def create(self, name: str) -> WritableFile:
        return _MemoryWritable(self, name)

    def open_random(self, name: str) -> RandomAccessFile:
        return _MemoryRandomAccess(self, name)

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        del self._files[name]

    def rename(self, old: str, new: str) -> None:
        if old not in self._files:
            raise NotFoundError(f"no such file: {old}")
        self._files[new] = self._files.pop(old)

    def list_dir(self, prefix: str = "") -> list[str]:
        return sorted(name for name in self._files if name.startswith(prefix))

    def file_size(self, name: str) -> int:
        if name not in self._files:
            raise NotFoundError(f"no such file: {name}")
        return len(self._files[name])


class _LocalWritable(WritableFile):
    def __init__(self, vfs: "LocalVFS", path: str) -> None:
        self._vfs = vfs
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._fh = open(path, "wb")

    def append(self, data: bytes, category: Category = Category.OTHER) -> None:
        self._fh.write(data)
        self._vfs.stats.record_write(len(data), category)

    def flush(self) -> None:
        self._fh.flush()

    def sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    @property
    def size(self) -> int:
        return self._fh.tell()


class _LocalRandomAccess(RandomAccessFile):
    def __init__(self, vfs: "LocalVFS", path: str) -> None:
        if not os.path.exists(path):
            raise NotFoundError(f"no such file: {path}")
        self._vfs = vfs
        self._fh = open(path, "rb")
        self._size = os.path.getsize(path)

    def read_at(self, offset: int, length: int,
                category: Category = Category.DATA,
                charge: bool = True) -> bytes:
        # Positional read: seek()+read() on the shared handle is not
        # thread-safe — concurrent readers would interleave positions and
        # hand each other bytes from the wrong offset.
        data = os.pread(self._fh.fileno(), length, offset)
        if charge:
            self._vfs.stats.record_read(len(data), category)
        return data

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    @property
    def size(self) -> int:
        return self._size


class LocalVFS(VFS):
    """Filesystem-backed VFS rooted at ``root``."""

    def __init__(self, root: str) -> None:
        super().__init__()
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def create(self, name: str) -> WritableFile:
        return _LocalWritable(self, self._path(name))

    def open_random(self, name: str) -> RandomAccessFile:
        return _LocalRandomAccess(self, self._path(name))

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def delete(self, name: str) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise NotFoundError(f"no such file: {name}")
        os.remove(path)

    def rename(self, old: str, new: str) -> None:
        old_path = self._path(old)
        if not os.path.exists(old_path):
            raise NotFoundError(f"no such file: {old}")
        os.replace(old_path, self._path(new))

    def list_dir(self, prefix: str = "") -> list[str]:
        found: list[str] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                rel = os.path.relpath(os.path.join(dirpath, filename), self.root)
                rel = rel.replace(os.sep, "/")
                if rel.startswith(prefix):
                    found.append(rel)
        return sorted(found)

    def file_size(self, name: str) -> int:
        path = self._path(name)
        if not os.path.exists(path):
            raise NotFoundError(f"no such file: {name}")
        return os.path.getsize(path)
