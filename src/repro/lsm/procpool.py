"""Multiprocess compaction: ship merge work out of the GIL (DESIGN.md §11).

Compaction is the engine's CPU hog — varint decoding, CRC32, zlib and a
pure-Python k-way merge — and in threaded mode all of it contends with
foreground GETs for one interpreter lock.  SSTables are immutable and the
manifest is the only mutable truth, which makes compaction embarrassingly
exportable: a *job* is just the input files' metadata, the snapshot
horizon, deeper-level key bounds and an options snapshot.  A worker
process re-opens the inputs through its own :class:`~repro.lsm.vfs.LocalVFS`
handle, runs exactly the same merge pipeline
(:func:`repro.lsm.compaction.merge_entry_streams`) and reports
manifest-ready :class:`~repro.lsm.version.FileMetaData` back; the
coordinator installs the version edit under its existing locks.  While the
worker burns CPU, the coordinator thread sits in ``Connection.poll`` —
which releases the GIL — so foreground reads keep their interpreter.

Protocol (one ``multiprocessing`` pipe per worker, strictly half-duplex
within a job)::

    coordinator -> worker   ("job",   {...})         dispatch
    worker -> coordinator   ("alloc", None)          request a file number
    coordinator -> worker   ("alloc", n)             ... from VersionSet
    worker -> coordinator   ("done",  {...result})   terminal
    worker -> coordinator   ("fail",  {...error})    terminal
    coordinator -> worker   ("quit",  None)          shutdown

File numbers are allocated by the coordinator *during* the job (workers
write real ``NNNNNN.ldb`` names directly — no temp-file rename pass), so a
job that dies can leave orphans only among the numbers the coordinator
handed out; it deletes exactly those before retrying or abandoning, which
is what keeps ``verify_integrity()`` clean through worker crashes.  A
coordinator that itself crashes mid-job leaves non-live ``.ldb`` files,
and recovery's ``_delete_obsolete_files`` already collects those.

Workers are spawned (never forked — the coordinator runs threads) and are
daemonic: a dying coordinator cannot leak them.
"""

from __future__ import annotations

import importlib
import logging
import multiprocessing
import threading
import time
from dataclasses import fields as dataclass_fields

from repro.lsm import errors as lsm_errors
from repro.lsm.compaction import (
    CompactionOutputWriter,
    CompactionStats,
    bounds_base_predicate,
    merge_entry_streams,
    table_entry_stream,
)
from repro.lsm.errors import CompactionWorkerError, LSMError
from repro.lsm.manifest import table_file_name
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData
from repro.lsm.vfs import LocalVFS

logger = logging.getLogger(__name__)

#: Times a job is re-dispatched to a fresh worker after a worker *death*
#: (reported exceptions are deterministic and never retried).
MAX_JOB_RETRIES = 1

#: Seconds between liveness checks while waiting on a worker pipe.  The
#: wait itself releases the GIL — this is the multiprocess mode's entire
#: point — so the poll granularity only bounds death-detection latency.
_POLL_SECONDS = 0.05


# -- options snapshot ---------------------------------------------------------

#: Options fields excluded from the worker snapshot: process-local hooks
#: (shipped by reference below or meaningless in a worker).
_UNPICKLED_FIELDS = frozenset({
    "attribute_extractor", "merge_operator", "sequence_oracle", "step_hook",
})


def _callable_ref(fn) -> str | None:
    """``"module:qualname"`` if ``fn`` is importable by that path, else None."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        return None
    try:
        resolved = _resolve_ref(f"{module}:{qualname}")
    except Exception:
        return None
    return f"{module}:{qualname}" if resolved is fn else None


def _resolve_ref(ref: str):
    module, _sep, qualname = ref.partition(":")
    obj = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def snapshot_options(options: Options) -> tuple[dict | None, str | None]:
    """``(document, None)`` or ``(None, reason)`` when not exportable.

    Plain fields ship by value; the merge operator and attribute extractor
    ship as import paths (a lambda or closure cannot cross a spawn
    boundary, so such configurations fall back to in-process compaction).
    """
    doc = {}
    for field in dataclass_fields(Options):
        if field.name in _UNPICKLED_FIELDS:
            continue
        value = getattr(options, field.name)
        if field.name == "indexed_attributes":
            value = list(value)
        doc[field.name] = value
    # Workers never open a DB, but keep the snapshot honest anyway.
    doc["background_compaction"] = False
    doc["compaction_processes"] = 0
    doc["shm_cache_bytes"] = 0
    if options.merge_operator is not None:
        ref = _callable_ref(options.merge_operator)
        if ref is None:
            return None, ("merge_operator is not importable by path; "
                          "worker processes cannot apply it")
        doc["merge_operator_ref"] = ref
    if options.indexed_attributes:
        ref = _callable_ref(options.attribute_extractor)
        if ref is None:
            return None, ("attribute_extractor is not importable by path; "
                          "worker processes cannot run it")
        doc["attribute_extractor_ref"] = ref
    return doc, None


def restore_options(doc: dict) -> Options:
    doc = dict(doc)
    merge_ref = doc.pop("merge_operator_ref", None)
    extractor_ref = doc.pop("attribute_extractor_ref", None)
    doc["indexed_attributes"] = tuple(doc.get("indexed_attributes", ()))
    options = Options(**doc)
    if merge_ref is not None:
        options.merge_operator = _resolve_ref(merge_ref)
    if extractor_ref is not None:
        options.attribute_extractor = _resolve_ref(extractor_ref)
    return options


# -- worker side --------------------------------------------------------------


def _worker_main(conn) -> None:
    """Worker process entry point: serve jobs until ``quit`` or EOF."""
    shm_cache = None
    shm_name_attached = None
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "quit":
                return
            if kind != "job":  # stray alloc reply from an aborted job
                continue
            job = message[1]
            shm_name = job.get("shm_name")
            if shm_name and shm_name != shm_name_attached:
                from repro.lsm.shmcache import SharedBlockCache

                try:
                    shm_cache = SharedBlockCache.attach(shm_name)
                    shm_name_attached = shm_name
                except (OSError, ValueError) as exc:
                    logger.warning("worker: shm attach failed: %s", exc)
                    shm_cache = None
            started = time.process_time()
            try:
                result = _execute_job(conn, job, shm_cache)
            except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
                try:
                    conn.send(("fail", {
                        "kind": type(exc).__name__,
                        "errno": getattr(exc, "errno", None),
                        "message": str(exc),
                    }))
                except (OSError, ValueError):
                    return
                continue
            result["cpu_seconds"] = time.process_time() - started
            if shm_cache is not None:
                result["shm"] = {"hits": shm_cache.hits,
                                 "misses": shm_cache.misses,
                                 "stores": shm_cache.stores,
                                 "evictions": shm_cache.evictions}
                shm_cache.hits = shm_cache.misses = 0
                shm_cache.stores = shm_cache.evictions = 0
            try:
                conn.send(("done", result))
            except (OSError, ValueError):
                return
    finally:
        if shm_cache is not None:
            shm_cache.close()


def _execute_job(conn, job: dict, shm_cache) -> dict:
    options = restore_options(job["options"])
    vfs = LocalVFS(job["root"])
    if job.get("fault_plan"):
        from repro.lsm.faults import FaultPlan, PlannedFaultVFS

        vfs = PlannedFaultVFS(vfs, FaultPlan.from_json(job["fault_plan"]))
    db_name = job["db_name"]

    block_cache = None
    if shm_cache is not None:
        from repro.lsm.shmcache import ShmBackedBlockCache

        block_cache = ShmBackedBlockCache(shm_cache, local=None)

    from repro.lsm.sstable import SSTable

    handles = []
    streams = []
    try:
        for _level, meta_doc in job["inputs"]:
            meta = FileMetaData.from_json(meta_doc)
            handle = vfs.open_random(
                table_file_name(db_name, meta.file_number))
            handles.append(handle)
            table = SSTable(options, handle, meta.file_number)
            table._block_cache = block_cache
            streams.append(table_entry_stream(table))

        outputs: list[FileMetaData] = []

        def open_output():
            conn.send(("alloc", None))
            reply = conn.recv()
            assert reply[0] == "alloc", reply
            file_number = reply[1]
            out = vfs.create(table_file_name(db_name, file_number))
            observer = None
            if shm_cache is not None:
                def observer(offset, payload, _n=file_number):
                    shm_cache.put((_n, offset), payload)
            return file_number, out, observer

        stats = CompactionStats()
        writer = CompactionOutputWriter(options, open_output, outputs)
        try:
            merge_entry_streams(
                options, streams, job["oldest_snapshot"],
                bounds_base_predicate(job["deeper_bounds"]),
                writer, stats)
        except BaseException:
            writer.abort()
            raise
        return {
            "outputs": [meta.to_json() for meta in outputs],
            "entries_dropped": stats.entries_dropped,
            "merges_folded": stats.merges_folded,
            "read_bytes": vfs.stats.read_bytes,
            "write_bytes": vfs.stats.write_bytes,
        }
    finally:
        for handle in handles:
            try:
                handle.close()
            except OSError:
                pass


# -- coordinator side ---------------------------------------------------------


class _Worker:
    """One spawned worker process and its per-worker gauges."""

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.proc = None
        self.conn = None
        self.stats = {
            "pid": None,
            "restarts": -1,  # first spawn brings it to 0
            "jobs_dispatched": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "cpu_seconds": 0.0,
            "shm_hits": 0,
            "shm_misses": 0,
            "shm_stores": 0,
            "shm_evictions": 0,
        }


class ProcessCompactionExecutor:
    """Owns the worker pool and runs the coordinator half of the protocol.

    ``run_job`` is serialized by a lock: the engine runs at most one
    compaction at a time anyway (the background thread and the manual
    compaction slot are mutually exclusive), so the pool provides crash
    redundancy and round-robin reuse rather than job parallelism.
    """

    def __init__(self, root: str, db_name: str, options_doc: dict,
                 processes: int, shm_name: str | None = None,
                 discard=None) -> None:
        self.root = root
        self.db_name = db_name
        self.options_doc = options_doc
        self.shm_name = shm_name
        # ``discard(file_numbers)`` deletes the table files of a failed
        # job's allocated outputs (DB passes a table-cache-aware one).
        self._discard = discard or self._discard_files
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._closed = False
        self._armed_fault: dict | None = None
        self.jobs_dispatched = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_retried = 0
        self._workers = [_Worker(slot) for slot in range(max(1, processes))]
        self._next_slot = 0
        for worker in self._workers:
            self._spawn(worker)

    # -- pool management ----------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name=f"compaction-worker-{worker.slot}")
        proc.start()
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn
        worker.stats["pid"] = proc.pid
        worker.stats["restarts"] += 1

    def _respawn(self, worker: _Worker) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
        if worker.proc is not None and worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
        self._spawn(worker)

    def worker_pids(self) -> list[int]:
        return [worker.proc.pid for worker in self._workers
                if worker.proc is not None]

    def arm_fault(self, plan) -> None:
        """Attach ``plan`` (a :class:`~repro.lsm.faults.FaultPlan`) to the
        next dispatched job — the crash-drill hook."""
        self._armed_fault = plan.to_json()

    # -- job execution -------------------------------------------------------

    def run_job(self, job: dict, allocate) -> dict:
        """Dispatch ``job``; returns the worker's result document.

        ``allocate()`` must return a fresh file number (the coordinator's
        ``VersionSet.new_file_number``).  Worker deaths are retried on a
        fresh process up to :data:`MAX_JOB_RETRIES` times; worker-reported
        exceptions are re-raised here (mapped back onto engine error types)
        without retry.  Either way a failed attempt's allocated output
        files are deleted before control leaves this method.
        """
        with self._lock:
            if self._closed:
                raise CompactionWorkerError("executor is closed")
            job = dict(job)
            job.setdefault("root", self.root)
            job.setdefault("options", self.options_doc)
            job.setdefault("shm_name", self.shm_name)
            if self._armed_fault is not None:
                job["fault_plan"] = self._armed_fault
                self._armed_fault = None
            deaths = 0
            while True:
                worker = self._workers[self._next_slot % len(self._workers)]
                self._next_slot += 1
                if worker.proc is None or not worker.proc.is_alive():
                    self._respawn(worker)
                try:
                    return self._attempt(worker, job, allocate)
                except _WorkerDied:
                    worker.stats["jobs_failed"] += 1
                    self.jobs_failed += 1
                    self._respawn(worker)
                    deaths += 1
                    if deaths > MAX_JOB_RETRIES:
                        raise CompactionWorkerError(
                            f"compaction worker died {deaths} times on one "
                            f"job (level {job.get('level')}); abandoning")
                    self.jobs_retried += 1
                    # A crashed attempt must not re-run the fault plan that
                    # (deliberately, in drills) killed it.
                    job.pop("fault_plan", None)

    def _attempt(self, worker: _Worker, job: dict, allocate) -> dict:
        allocated: list[int] = []
        worker.stats["jobs_dispatched"] += 1
        self.jobs_dispatched += 1
        try:
            worker.conn.send(("job", job))
            while True:
                if not worker.conn.poll(_POLL_SECONDS):
                    if self._closed:
                        raise _WorkerDied("executor closed mid-job")
                    if not worker.proc.is_alive() \
                            and not worker.conn.poll(0.0):
                        raise _WorkerDied("worker process died")
                    continue
                message = worker.conn.recv()
                kind = message[0]
                if kind == "alloc":
                    number = allocate()
                    allocated.append(number)
                    worker.conn.send(("alloc", number))
                elif kind == "done":
                    result = message[1]
                    worker.stats["jobs_completed"] += 1
                    worker.stats["cpu_seconds"] += result.get(
                        "cpu_seconds", 0.0)
                    for key, value in result.get("shm", {}).items():
                        worker.stats[f"shm_{key}"] += value
                    self.jobs_completed += 1
                    return result
                elif kind == "fail":
                    worker.stats["jobs_failed"] += 1
                    self.jobs_failed += 1
                    self._discard(allocated)
                    _raise_worker_failure(message[1])
                else:  # pragma: no cover - protocol violation
                    raise _WorkerDied(f"unexpected message {kind!r}")
        except LSMError:
            # A worker-*reported* failure (deterministic; outputs already
            # discarded).  Some engine errors double as OSError — e.g.
            # FaultInjectedError(LSMError, IOError) — so this must outrank
            # the pipe-error clause below or a clean failure report would
            # masquerade as a worker death and be retried.
            raise
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._discard(allocated)
            raise _WorkerDied(str(exc)) from exc

    def _discard_files(self, file_numbers: list[int]) -> None:
        vfs = LocalVFS(self.root)
        for number in file_numbers:
            vfs.delete_if_exists(table_file_name(self.db_name, number))

    # -- observability & shutdown -------------------------------------------

    def stats(self) -> dict:
        return {
            "processes": len(self._workers),
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_retried": self.jobs_retried,
            "worker_cpu_seconds": round(
                sum(w.stats["cpu_seconds"] for w in self._workers), 6),
            "per_worker": [dict(w.stats) for w in self._workers],
        }

    def close(self, timeout: float = 2.0) -> None:
        """Stop every worker; never blocks unboundedly on a dead one."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            if worker.conn is not None:
                try:
                    worker.conn.send(("quit", None))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        for worker in self._workers:
            proc = worker.proc
            if proc is None:
                continue
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - kill-resistant worker
                proc.kill()
                proc.join(timeout=timeout)
            if worker.conn is not None:
                try:
                    worker.conn.close()
                except OSError:
                    pass


class _WorkerDied(Exception):
    """Internal: the worker process vanished mid-job (retryable)."""


def _raise_worker_failure(info: dict) -> None:
    """Re-raise a worker-reported exception as the nearest engine error.

    Known :mod:`repro.lsm.errors` types rebuild as themselves, so the
    coordinator's existing handling (ENOSPC parks read-only, fault drills
    catch :class:`FaultInjectedError`) behaves as if the compaction had
    failed inline; anything else becomes :class:`CompactionWorkerError`.
    """
    kind = info.get("kind", "")
    message = info.get("message", "")
    error_cls = getattr(lsm_errors, kind, None)
    if isinstance(error_cls, type) and issubclass(error_cls, LSMError):
        raise error_cls(f"[worker] {message}")
    raise CompactionWorkerError(f"worker job failed: {kind}: {message}")


def create_executor(vfs, db_name: str, options: Options, processes: int,
                    shm_name: str | None = None, discard=None,
                    quiet: bool = False) -> ProcessCompactionExecutor | None:
    """Build an executor for ``vfs``, or ``None`` when it cannot apply.

    Worker processes need a real filesystem to open the tables from, so
    only a VFS exposing a local ``root`` qualifies; memory and
    fault-injecting filesystems fall back to in-process compaction (the
    deterministic test harness depends on that).  ``quiet`` downgrades the
    fallback log to debug for environment-driven opt-ins.
    """
    root = getattr(vfs, "root", None)
    log = logger.debug if quiet else logger.warning
    if root is None:
        log("compaction_processes=%d ignored: %s has no local root; "
            "compacting in-process", processes, type(vfs).__name__)
        return None
    options_doc, reason = snapshot_options(options)
    if options_doc is None:
        log("compaction_processes=%d ignored: %s; compacting in-process",
            processes, reason)
        return None
    return ProcessCompactionExecutor(
        root, db_name, options_doc, processes, shm_name=shm_name,
        discard=discard)
