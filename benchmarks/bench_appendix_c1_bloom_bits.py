"""Appendix C.1: the effect of the secondary bloom filter's length.

The paper sweeps bits-per-key and settles on 100: longer filters cut the
false-positive block reads of Embedded LOOKUPs but cost memory/file space
and more hash probes.  The sweep here measures both sides of the
trade-off: file-size overhead and false-positive block reads for values
that are *absent* from the store (the pure fp cost).
"""

import pytest

from harness import BENCH_PROFILE, ResultTable, bench_options

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.workloads.tweets import TweetGenerator

_BITS = [2, 10, 100]
_N = 2500
_RESULTS: dict = {}

_TABLE = ResultTable(
    "appendix_c1_bloom_bits",
    "Appendix C.1 — secondary bloom bits/key vs fp block reads and size",
    ["bits_per_key", "db_bytes", "fp_block_reads_per_absent_lookup",
     "filter_probes_per_lookup"])


def _build(bits):
    options = bench_options(secondary_bloom_bits_per_key=bits)
    generator = TweetGenerator(BENCH_PROFILE, seed=23)
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.EMBEDDED}, options=options)
    for key, doc in generator.tweets(_N):
        db.put(key, doc)
    db.flush()
    return db


@pytest.mark.parametrize("bits", _BITS)
def test_appendix_c1_bloom_bits(benchmark, bits):
    db = benchmark.pedantic(_build, args=(bits,), rounds=1, iterations=1)
    index = db.indexes["UserID"]
    # Absent values *inside* the populated value range ("u00042x" sorts
    # between u00042 and u00043), so zone maps cannot prune them and every
    # surviving block read is a bloom false positive.
    absent_values = [f"u{i:05d}x" for i in range(60)]
    index.blocks_read = 0
    index.filter_probes = 0
    for value in absent_values:
        db.lookup("UserID", value, 10, early_termination=False)
    fp_reads = index.blocks_read / len(absent_values)
    probes = index.filter_probes / len(absent_values)
    size = db.total_size()
    _TABLE.add(bits, size, f"{fp_reads:.2f}", f"{probes:.0f}")
    _RESULTS[bits] = {"fp_reads": fp_reads, "size": size}
    db.close()
    if len(_RESULTS) == len(_BITS):
        _finalize()


def _finalize():
    _TABLE.note("absent lookups isolate false positives: every block read "
                "is a bloom filter lying")
    _TABLE.write()
    # More bits => monotonically fewer false-positive reads...
    assert _RESULTS[2]["fp_reads"] >= _RESULTS[10]["fp_reads"] \
        >= _RESULTS[100]["fp_reads"]
    # ...at 100 bits/key they are essentially gone (the paper's choice)...
    assert _RESULTS[100]["fp_reads"] < 0.05
    # ...but the files grow with the filters.
    assert _RESULTS[100]["size"] > _RESULTS[2]["size"]
