"""The workload runner's measurement plumbing."""

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.options import Options
from repro.workloads.generator import MIXED_RATIOS, MixedWorkload
from repro.workloads.ops import Delete, Get, Lookup, Put, RangeLookup
from repro.workloads.runner import (
    LatencyRecorder,
    WorkloadRunner,
    nearest_rank_index,
)


@pytest.fixture
def db():
    options = Options(block_size=1024, sstable_target_size=4 * 1024,
                      memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    handle = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY}, options=options)
    yield handle
    handle.close()


class TestRunner:
    def test_all_operation_types_apply(self, db):
        ops = [
            Put("t1", {"UserID": "u1"}),
            Put("t2", {"UserID": "u2"}),
            Get("t1"),
            Lookup("UserID", "u1", 5),
            RangeLookup("UserID", "u1", "u2", 5),
            Delete("t2"),
        ]
        report = WorkloadRunner(db).run(ops)
        assert report.op_counts == {"put": 2, "get": 1, "lookup": 1,
                                    "range_lookup": 1, "delete": 1}
        assert report.total_ops == 6
        assert db.get("t1") is not None
        assert db.get("t2") is None

    def test_unknown_operation_rejected(self, db):
        with pytest.raises(TypeError):
            WorkloadRunner(db).run([object()])

    def test_mean_micros(self, db):
        report = WorkloadRunner(db).run(
            [Put(f"t{i}", {"UserID": "u1"}) for i in range(50)])
        assert report.mean_micros() > 0
        assert report.mean_micros("put") == report.mean_micros()
        assert report.mean_micros("get") == 0.0

    def test_sampling_interval(self, db):
        ops = [Put(f"t{i}", {"UserID": "u1"}) for i in range(100)]
        report = WorkloadRunner(db, sample_every=25).run(ops)
        # 4 interval samples + 1 final sample
        assert len(report.samples) == 5
        assert [s.ops_done for s in report.samples] == [25, 50, 75, 100, 100]

    def test_samples_monotone_io(self, db):
        workload = MixedWorkload(num_operations=1500,
                                 ratios=MIXED_RATIOS["write_heavy"], seed=2)
        report = WorkloadRunner(db, sample_every=300).run(
            workload.operations())
        writes = [s.primary_write_blocks for s in report.samples]
        assert writes == sorted(writes)
        assert writes[-1] > 0
        index_writes = [s.index_write_blocks for s in report.samples]
        assert index_writes == sorted(index_writes)
        assert index_writes[-1] > 0

    def test_compaction_blocks_tracked(self, db):
        workload = MixedWorkload(num_operations=2500,
                                 ratios=MIXED_RATIOS["write_heavy"], seed=3)
        report = WorkloadRunner(db, sample_every=500).run(
            workload.operations())
        assert report.samples[-1].primary_compaction_blocks > 0
        assert report.samples[-1].index_compaction_blocks > 0

    def test_per_op_io_attribution(self, db):
        """Figures 13-15 depend on reads being attributed to the op type
        that caused them."""
        ops = [Put(f"t{i:04d}", {"UserID": f"u{i % 5}"}) for i in range(600)]
        report = WorkloadRunner(db).run(ops)
        db.flush()
        report2 = WorkloadRunner(db).run(
            [Get(f"t{i:04d}") for i in range(0, 600, 10)]
            + [Lookup("UserID", "u1", 5) for _ in range(5)])
        # Reads from GETs and LOOKUPs land in their own buckets; writes
        # belong to the PUT phase only.
        assert report2.read_blocks_by_op.get("get", 0) > 0
        assert report2.read_blocks_by_op.get("lookup", 0) > 0
        assert report2.write_blocks_by_op.get("get", 0) == 0
        assert report.write_blocks_by_op.get("put", 0) > 0


class TestConcurrentRunner:
    def _streams(self, threads, per_thread):
        return [[Put(f"c{tid}-{i:04d}", {"UserID": f"u{tid}", "n": i})
                 for i in range(per_thread)]
                for tid in range(threads)]

    def test_concurrent_clients_over_background_pipeline(self):
        options = Options(block_size=1024, sstable_target_size=4 * 1024,
                          memtable_budget=4 * 1024,
                          l1_target_size=16 * 1024,
                          background_compaction=True)
        db = SecondaryIndexedDB.open_memory(indexes={}, options=options)
        try:
            report = WorkloadRunner(db).run_concurrent(self._streams(4, 100))
            assert report.errors == []
            assert report.threads == 4
            assert report.op_counts == {"put": 400}
            assert report.total_ops == 400
            assert report.ops_per_sec > 0
            assert len(report.latencies_by_op["put"]) == 400
            assert report.percentile_micros("put", 0.99) \
                >= report.percentile_micros("put", 0.50) > 0
            assert report.mean_micros("put") == report.mean_micros()
            assert report.percentile_micros("get", 0.99) == 0.0
            for tid in range(4):
                assert db.get(f"c{tid}-0099") is not None
        finally:
            db.close()

    def test_concurrent_via_thread_safe_wrapper(self):
        from repro.core.concurrent import ThreadSafeDB

        options = Options(block_size=1024, sstable_target_size=4 * 1024,
                          memtable_budget=4 * 1024,
                          l1_target_size=16 * 1024)
        db = ThreadSafeDB(SecondaryIndexedDB.open_memory(
            indexes={"UserID": IndexKind.LAZY}, options=options))
        try:
            report = WorkloadRunner(db).run_concurrent(self._streams(3, 80))
            assert report.errors == []
            assert report.op_counts == {"put": 240}
            assert db.lookup("UserID", "u1", 5)
        finally:
            db.close()

    def test_client_errors_are_reported(self):
        options = Options(background_compaction=True)
        db = SecondaryIndexedDB.open_memory(indexes={}, options=options)
        try:
            streams = [[Put("k1", {"n": 1})], [object()]]
            report = WorkloadRunner(db).run_concurrent(streams)
            assert len(report.errors) == 1
            assert "client 1" in report.errors[0]
            assert report.op_counts == {"put": 1}
        finally:
            db.close()


class TestNearestRankIndex:
    def test_p50_of_two_samples_is_the_lower(self):
        # The regression this pins: ``int(0.5 * 2)`` is 1 (the larger
        # sample); nearest rank says ceil(0.5 * 2) = rank 1, index 0.
        assert nearest_rank_index(0.5, 2) == 0
        recorder = LatencyRecorder()
        recorder.record_many([2e-6, 1e-6])
        assert recorder.percentile_micros(0.5) == pytest.approx(1.0)

    def test_textbook_ranks(self):
        assert nearest_rank_index(0.5, 1) == 0
        assert nearest_rank_index(0.5, 4) == 1
        assert nearest_rank_index(0.5, 5) == 2
        assert nearest_rank_index(0.25, 4) == 0
        assert nearest_rank_index(0.99, 100) == 98
        assert nearest_rank_index(0.99, 10) == 9
        assert nearest_rank_index(1.0, 7) == 6
        assert nearest_rank_index(0.001, 100) == 0

    def test_rejects_out_of_range_fractions(self):
        for fraction in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                nearest_rank_index(fraction, 10)


class TestLatencyRecorder:
    def test_percentiles_and_mean(self):
        recorder = LatencyRecorder()
        recorder.record_many(s * 1e-6 for s in range(100, 0, -1))
        assert len(recorder) == 100
        assert recorder.percentile_micros(0.5) == pytest.approx(50.0)
        assert recorder.percentile_micros(0.99) == pytest.approx(99.0)
        assert recorder.percentile_micros(1.0) == pytest.approx(100.0)
        assert recorder.mean_micros() == pytest.approx(50.5)

    def test_empty_recorder_reports_zero(self):
        recorder = LatencyRecorder()
        assert recorder.mean_micros() == 0.0
        assert recorder.percentile_micros(0.99) == 0.0
        assert recorder.summary_micros() == {
            "count": 0, "mean_micros": 0.0,
            "p50_micros": 0.0, "p99_micros": 0.0}

    def test_merge_and_summary(self):
        left, right = LatencyRecorder(), LatencyRecorder()
        left.record(1e-6)
        right.record(3e-6)
        left.merge(right)
        summary = left.summary_micros()
        assert summary["count"] == 2
        assert summary["mean_micros"] == pytest.approx(2.0)
        assert summary["p50_micros"] == pytest.approx(1.0)
        assert summary["p99_micros"] == pytest.approx(3.0)

    def test_concurrent_recording(self):
        import threading

        recorder = LatencyRecorder()

        def worker():
            for _ in range(500):
                recorder.record(1e-6)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder) == 2000
