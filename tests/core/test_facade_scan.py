"""The facade's primary-key scan API."""

from conftest import load_tweets, open_db

from repro.core.base import IndexKind


class TestFacadeScan:
    def test_full_scan_sorted(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        load_tweets(db, 50)
        rows = list(db.scan())
        assert len(rows) == 50
        keys = [key for key, _doc in rows]
        assert keys == sorted(keys)
        assert rows[0][1]["UserID"] == "u0"
        db.close()

    def test_bounded_scan(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options)
        load_tweets(db, 50)
        rows = list(db.scan("t00010", "t00014"))
        assert [key for key, _doc in rows] == [
            f"t{i:05d}" for i in range(10, 15)]
        db.close()

    def test_scan_respects_deletes_and_updates(self, index_options):
        db = open_db(IndexKind.COMPOSITE, index_options)
        db.put("a", {"UserID": "u1"})
        db.put("b", {"UserID": "u1"})
        db.put("a", {"UserID": "u2"})
        db.delete("b")
        rows = dict(db.scan())
        assert rows == {"a": {"UserID": "u2"}}
        db.close()

    def test_scan_survives_compaction(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        state = load_tweets(db, 300)
        db.compact_all()
        assert dict(db.scan()) == state
        db.close()
