"""Table cache: open SSTable readers, kept memory-resident.

The paper sets ``max_open_files`` to 30000 "so that most of the bloom
filters and other metadata can reside in memory".  This cache reproduces
that configuration: every opened table stays cached (with an optional
bound), so index blocks, bloom filters and zone maps are read from disk
once per file lifetime and consulted for free afterwards.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.lsm.cache import LRUCache
from repro.lsm.errors import CorruptionError, SimulatedCrashError
from repro.lsm.manifest import table_file_name
from repro.lsm.options import Options
from repro.lsm.sstable import SSTable
from repro.lsm.vfs import VFS


class TableCache:
    """Maps file numbers to opened :class:`~repro.lsm.sstable.SSTable`.

    LRU-bounded by ``options.max_open_files``; a hit moves the table to the
    most-recent end, a miss opens (and may evict the least-recently-used
    reader, closing its file handle).  ``hits``/``misses``/``evictions``
    feed :meth:`repro.lsm.db.DB.stats`.
    """

    def __init__(self, vfs: VFS, db_name: str, options: Options,
                 max_open_files: int | None = None) -> None:
        self.vfs = vfs
        self.db_name = db_name
        self.options = options
        self.max_open_files = (options.max_open_files
                               if max_open_files is None else max_open_files)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Meta (filter/zone-map) blocks dropped on open under the
        # quarantine policy: the table serves filter-less but correct.
        self.filter_degradations = 0
        self._tables: OrderedDict[int, SSTable] = OrderedDict()
        # Background compaction evicts tables while readers look them up;
        # the OrderedDict reorder-on-hit is not safe to interleave unlocked.
        self._lock = threading.Lock()
        self.block_cache = None
        if options.block_cache_size > 0:
            self.block_cache = LRUCache(options.block_cache_size)

    def attach_shared_cache(self, shared) -> None:
        """Layer a cross-process shared segment behind the block cache.

        Must run before any table is opened — already-open tables keep the
        ``_block_cache`` reference they were handed.  The local LRU (if
        configured) stays as the first-level cache of decoded blocks.
        """
        from repro.lsm.shmcache import ShmBackedBlockCache

        self.block_cache = ShmBackedBlockCache(shared, self.block_cache)

    def get(self, file_number: int) -> SSTable:
        with self._lock:
            table = self._tables.get(file_number)
            if table is not None:
                self.hits += 1
                self._tables.move_to_end(file_number)
                return table
            self.misses += 1
        # Opening reads the footer/index/filter blocks — do the I/O outside
        # the lock.  A racing open of the same table is harmless: both
        # readers work, the later insert wins the cache slot.
        handle = self._open_with_retry(file_number)
        table = SSTable(self.options, handle, file_number)
        table._block_cache = self.block_cache
        if table.degraded_filters:
            self.filter_degradations += len(table.degraded_filters)
        with self._lock:
            self._tables[file_number] = table
            while len(self._tables) > self.max_open_files:
                _number, evicted = self._tables.popitem(last=False)
                evicted.file.close()
                self.evictions += 1
        return table

    def _open_with_retry(self, file_number: int):
        """``open_random`` with the same bounded retry as block reads.

        A transient ``EIO`` on open (a retryable media error) gets
        ``options.read_retries`` more chances; one that keeps failing is
        reported as :class:`CorruptionError` so the containment layer can
        quarantine the table instead of crash-looping the read.  Missing
        files and simulated crashes are not transient and pass through.
        """
        name = table_file_name(self.db_name, file_number)
        attempts = self.options.read_retries
        delay = self.options.read_retry_backoff_seconds
        max_delay = delay * 8
        while True:
            try:
                return self.vfs.open_random(name)
            except (CorruptionError, SimulatedCrashError):
                raise
            except OSError as exc:
                if attempts <= 0:
                    raise CorruptionError(
                        f"open of table {file_number:06d} still failing "
                        f"after {self.options.read_retries} retries: "
                        f"{exc}") from exc
                attempts -= 1
                if delay > 0:
                    time.sleep(delay)
                    delay = min(delay * 2, max_delay)

    def stats(self) -> dict[str, int]:
        return {
            "open_tables": len(self._tables),
            "max_open_files": self.max_open_files,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def evict(self, file_number: int) -> None:
        with self._lock:
            table = self._tables.pop(file_number, None)
        if table is not None:
            table.file.close()

    def close(self) -> None:
        with self._lock:
            tables = list(self._tables.values())
            self._tables.clear()
        for table in tables:
            table.file.close()

    def __len__(self) -> int:
        return len(self._tables)
